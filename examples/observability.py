"""Observability tour: one traced query, its metrics, EXPLAIN ANALYZE.

Builds the paper's Example 1 knowledge base on a 4-shard backend
(forked worker processes where the platform supports them), answers one
query with tracing on, and prints:

* the query's span tree — parse → reformulate (cover search) →
  execute (per-shard, including spans shipped home from the forked
  workers) → decode;
* the `EXPLAIN ANALYZE` rendering of the chosen SQL (measured rows and
  per-node times next to the optimizer's estimates);
* the unified metrics snapshot in Prometheus text format.

CI runs this after the benchmark smoke and uploads the output as a
build artifact, so every change ships one full example trace.

Run:  PYTHONPATH=src python examples/observability.py
"""

from repro.engine.parallel import process_substrate_available
from repro.obda.system import OBDASystem

TBOX = """
role worksWith
role supervisedBy
PhDStudent <= Researcher
exists worksWith <= Researcher
exists worksWith- <= Researcher
worksWith <= worksWith-
supervisedBy <= worksWith
exists supervisedBy <= PhDStudent
"""

ABOX = """
worksWith(Ioana, Francois)
supervisedBy(Damian, Ioana)
supervisedBy(Damian, Francois)
"""

QUERY = "q(x) <- Researcher(x)"


def main() -> None:
    executor = "process" if process_substrate_available() else "thread"
    with OBDASystem.from_text(
        TBOX, ABOX, shards=4, executor=executor, trace=True
    ) as system:
        report = system.answer(QUERY)
        print(f"{QUERY}  ->  {sorted(report.answers)}")
        print(f"(4 shards, {executor} substrate, tracing on)\n")

        print("=== query trace " + "=" * 47)
        print(report.trace.render())

        print("\n=== EXPLAIN ANALYZE " + "=" * 43)
        print(system.backend.explain_text(report.choice.sql, analyze=True))

        print("\n=== metrics (Prometheus exposition format) " + "=" * 20)
        print(system.metrics_prometheus(), end="")


if __name__ == "__main__":
    main()
