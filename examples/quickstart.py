"""Quickstart: the paper's running example, end to end.

Builds the knowledge base of Example 1 (researchers, PhD students,
supervision), checks consistency and entailment (Example 2), then answers
the query of Example 3 with every reformulation strategy — plain UCQ, the
root-cover JUCQ, and the cost-driven GDL choice — showing the SQL each
strategy hands to the RDBMS.

Run:  python examples/quickstart.py
"""

from repro.dllite.abox import ConceptAssertion, RoleAssertion
from repro.obda.system import OBDASystem

TBOX = """
# Example 1, Table 2 (T1-T7).
role worksWith
role supervisedBy
PhDStudent <= Researcher                     # T1
exists worksWith <= Researcher               # T2
exists worksWith- <= Researcher              # T3
worksWith <= worksWith-                      # T4
supervisedBy <= worksWith                    # T5
exists supervisedBy <= PhDStudent            # T6
PhDStudent <= not exists supervisedBy-       # T7
"""

ABOX = """
worksWith(Ioana, Francois)        # A1
supervisedBy(Damian, Ioana)       # A2
supervisedBy(Damian, Francois)    # A3
"""


def main() -> None:
    system = OBDASystem.from_text(
        TBOX, ABOX, backend="sqlite", check_consistency=True
    )
    print("KB loaded and consistent (Example 1).")

    # --- Example 2: entailment -------------------------------------------
    kb = system.kb
    checks = [
        RoleAssertion("worksWith", "Francois", "Ioana"),
        ConceptAssertion("PhDStudent", "Damian"),
        RoleAssertion("worksWith", "Francois", "Damian"),
    ]
    print("\nEntailed assertions (Example 2):")
    for assertion in checks:
        print(f"  K |= {assertion}: {kb.entails_assertion(assertion)}")

    # --- Example 3: query answering ----------------------------------------
    query = "q(x) <- PhDStudent(x), worksWith(y, x)"
    print(f"\nQuery: {query}")
    for strategy in ("ucq", "croot", "gdl"):
        report = system.answer(query, strategy=strategy)
        print(f"\n[{strategy}] answers: {sorted(report.answers)}")
        print(f"[{strategy}] SQL ({len(report.choice.sql)} chars):")
        sql = report.choice.sql
        print("  " + (sql if len(sql) < 400 else sql[:400] + " ..."))
        if report.choice.search is not None:
            search = report.choice.search
            print(
                f"[{strategy}] explored {search.total_covers_explored} covers, "
                f"estimated cost {search.cost:.1f}, "
                f"picked generalized: {search.picked_generalized()}"
            )

    # Plain evaluation (no reasoning) finds nothing — the whole point.
    from repro.dllite.parser import parse_query
    from repro.queries.evaluate import evaluate_cq

    plain = evaluate_cq(parse_query(query), system.kb.abox.fact_store())
    print(f"\nWithout the ontology the same query returns: {sorted(plain)}")


if __name__ == "__main__":
    main()
