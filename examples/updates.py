"""Writes, materialized saturation and epoch-based cache invalidation.

A walkthrough of the update workload: load a university KB with
``materialize=True`` (the TBox is chased into the backend as extra stored
tuples), answer the same query with a reformulation strategy and with the
``sat``/``auto`` strategies, then insert and delete facts and watch

* answers stay exactly the certain answers (no stale state, including
  existential witnesses re-created when a real fact disappears),
* the data epoch advance on every effective write,
* cost-based plans get invalidated while data-independent plans survive.

Run:  python examples/updates.py
"""

from repro.obda.system import OBDASystem

TBOX = """
role advisor
role worksFor
GraduateStudent <= Student
Student <= Person
Professor <= Person
GraduateStudent <= exists advisor        # every grad student has an advisor
exists advisor- <= Professor             # advisors are professors
exists worksFor <= Person
"""

ABOX = """
GraduateStudent(zoe)
GraduateStudent(max)
advisor(max, ines)
Professor(ines)
worksFor(ines, cs_dept)
"""

QUERY = "q(x) <- GraduateStudent(x), advisor(x, y)"


def show(system: OBDASystem, label: str) -> None:
    print(f"\n-- {label} (epoch {system.data_epoch}) --")
    for strategy in ("gdl", "sat", "auto"):
        report = system.answer(QUERY, strategy=strategy)
        hit = "warm" if report.plan_cache_hit else "cold"
        extra = ""
        if report.choice.routing is not None:
            extra = f", routed to {report.choice.routing.routed_to}"
        print(f"  {strategy:>4} ({hit}{extra}): {sorted(report.answers)}")


def main() -> None:
    with OBDASystem.from_text(TBOX, ABOX, materialize=True) as system:
        # Zoe has no asserted advisor, but GraduateStudent <= exists
        # advisor materializes a labeled-null witness: she is a certain
        # answer of the advisor join anyway.
        show(system, "initial load (saturation materialized)")

        # --- insert: the delta chase derives only the consequences -----
        system.insert_facts(
            [
                ("GraduateStudent", "ada"),
                ("advisor", "ada", "grace"),
            ]
        )
        # grace is now entailed to be a Professor (range of advisor).
        report = system.answer("q(x) <- Professor(x)", strategy="sat")
        print(f"\nafter insert: professors = {sorted(report.answers)}")
        show(system, "after inserting ada and her advisor")

        # --- delete: over-delete + re-derive ----------------------------
        # Removing max's real advisor does NOT remove him from the
        # answers: he is still a GraduateStudent, so the existential
        # axiom re-fires with a fresh null witness.
        system.delete_facts([("advisor", "max", "ines")])
        show(system, "after deleting max's advisor edge")

        # --- epoch bookkeeping ------------------------------------------
        stats = system.plan_cache.stats()
        print(
            f"\nplan cache: {stats['entries']} entries, "
            f"{stats['stale']} stale plans dropped by writes"
        )
        # A write that changes nothing advances nothing.
        before = system.data_epoch
        system.insert_facts([("Professor", "ines")])  # already present
        print(
            f"no-op write: epoch {before} -> {system.data_epoch} "
            "(caches untouched)"
        )


if __name__ == "__main__":
    main()
