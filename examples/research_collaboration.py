"""Inside the optimizer: covers, safety, and the GDL search, step by step.

Uses a research-collaboration KB (the domain of the paper's Section 4
running example, enlarged) to show:

* predicate dependencies (Definition 4) and the root cover (Definition 6);
* why an *unsafe* cover silently loses answers (the paper's Example 7);
* the safe-cover lattice Lq and a slice of the generalized space Gq;
* the cover GDL picks and the JUCQ it evaluates.

Run:  python examples/research_collaboration.py
"""

from repro.covers.cover import Cover
from repro.covers.dependencies import dependencies
from repro.covers.lattice import enumerate_safe_covers
from repro.covers.generalized import enumerate_generalized_covers
from repro.covers.reformulate import cover_based_reformulation
from repro.covers.safety import is_safe_cover, root_cover
from repro.cost.estimators import ExternalCoverCost
from repro.cost.model import ExternalCostModel
from repro.cost.statistics import DataStatistics
from repro.dllite.parser import parse_abox, parse_query, parse_tbox
from repro.optimizer.gdl import gdl_search
from repro.queries.evaluate import evaluate_jucq, evaluate_ucq
from repro.reformulation.perfectref import reformulate_to_ucq

TBOX = """
role worksWith
role supervisedBy
role authored
Graduate <= exists supervisedBy
supervisedBy <= worksWith
exists authored <= Researcher
PhDStudent <= Researcher
"""

ABOX = """
PhDStudent(Damian)
Graduate(Damian)
Graduate(Alice)
supervisedBy(Alice, Bob)
worksWith(Bob, Carol)
authored(Carol, Paper1)
PhDStudent(Alice)
"""

QUERY = "q(x) <- PhDStudent(x), worksWith(x, y), supervisedBy(z, y)"


def main() -> None:
    tbox = parse_tbox(TBOX)
    abox = parse_abox(ABOX)
    facts = abox.fact_store()
    query = parse_query(QUERY)

    print("Query:", query)

    # --- Dependencies (Definition 4, Example 8) ---------------------------
    print("\nPredicate dependencies w.r.t. the TBox:")
    for predicate in ("PhDStudent", "worksWith", "supervisedBy"):
        print(f"  dep({predicate}) = {sorted(dependencies(predicate, tbox))}")

    # --- The unsafe cover loses answers (Example 7) -----------------------
    reference = evaluate_ucq(reformulate_to_ucq(query, tbox), facts)
    print(f"\nReference answers (UCQ reformulation): {sorted(reference)}")

    unsafe = Cover(query, (frozenset({0, 1}), frozenset({2})))
    print(f"\nUnsafe cover C1 = {unsafe}")
    print(f"  safe? {is_safe_cover(unsafe, tbox)}")
    lost = evaluate_jucq(cover_based_reformulation(unsafe, tbox), facts)
    print(f"  its JUCQ returns {sorted(lost)}  <-- answers lost!")

    # --- The root cover and the lattice ------------------------------------
    croot = root_cover(query, tbox)
    print(f"\nRoot cover Croot = {croot}")
    safe_covers = list(enumerate_safe_covers(query, tbox))
    print(f"|Lq| = {len(safe_covers)} safe covers:")
    for cover in safe_covers:
        answers = evaluate_jucq(cover_based_reformulation(cover, tbox), facts)
        print(f"  {cover} -> {sorted(answers)}")

    some_generalized = list(enumerate_generalized_covers(query, tbox, limit=6))
    print(f"\nFirst {len(some_generalized)} covers of Gq (semijoin reducers):")
    for cover in some_generalized:
        print(f"  {cover}")

    # --- GDL ----------------------------------------------------------------
    statistics = DataStatistics.from_abox(abox)
    estimator = ExternalCoverCost(tbox, ExternalCostModel(statistics))
    result = gdl_search(query, tbox, estimator)
    print(
        f"\nGDL picked {result.cover} "
        f"(estimated cost {result.cost:.1f}, "
        f"{result.total_covers_explored} covers explored, "
        f"generalized: {result.picked_generalized()})"
    )
    jucq = estimator.reformulate(result.cover)
    answers = evaluate_jucq(jucq, facts)
    print(f"Its JUCQ returns {sorted(answers)} — matches the reference:",
          answers == reference)


if __name__ == "__main__":
    main()
