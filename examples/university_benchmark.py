"""University OBDA at benchmark scale: a miniature Figure 2.

Generates a LUBM∃-style ABox, loads it into both backends over the simple
layout, and compares the evaluation time of the four reformulation
variants of the paper's Figure 2 (UCQ, Croot, GDL/RDBMS, GDL/ext) on a
selection of workload queries.

Run:  python examples/university_benchmark.py [scale]
      (scale: tiny | small | medium | large; default small)
"""

import sys

from repro.bench.generator import generate_abox
from repro.bench.harness import DEFAULT_VARIANTS, evaluation_experiment
from repro.bench.lubm import lubm_exists_tbox, tbox_statistics
from repro.bench.queries import benchmark_queries
from repro.obda.system import OBDASystem

EXAMPLE_QUERIES = ("Q2", "Q3", "Q8", "Q10", "Q12")


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "small"
    tbox = lubm_exists_tbox()
    print(f"LUBM-exists TBox: {tbox_statistics()}")

    abox = generate_abox(scale)
    print(f"Generated ABox at scale {scale!r}: {len(abox)} facts")

    queries = {
        name: cq
        for name, cq in benchmark_queries().items()
        if name in EXAMPLE_QUERIES
    }

    for backend in ("sqlite", "memory"):
        system = OBDASystem(tbox, abox, backend=backend, layout="simple")
        result = evaluation_experiment(
            system,
            queries,
            DEFAULT_VARIANTS,
            title=f"Evaluation time on {backend} (simple layout, scale {scale})",
        )
        print()
        print(result.table())


if __name__ == "__main__":
    main()
