"""Ontology-based access to clinical records (the paper's motivating
domain: SNOMED-style clinical terminologies over patient databases).

A small clinical TBox — condition hierarchies, anatomical sites,
prescription roles, and disjointness constraints — over an encounter
database. Shows:

* queries over high-level conditions returning patients recorded only
  with specific diagnoses (the "query asks for humans, data has authors"
  effect of the paper's introduction);
* consistency checking catching a record that violates a disjointness
  constraint;
* the same answers through SQLite and the from-scratch engine.

Run:  python examples/clinical_terminology.py
"""

from repro.dllite.kb import InconsistentKBError
from repro.obda.system import OBDASystem

TBOX = """
role hasCondition
role prescribed
role treatedAt
role siteOf

# condition taxonomy
BacterialPneumonia <= Pneumonia
ViralPneumonia <= Pneumonia
Pneumonia <= RespiratoryInfection
Bronchitis <= RespiratoryInfection
RespiratoryInfection <= InfectiousDisease
InfectiousDisease <= Disease
Fracture <= Injury

# a condition is something some patient has (range), and whoever has a
# condition is a patient (domain)
exists hasCondition <= Patient
exists hasCondition- <= Disease
exists prescribed <= Patient
exists prescribed- <= Medication
exists treatedAt <= Patient
exists treatedAt- <= ClinicalSite

# mandatory participation: every diagnosed patient is treated somewhere
Patient <= exists treatedAt

# antibiotics are prescribed for bacterial conditions in this toy domain
Antibiotic <= Medication

# disjointness: injuries are not infectious diseases
Injury <= not InfectiousDisease
"""

ABOX = """
hasCondition(Ana, BacterialPneumonia_Case1)
BacterialPneumonia(BacterialPneumonia_Case1)
hasCondition(Bruno, Bronchitis_Case1)
Bronchitis(Bronchitis_Case1)
hasCondition(Carla, Fracture_Case1)
Fracture(Fracture_Case1)
prescribed(Ana, Amoxicillin)
Antibiotic(Amoxicillin)
treatedAt(Bruno, CityClinic)
"""


def main() -> None:
    system = OBDASystem.from_text(
        TBOX, ABOX, backend="sqlite", check_consistency=True
    )
    print("Clinical KB loaded; consistent.")

    queries = {
        "patients with a respiratory infection":
            "q(x) <- hasCondition(x, c), RespiratoryInfection(c)",
        "patients with any recorded disease":
            "q(x) <- hasCondition(x, c), Disease(c)",
        "all patients (inferred from any clinical role)":
            "q(x) <- Patient(x)",
        "patients treated somewhere (mandatory participation)":
            "q(x) <- treatedAt(x, s)",
    }
    for label, text in queries.items():
        report = system.answer(text, strategy="gdl")
        print(f"\n{label}:")
        print(f"  {text}")
        print(f"  -> {sorted(a[0] for a in report.answers)}")

    # The same question through the from-scratch engine gives the same
    # answers.
    memory_system = OBDASystem.from_text(TBOX, ABOX, backend="memory")
    check = "q(x) <- hasCondition(x, c), Disease(c)"
    lite = system.answer(check, strategy="ucq").answers
    mini = memory_system.answer(check, strategy="ucq").answers
    print(f"\nBackends agree on {check!r}: {lite == mini}")

    # A contradictory record: a fracture case recorded as pneumonia.
    print("\nInserting a record violating 'Injury <= not InfectiousDisease'...")
    bad_abox = ABOX + "\nViralPneumonia(Fracture_Case1)\n"
    try:
        OBDASystem.from_text(TBOX, bad_abox, check_consistency=True)
    except InconsistentKBError as error:
        print(f"  rejected: {error}")


if __name__ == "__main__":
    main()
