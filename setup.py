"""Setuptools shim for legacy editable installs (offline environments).

All metadata lives in pyproject.toml; this file only enables
``pip install -e . --no-use-pep517`` on machines without the ``wheel``
package (PEP 517 editable builds require it).
"""

from setuptools import setup

setup()
