"""Morsel-driven parallel execution semantics.

The contract under test: for any plan, executing at any worker count
returns exactly the serial result — the same multiset (same rows, any
partition-induced order) for duplicate-preserving plans and the same set
for deduplicating ones. Plus the machinery around it: shared hash-build
barriers, interior dedup breakers, per-worker stats, EXPLAIN's degree of
parallelism, and the cost model's parallelism discount.
"""

import random

import pytest

from repro.engine import MiniRDBMS, ParallelContext
from repro.engine.operators import CostParameters
from repro.engine.parallel import slice_bounds


def _populate(db: MiniRDBMS, seed: int = 7) -> None:
    rng = random.Random(seed)
    student = db.create_table("c_phdstudent", ["s"])
    student.insert_many([(i,) for i in range(1, 40)])
    works = db.create_table("r_workswith", ["s", "o"])
    works.insert_many(
        [(rng.randrange(1, 60), rng.randrange(1, 60)) for _ in range(200)]
    )
    wide = db.create_table("t3", ["a", "b", "c"])  # >2 cols: no auto index
    wide.insert_many([(i % 5, i % 7, i % 3) for i in range(120)])
    db.analyze()


def _db(workers: int, batch_size: int = 16) -> MiniRDBMS:
    # morsel_size=1: even this test's tiny tables split into real
    # morsels, so the partitioned paths (not the serial fallback for
    # sub-morsel pipelines) are what's under test.
    db = MiniRDBMS(
        cost_parameters=CostParameters(batch_size=batch_size),
        parallel_context=ParallelContext(workers, morsel_size=1),
    )
    _populate(db)
    return db


#: Query shapes covering every operator's partitioned path: scans
#: (filtered and not), index scans, filters, hash joins (generic and
#: index-probe), cross joins, dedup at the root, dedup *interior* to a
#: duplicate-preserving parent, unions (both kinds), CTEs and shared
#: scans.
QUERIES = [
    "SELECT s FROM c_phdstudent",
    "SELECT o FROM r_workswith WHERE s = 2",
    "SELECT s FROM r_workswith WHERE s = o",
    "SELECT s FROM c_phdstudent WHERE s <> 3",
    "SELECT DISTINCT c FROM t3",
    "SELECT s FROM c_phdstudent UNION SELECT o FROM r_workswith",
    "SELECT s FROM c_phdstudent UNION ALL SELECT s FROM c_phdstudent",
    "SELECT p.s, w.o FROM c_phdstudent p, r_workswith w WHERE p.s = w.s",
    "SELECT DISTINCT p.s FROM c_phdstudent p, r_workswith w WHERE p.s = w.o",
    "WITH x AS (SELECT DISTINCT s FROM r_workswith) "
    "SELECT p.s FROM c_phdstudent p, x WHERE p.s = x.s",
    # Interior dedup: the DISTINCT subquery feeds a duplicate-preserving
    # join, so local per-worker dedup alone would be wrong.
    "SELECT q.a, w.o FROM (SELECT DISTINCT a, b FROM t3) q, r_workswith w "
    "WHERE q.a = w.s",
    "SELECT a FROM t3 WHERE a = 1 UNION SELECT b FROM t3 WHERE b = 2",
    "SELECT p.s, t.c FROM c_phdstudent p, t3 t WHERE t.a = 1",
    "SELECT w.s FROM r_workswith w WHERE w.o = 4 "
    "UNION SELECT w.s FROM r_workswith w WHERE w.o = 4 "
    "UNION SELECT w.o FROM r_workswith w WHERE w.s = 4",
]

#: Queries whose results are sets (a dedup sits at the *root*); all
#: others — including the interior-DISTINCT join, whose output
#: legitimately repeats rows — must match as exact multisets.
SET_SEMANTIC = {
    QUERIES[4],   # SELECT DISTINCT
    QUERIES[5],   # UNION
    QUERIES[8],   # SELECT DISTINCT over a join
    QUERIES[11],  # UNION of filtered scans
    QUERIES[13],  # three-arm UNION with a repeated arm
}


class TestDeterminism:
    @pytest.mark.parametrize("workers", [2, 8])
    @pytest.mark.parametrize("batch_size", [1, 16, 1024])
    def test_matches_serial_at_any_worker_count(self, workers, batch_size):
        serial = _db(1, batch_size)
        parallel = _db(workers, batch_size)
        for query in QUERIES:
            expected = serial.execute(query)
            got = parallel.execute(query)
            if query in SET_SEMANTIC:
                assert set(got) == set(expected), query
                assert len(got) == len(set(got)), query  # still deduped
            else:
                assert sorted(got) == sorted(expected), query
        parallel.close()
        serial.close()

    def test_random_differential_against_serial(self):
        rng = random.Random(42)
        serial = _db(1)
        parallel = _db(4)
        tables = {
            "c_phdstudent": ["s"],
            "r_workswith": ["s", "o"],
            "t3": ["a", "b", "c"],
        }
        for _ in range(40):
            name, columns = rng.choice(list(tables.items()))
            column = rng.choice(columns)
            other = rng.choice(columns)
            value = rng.randrange(0, 8)
            shape = rng.randrange(3)
            if shape == 0:
                sql = f"SELECT {column} FROM {name} WHERE {other} = {value}"
                comparable = sorted
            elif shape == 1:
                sql = (
                    f"SELECT DISTINCT {column} FROM {name} "
                    f"UNION SELECT {other} FROM {name}"
                )
                comparable = set
            else:
                sql = (
                    f"SELECT x.{column} FROM {name} x, {name} y "
                    f"WHERE x.{column} = y.{other}"
                )
                comparable = sorted
            assert comparable(parallel.execute(sql)) == comparable(
                serial.execute(sql)
            ), sql
        parallel.close()
        serial.close()


class TestParallelMachinery:
    def test_slice_bounds_partition_everything_exactly_once(self):
        for count in (0, 1, 5, 17, 1024):
            for parts in (1, 2, 3, 8, 40):
                covered = []
                for part in range(parts):
                    lo, hi = slice_bounds(count, part, parts)
                    covered.extend(range(lo, hi))
                assert covered == list(range(count)), (count, parts)

    def test_stats_report_workers_and_morsels(self):
        db = _db(4)
        db.execute("SELECT s FROM c_phdstudent")
        stats = db.last_execution
        assert stats.workers == 4
        assert stats.morsels == db.parallel.partitions_for(
            db.plan("SELECT s FROM c_phdstudent").body.cost
        )
        assert stats.morsels > 1
        assert stats.per_worker, "per-worker counters must be populated"
        assert sum(w["rows"] for w in stats.per_worker) == stats.rows
        db.close()

    def test_sub_morsel_pipelines_stay_serial(self):
        db = MiniRDBMS(
            cost_parameters=CostParameters(batch_size=16),
            # Pinned (not env-derived) default morsel size.
            parallel_context=ParallelContext(4, morsel_size=4096),
        )
        _populate(db)
        db.execute("SELECT s FROM c_phdstudent")  # ~39 cost units
        stats = db.last_execution
        assert stats.workers == 4  # the parallel engine ran it...
        assert stats.morsels == 0  # ...but the tiny pipeline stayed serial
        db.close()

    def test_partitions_for_scales_with_work(self):
        context = ParallelContext(4, morsels_per_worker=4, morsel_size=1000)
        assert context.partitions_for(10) == 1
        assert context.partitions_for(2500) == 3
        assert context.partitions_for(10**9) == context.partitions() == 16

    def test_morsel_gate_sees_undiscounted_work(self):
        """Raising the worker count must not shrink the work estimate
        the gate sizes morsels by (costs are parallel-discounted; the
        gate multiplies the discount back)."""
        few = MiniRDBMS(workers=2)
        many = MiniRDBMS(workers=8)
        assert many.parallel.cost_discount == pytest.approx(
            many.cost_parameters.parallel_speedup()
        )
        sql = "SELECT a FROM big"
        for db in (few, many):
            table = db.create_table("big", ["a"])
            table.insert_many([(i,) for i in range(3000)])
            db.analyze()
        discounted = many.plan(sql).body.cost
        # The discounted cost alone (scan + projection over 3000 rows,
        # divided by the 8-worker speedup) would under-partition:
        assert discounted < 3000 < discounted * many.parallel.cost_discount
        gate_2w = few.parallel.partitions_for(few.plan(sql).body.cost)
        gate_8w = many.parallel.partitions_for(discounted)
        # Same table, same actual work: more workers must never see
        # fewer morsels than fewer workers (capped by partitions()).
        assert gate_8w >= gate_2w
        few.close()
        many.close()

    def test_learning_zero_efficiency_keeps_gate_consistent(self):
        db = MiniRDBMS(workers=4)
        db.learn_parallel_efficiency(1.0)  # honest GIL observation
        assert db.parallel.cost_discount == 1.0

    def test_serial_stats_unchanged(self):
        db = _db(1)
        db.execute("SELECT s FROM c_phdstudent")
        stats = db.last_execution
        assert stats.workers == 1
        assert stats.morsels == 0
        assert stats.per_worker == []

    def test_explain_reports_degree_of_parallelism(self):
        db = _db(4)
        explained = db.explain("SELECT s FROM c_phdstudent")
        assert explained.workers == 4
        assert "Degree of parallelism: 4" in explained.text
        serial = _db(1)
        assert serial.explain("SELECT s FROM c_phdstudent").workers == 1
        assert "Degree of parallelism" not in serial.explain(
            "SELECT s FROM c_phdstudent"
        ).text
        db.close()

    def test_env_default_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert ParallelContext().workers == 3
        monkeypatch.delenv("REPRO_WORKERS")
        assert ParallelContext().workers == 1

    def test_close_is_idempotent_and_engine_survives(self):
        db = _db(2)
        assert len(db.execute("SELECT s FROM c_phdstudent")) == 39
        db.close()
        db.close()
        # A closed pool is rebuilt lazily on the next execution.
        assert len(db.execute("SELECT s FROM c_phdstudent")) == 39


class TestCostDiscount:
    def test_serial_costs_untouched(self):
        params = CostParameters()
        assert params.parallel_speedup() == 1.0

    def test_parallel_discount_lowers_costs(self):
        serial = _db(1)
        parallel = _db(4)
        sql = "SELECT p.s, w.o FROM c_phdstudent p, r_workswith w WHERE p.s = w.s"
        assert parallel.estimated_cost(sql) < serial.estimated_cost(sql)

    def test_discount_is_sublinear(self):
        params = CostParameters(workers=4, parallel_efficiency=0.7)
        assert 1.0 < params.parallel_speedup() < 4.0

    def test_learn_efficiency_from_observation(self):
        db = _db(4)
        sql = "SELECT s FROM c_phdstudent"
        optimistic = db.estimated_cost(sql)
        # Observed no speedup at all (the honest GIL outcome): the
        # discount must collapse and costs return to serial levels.
        efficiency = db.learn_parallel_efficiency(observed_speedup=1.0)
        assert efficiency == 0.0
        assert db.estimated_cost(sql) > optimistic
        assert db.cost_parameters.parallel_speedup() == 1.0
        # A measured 2x at 4 workers back-solves to 1/3 efficiency.
        assert db.learn_parallel_efficiency(2.0) == pytest.approx(1 / 3)

    def test_external_model_learns_parallelism(self):
        from repro.cost.model import ExternalCostModel
        from repro.cost.statistics import DataStatistics
        from repro.dllite.abox import ABox

        abox = ABox()
        for i in range(10):
            abox.add_role("worksWith", f"a{i}", f"b{i % 3}")
        model = ExternalCostModel(DataStatistics.from_abox(abox))
        from repro.dllite.parser import parse_query

        query = parse_query("q(x) <- worksWith(x, y)")
        serial_cost = model.estimate(query)
        model.learn_parallelism(4, observed_speedup=2.0)
        assert model.parameters.workers == 4
        assert model.estimate(query) < serial_cost
        model.learn_parallelism(4, observed_speedup=1.0)
        assert model.estimate(query) == pytest.approx(serial_cost)
