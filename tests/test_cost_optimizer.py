"""Tests for statistics, the external cost model, EDL and GDL."""

import math

import pytest

from repro.cost.estimators import ExternalCoverCost, RDBMSCoverCost
from repro.cost.model import ExternalCostModel
from repro.cost.statistics import DataStatistics
from repro.covers.cover import GeneralizedCover
from repro.covers.safety import root_cover, single_fragment_cover
from repro.dllite.parser import parse_query
from repro.optimizer.edl import edl_search
from repro.optimizer.gdl import gdl_search
from repro.queries.evaluate import evaluate, evaluate_jucq
from repro.reformulation.perfectref import reformulate_to_ucq
from repro.sql.translator import SQLTranslator
from repro.storage.layouts import SimpleLayout
from repro.storage.memory_backend import MemoryBackend


@pytest.fixture
def rich_abox(example1_abox):
    # Widen the data so cost differences are meaningful.
    for i in range(60):
        example1_abox.add_role("worksWith", f"r{i}", f"r{(i + 1) % 60}")
    for i in range(20):
        example1_abox.add_role("supervisedBy", f"s{i}", f"r{i % 5}")
        example1_abox.add_concept("PhDStudent", f"s{i}")
    return example1_abox


class TestStatistics:
    def test_from_abox(self, rich_abox):
        stats = DataStatistics.from_abox(rich_abox)
        assert stats.cardinality("worksWith") == 61
        assert stats.cardinality("PhDStudent") == 20
        assert stats.distinct("worksWith", 0) >= 60
        assert stats.total_facts == len(rich_abox)

    def test_missing_predicate_is_empty(self, rich_abox):
        stats = DataStatistics.from_abox(rich_abox)
        assert stats.cardinality("Nothing") == 0
        assert stats.distinct("Nothing", 0) == 1  # floor avoids div-by-zero


class TestExternalCostModel:
    @pytest.fixture
    def model(self, rich_abox):
        return ExternalCostModel(DataStatistics.from_abox(rich_abox))

    def test_single_atom_cost_tracks_cardinality(self, model):
        small = model.estimate(parse_query("q(x) <- PhDStudent(x)"))
        large = model.estimate(parse_query("q(x, y) <- worksWith(x, y)"))
        assert large > small

    def test_constant_enables_index_access(self, model):
        scan = model.estimate(parse_query("q(x, y) <- worksWith(x, y)"))
        probe = model.estimate(parse_query("q(y) <- worksWith(Ioana, y)"))
        assert probe < scan

    def test_join_costs_more_than_parts(self, model):
        join = model.estimate(
            parse_query("q(x) <- PhDStudent(x), worksWith(x, y)")
        )
        part = model.estimate(parse_query("q(x) <- PhDStudent(x)"))
        assert join > part

    def test_ucq_cost_roughly_additive(self, model, example1_tbox):
        query = parse_query("q(x) <- PhDStudent(x), worksWith(y, x)")
        ucq = reformulate_to_ucq(query, example1_tbox, minimize=True)
        ucq_cost = model.estimate(ucq)
        max_disjunct = max(model.estimate(cq) for cq in ucq.disjuncts)
        assert ucq_cost > max_disjunct

    def test_rows_estimate_positive(self, model):
        rows = model.estimated_rows(parse_query("q(x, y) <- worksWith(x, y)"))
        assert rows > 0

    def test_jucq_estimate_includes_materialization(
        self, model, example1_tbox
    ):
        from repro.covers.reformulate import cover_based_reformulation

        query = parse_query("q(x) <- PhDStudent(x), worksWith(y, x)")
        cover = single_fragment_cover(query)
        jucq = cover_based_reformulation(cover, example1_tbox)
        assert model.estimate(jucq) > 0


class TestEstimators:
    @pytest.fixture
    def query(self):
        return parse_query("q(x) <- PhDStudent(x), worksWith(y, x)")

    def test_external_estimator_memoizes(self, query, example1_tbox, rich_abox):
        model = ExternalCostModel(DataStatistics.from_abox(rich_abox))
        estimator = ExternalCoverCost(example1_tbox, model)
        cover = root_cover(query, example1_tbox)
        first = estimator.estimate(cover)
        second = estimator.estimate(cover)
        assert first == second
        assert estimator.calls == 1

    def test_rdbms_estimator_prices_with_backend(
        self, query, example1_tbox, rich_abox
    ):
        layout = SimpleLayout()
        backend = MemoryBackend()
        backend.load(layout.build(rich_abox))
        estimator = RDBMSCoverCost(
            example1_tbox, backend, SQLTranslator(layout)
        )
        cost = estimator.estimate(root_cover(query, example1_tbox))
        assert cost > 0

    def test_rdbms_estimator_prices_oversized_at_infinity(
        self, query, example1_tbox, rich_abox
    ):
        layout = SimpleLayout()
        backend = MemoryBackend(max_statement_length=200)
        backend.load(layout.build(rich_abox))
        estimator = RDBMSCoverCost(
            example1_tbox, backend, SQLTranslator(layout)
        )
        assert estimator.estimate(single_fragment_cover(query)) == math.inf


class TestGDL:
    @pytest.fixture
    def query(self):
        return parse_query(
            "q(x) <- PhDStudent(x), supervisedBy(x, y), worksWith(z, y)"
        )

    @pytest.fixture
    def estimator(self, example1_tbox, rich_abox):
        model = ExternalCostModel(DataStatistics.from_abox(rich_abox))
        return ExternalCoverCost(example1_tbox, model)

    def test_gdl_returns_valid_cover(self, query, example1_tbox, estimator):
        result = gdl_search(query, example1_tbox, estimator)
        assert isinstance(result.cover, GeneralizedCover)
        assert result.cost < math.inf
        assert result.cost_estimations >= 1

    def test_gdl_never_worse_than_root(self, query, example1_tbox, estimator):
        root = GeneralizedCover.from_cover(root_cover(query, example1_tbox))
        root_cost = estimator.estimate(root)
        result = gdl_search(query, example1_tbox, estimator)
        assert result.cost <= root_cost

    def test_gdl_reformulation_is_equivalent(
        self, query, example1_tbox, estimator, rich_abox
    ):
        result = gdl_search(query, example1_tbox, estimator)
        jucq = estimator.reformulate(result.cover)
        reference = evaluate(
            reformulate_to_ucq(query, example1_tbox), rich_abox.fact_store()
        )
        assert evaluate_jucq(jucq, rich_abox.fact_store()) == reference

    def test_time_budget_stops_early(self, query, example1_tbox, estimator):
        result = gdl_search(
            query, example1_tbox, estimator, time_budget_seconds=0.0
        )
        # With a zero budget the search stops during the first sweep but
        # still returns the root cover.
        assert result.cover is not None
        assert result.hit_time_budget or result.total_covers_explored >= 1

    def test_explored_counts_are_modest(self, query, example1_tbox, estimator):
        # Table 6: GDL explores tens of covers, not thousands.
        result = gdl_search(query, example1_tbox, estimator)
        assert result.total_covers_explored < 100

    def test_budget_hit_mid_scan_still_applies_best_move(self, monkeypatch):
        # Pins the time-budget semantics the simplified loop-exit condition
        # must preserve: a budget expiring mid-scan still applies the
        # cheapest move found so far (and reports the truncation) instead
        # of discarding it. The TBox keeps the three atoms
        # dependency-independent so the root cover has three fragments and
        # the first sweep offers several moves; a fake clock driven by the
        # estimator makes the expiry deterministic.
        import repro.optimizer.gdl as gdl_module
        from repro.dllite.parser import parse_tbox

        tbox = parse_tbox(
            """
            role teaches
            role attends
            Professor <= Person
            Student <= Person
            """
        )
        query = parse_query("q(x) <- Person(x), teaches(x, a), attends(x, b)")

        class FakeClock:
            def __init__(self):
                self.now = 0.0

            def perf_counter(self):
                return self.now

        clock = FakeClock()
        monkeypatch.setattr(gdl_module, "time", clock)

        class ClockedEstimator:
            """Root, then an improving move, then the budget expires."""

            def __init__(self):
                self.calls = 0

            def estimate(self, cover):
                self.calls += 1
                if self.calls == 1:
                    return 100.0  # the root cover
                if self.calls == 2:
                    return 50.0  # an improving move
                clock.now += 1.0  # past the budget, mid-scan
                return 999.0

        estimator = ClockedEstimator()
        result = gdl_search(query, tbox, estimator, time_budget_seconds=0.5)
        assert result.hit_time_budget
        assert result.cost == 50.0  # the improving move was applied

    def test_uscq_estimator_reuses_fragment_cache(
        self, query, example1_tbox, rich_abox
    ):
        # Satellite regression: USCQ-mode estimation must go through the
        # fragment cache too — a second search over a shared cache runs
        # PerfectRef zero times.
        from repro.cost.cache import ReformulationCache
        from repro.reformulation.perfectref import perfectref_invocations

        shared = ReformulationCache()
        model = ExternalCostModel(DataStatistics.from_abox(rich_abox))
        first = ExternalCoverCost(
            example1_tbox, model, use_uscq=True, fragment_cache=shared
        )
        gdl_search(query, example1_tbox, first)
        assert shared.misses > 0
        before = perfectref_invocations()
        second = ExternalCoverCost(
            example1_tbox, model, use_uscq=True, fragment_cache=shared
        )
        gdl_search(query, example1_tbox, second)
        assert perfectref_invocations() == before

    def test_uscq_and_jucq_results_unchanged_by_shared_cache(
        self, query, example1_tbox, rich_abox
    ):
        # Cache correctness: searches over a shared (warm) cache pick the
        # same cover at the same cost as searches with private caches.
        from repro.cost.cache import ReformulationCache

        model = ExternalCostModel(DataStatistics.from_abox(rich_abox))
        for use_uscq in (False, True):
            shared = ReformulationCache()
            private_result = gdl_search(
                query,
                example1_tbox,
                ExternalCoverCost(example1_tbox, model, use_uscq=use_uscq),
            )
            gdl_search(  # warm the shared cache
                query,
                example1_tbox,
                ExternalCoverCost(
                    example1_tbox, model, use_uscq=use_uscq, fragment_cache=shared
                ),
            )
            warm_result = gdl_search(
                query,
                example1_tbox,
                ExternalCoverCost(
                    example1_tbox, model, use_uscq=use_uscq, fragment_cache=shared
                ),
            )
            assert warm_result.cover.key() == private_result.cover.key()
            assert warm_result.cost == private_result.cost


class TestEDL:
    def test_edl_explores_whole_lattice(self, example1_tbox, rich_abox):
        query = parse_query("q(x) <- PhDStudent(x), worksWith(y, x)")
        model = ExternalCostModel(DataStatistics.from_abox(rich_abox))
        estimator = ExternalCoverCost(example1_tbox, model)
        result = edl_search(query, example1_tbox, estimator)
        assert result.safe_covers_explored >= 1
        assert result.cost < math.inf

    def test_edl_at_least_as_good_as_gdl(self, example1_tbox, rich_abox):
        query = parse_query(
            "q(x) <- PhDStudent(x), supervisedBy(x, y), worksWith(z, y)"
        )
        model = ExternalCostModel(DataStatistics.from_abox(rich_abox))
        edl_estimator = ExternalCoverCost(example1_tbox, model)
        gdl_estimator = ExternalCoverCost(example1_tbox, model)
        edl_result = edl_search(query, example1_tbox, edl_estimator)
        gdl_result = gdl_search(query, example1_tbox, gdl_estimator)
        assert edl_result.cost <= gdl_result.cost

    def test_generalized_limit_respected(self, example1_tbox, rich_abox):
        query = parse_query(
            "q(x) <- PhDStudent(x), supervisedBy(x, y), worksWith(z, y)"
        )
        model = ExternalCostModel(DataStatistics.from_abox(rich_abox))
        estimator = ExternalCoverCost(example1_tbox, model)
        result = edl_search(
            query, example1_tbox, estimator, generalized_limit=5
        )
        assert result.generalized_covers_explored <= 5


class TestOBDASystem:
    TBOX = """
    role worksWith
    role supervisedBy
    PhDStudent <= Researcher
    exists worksWith <= Researcher
    exists worksWith- <= Researcher
    worksWith <= worksWith-
    supervisedBy <= worksWith
    exists supervisedBy <= PhDStudent
    PhDStudent <= not exists supervisedBy-
    """
    ABOX = """
    worksWith(Ioana, Francois)
    supervisedBy(Damian, Ioana)
    supervisedBy(Damian, Francois)
    """

    @pytest.mark.parametrize("strategy", ["ucq", "croot", "gdl", "edl"])
    @pytest.mark.parametrize("backend", ["memory", "sqlite"])
    def test_all_strategies_agree(self, strategy, backend):
        from repro.obda.system import OBDASystem

        system = OBDASystem.from_text(self.TBOX, self.ABOX, backend=backend)
        report = system.answer(
            "q(x) <- PhDStudent(x), worksWith(y, x)", strategy=strategy
        )
        assert report.answers == {("Damian",)}

    def test_rdbms_cost_mode(self):
        from repro.obda.system import OBDASystem

        system = OBDASystem.from_text(self.TBOX, self.ABOX)
        report = system.answer(
            "q(x) <- PhDStudent(x), worksWith(y, x)",
            strategy="gdl",
            cost="rdbms",
        )
        assert report.answers == {("Damian",)}

    def test_rdf_layout_end_to_end(self):
        from repro.obda.system import OBDASystem

        system = OBDASystem.from_text(
            self.TBOX, self.ABOX, layout="rdf", rdf_width=4
        )
        report = system.answer(
            "q(x) <- PhDStudent(x), worksWith(y, x)", strategy="ucq"
        )
        assert report.answers == {("Damian",)}

    def test_uscq_reformulation_mode(self):
        from repro.obda.system import OBDASystem

        system = OBDASystem.from_text(self.TBOX, self.ABOX)
        report = system.answer(
            "q(x) <- PhDStudent(x), worksWith(y, x)",
            strategy="croot",
            use_uscq=True,
        )
        assert report.answers == {("Damian",)}

    def test_boolean_query(self):
        from repro.obda.system import OBDASystem

        system = OBDASystem.from_text(self.TBOX, self.ABOX)
        positive = system.answer("q() <- PhDStudent(Damian)", strategy="ucq")
        assert positive.answers == {()}
        negative = system.answer("q() <- PhDStudent(Ioana)", strategy="ucq")
        assert negative.answers == set()

    def test_consistency_gate(self):
        from repro.dllite.kb import InconsistentKBError
        from repro.obda.system import OBDASystem

        bad_abox = self.ABOX + "\nsupervisedBy(Ioana, Damian)\n"
        with pytest.raises(InconsistentKBError):
            OBDASystem.from_text(self.TBOX, bad_abox, check_consistency=True)

    def test_report_carries_timings_and_sql(self):
        from repro.obda.system import OBDASystem

        system = OBDASystem.from_text(self.TBOX, self.ABOX)
        report = system.answer(
            "q(x) <- PhDStudent(x), worksWith(y, x)", strategy="gdl"
        )
        assert report.choice.sql.startswith(("WITH", "SELECT"))
        assert report.total_seconds >= 0
        assert report.choice.search is not None
