"""Tests for the DL-LiteR package: vocabulary, axioms (Table 3), TBox, KB.

The paper's Examples 1 and 2 are encoded verbatim.
"""

import pytest

from repro.dllite.abox import ABox, ConceptAssertion, RoleAssertion
from repro.dllite.axioms import (
    ConceptInclusion,
    RoleInclusion,
    axiom_to_fol,
)
from repro.dllite.kb import KnowledgeBase, InconsistentKBError, violation_query
from repro.dllite.tbox import TBox
from repro.dllite.vocabulary import (
    AtomicConcept as C,
    Exists,
    Role,
    predicate_name,
)


class TestVocabulary:
    def test_role_inversion_is_involutive(self):
        r = Role("worksWith")
        assert r.inverted().inverted() == r
        assert r.inverted().inverse

    def test_str_renderings(self):
        assert str(Role("r", inverse=True)) == "r-"
        assert str(Exists(Role("r"))) == "exists r"
        assert str(Exists(Role("r", True))) == "exists r-"
        assert str(C("A")) == "A"

    def test_predicate_name_strips_structure(self):
        assert predicate_name(C("A")) == "A"
        assert predicate_name(Role("r", True)) == "r"
        assert predicate_name(Exists(Role("r", True))) == "r"


class TestAxiomFOL:
    """Each of the 11 positive constraint forms of Table 3."""

    def test_form_1_concept_to_concept(self):
        ax = ConceptInclusion(C("A"), C("Ap"))
        assert axiom_to_fol(ax) == "forall x [A(x) => Ap(x)]"

    def test_form_2_concept_to_exists(self):
        ax = ConceptInclusion(C("A"), Exists(Role("R")))
        assert axiom_to_fol(ax) == "forall x [A(x) => exists z R(x, z)]"

    def test_form_3_concept_to_exists_inverse(self):
        ax = ConceptInclusion(C("A"), Exists(Role("R", True)))
        assert axiom_to_fol(ax) == "forall x [A(x) => exists z R(z, x)]"

    def test_form_4_exists_to_concept(self):
        ax = ConceptInclusion(Exists(Role("R")), C("A"))
        assert axiom_to_fol(ax) == "forall x [exists y R(x, y) => A(x)]"

    def test_form_5_exists_inverse_to_concept(self):
        ax = ConceptInclusion(Exists(Role("R", True)), C("A"))
        assert axiom_to_fol(ax) == "forall x [exists y R(y, x) => A(x)]"

    def test_form_6_exists_to_exists(self):
        ax = ConceptInclusion(Exists(Role("Rp")), Exists(Role("R")))
        assert axiom_to_fol(ax) == "forall x [exists y Rp(x, y) => exists z R(x, z)]"

    def test_form_7_exists_to_exists_inverse(self):
        ax = ConceptInclusion(Exists(Role("Rp")), Exists(Role("R", True)))
        assert axiom_to_fol(ax) == "forall x [exists y Rp(x, y) => exists z R(z, x)]"

    def test_form_8_exists_inverse_to_exists(self):
        ax = ConceptInclusion(Exists(Role("Rp", True)), Exists(Role("R")))
        assert axiom_to_fol(ax) == "forall x [exists y Rp(y, x) => exists z R(x, z)]"

    def test_form_9_exists_inverse_to_exists_inverse(self):
        ax = ConceptInclusion(Exists(Role("Rp", True)), Exists(Role("R", True)))
        assert axiom_to_fol(ax) == "forall x [exists y Rp(y, x) => exists z R(z, x)]"

    def test_form_10_role_to_inverse(self):
        ax = RoleInclusion(Role("R"), Role("Rp", True))
        assert axiom_to_fol(ax) == "forall x, y [R(x, y) => Rp(y, x)]"

    def test_form_11_role_to_role(self):
        ax = RoleInclusion(Role("R"), Role("Rp"))
        assert axiom_to_fol(ax) == "forall x, y [R(x, y) => Rp(x, y)]"

    def test_negative_rendering(self):
        ax = ConceptInclusion(C("A"), C("B"), negative=True)
        assert axiom_to_fol(ax) == "forall x [A(x) => not B(x)]"


class TestTBox:
    def test_deduplication(self, example1_tbox):
        duplicated = TBox(list(example1_tbox.axioms) * 2)
        assert len(duplicated) == len(example1_tbox)

    def test_signature(self, example1_tbox):
        assert example1_tbox.concept_names() == {"PhDStudent", "Researcher"}
        assert example1_tbox.role_names() == {"worksWith", "supervisedBy"}

    def test_positive_negative_split(self, example1_tbox):
        assert len(example1_tbox.positive_axioms()) == 6
        assert len(example1_tbox.negative_axioms()) == 1

    def test_rhs_concept_index(self, example1_tbox):
        into_phd = example1_tbox.inclusions_into_concept(C("PhDStudent"))
        assert len(into_phd) == 1
        assert into_phd[0].lhs == Exists(Role("supervisedBy"))

    def test_rhs_role_index(self, example1_tbox):
        into_works_with = example1_tbox.inclusions_into_role("worksWith")
        assert len(into_works_with) == 2  # T4 and T5

    def test_super_concepts_transitive(self, example1_tbox):
        supers = example1_tbox.super_concepts(Exists(Role("supervisedBy")))
        assert C("PhDStudent") in supers  # T6
        assert C("Researcher") in supers  # T6 then T1

    def test_super_roles_include_inverse_variants(self, example1_tbox):
        # T5: supervisedBy <= worksWith also entails the inverse inclusion.
        supers = example1_tbox.super_roles(Role("supervisedBy", True))
        assert Role("worksWith", True) in supers
        # and via T4 (worksWith <= worksWith-) inverted: worksWith- <= worksWith.
        assert Role("worksWith") in supers

    def test_role_inclusion_lifts_to_exists(self, example1_tbox):
        # supervisedBy <= worksWith entails exists supervisedBy <= exists worksWith.
        assert example1_tbox.entails_concept_inclusion(
            Exists(Role("supervisedBy")), Exists(Role("worksWith"))
        )

    def test_example2_negative_entailment(self, example1_tbox):
        # K |= exists supervisedBy <= not exists supervisedBy- (T6 + T7).
        assert example1_tbox.entails_concept_inclusion(
            Exists(Role("supervisedBy")),
            Exists(Role("supervisedBy", True)),
            negative=True,
        )

    def test_non_entailed_negative(self, example1_tbox):
        assert not example1_tbox.entails_concept_inclusion(
            C("Researcher"), Exists(Role("worksWith")), negative=True
        )

    def test_statistics(self, example1_tbox):
        stats = example1_tbox.statistics()
        assert stats["axioms"] == 7
        assert stats["role_inclusions"] == 2
        assert stats["negative"] == 1


class TestABox:
    def test_len_and_contains(self, example1_abox):
        assert len(example1_abox) == 3
        assert RoleAssertion("worksWith", "Ioana", "Francois") in example1_abox
        assert ConceptAssertion("PhDStudent", "Damian") not in example1_abox

    def test_individuals(self, example1_abox):
        assert example1_abox.individuals() == {"Ioana", "Francois", "Damian"}

    def test_fact_store_shape(self, example1_abox):
        store = example1_abox.fact_store()
        assert store["supervisedBy"] == {
            ("Damian", "Ioana"),
            ("Damian", "Francois"),
        }

    def test_add_is_idempotent(self):
        abox = ABox()
        abox.add_concept("A", "a")
        abox.add_concept("A", "a")
        assert len(abox) == 1

    def test_deterministic_assertion_order(self, example1_abox):
        listed = list(example1_abox.assertions())
        assert listed == sorted(listed, key=str)


class TestKnowledgeBase:
    def test_example1_is_consistent(self, example1_tbox, example1_abox):
        kb = KnowledgeBase(example1_tbox, example1_abox)
        assert kb.is_consistent()
        kb.check_consistency()  # should not raise

    def test_example2_entailed_assertions(self, example1_tbox, example1_abox):
        kb = KnowledgeBase(example1_tbox, example1_abox)
        # worksWith(Francois, Ioana) via T4 + A1.
        assert kb.entails_assertion(RoleAssertion("worksWith", "Francois", "Ioana"))
        # PhDStudent(Damian) via A2 + T6.
        assert kb.entails_assertion(ConceptAssertion("PhDStudent", "Damian"))
        # worksWith(Francois, Damian) via A3 + T5 + T4.
        assert kb.entails_assertion(RoleAssertion("worksWith", "Francois", "Damian"))

    def test_non_entailed_assertion(self, example1_tbox, example1_abox):
        kb = KnowledgeBase(example1_tbox, example1_abox)
        assert not kb.entails_assertion(
            RoleAssertion("supervisedBy", "Ioana", "Damian")
        )

    def test_inconsistency_detected(self, example1_tbox, example1_abox):
        # Make a PhD student supervise someone: violates T7 (PhDStudent is
        # disjoint from exists supervisedBy-).
        example1_abox.add_role("supervisedBy", "Ioana", "Damian")
        kb = KnowledgeBase(example1_tbox, example1_abox)
        assert not kb.is_consistent()
        with pytest.raises(InconsistentKBError):
            kb.check_consistency()

    def test_violation_query_shape(self, example1_tbox):
        negative = example1_tbox.negative_axioms()[0]
        query = violation_query(negative)
        assert query.head == ()
        assert len(query.atoms) == 2

    def test_violation_query_requires_negative(self, example1_tbox):
        positive = example1_tbox.positive_axioms()[0]
        with pytest.raises(ValueError):
            violation_query(positive)

    def test_entails_dispatches_to_tbox(self, example1_tbox, example1_abox):
        kb = KnowledgeBase(example1_tbox, example1_abox)
        assert kb.entails(ConceptInclusion(C("PhDStudent"), C("Researcher")))
