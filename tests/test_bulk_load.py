"""The bulk-load fast path at every scale tier.

Tier-1 (tiny, always on): the generator stream ingested through
``bulk_load`` answers byte-identically to the same stream pushed through
incremental ``insert_rows``, on every backend family — plus a
hypothesis property leg over arbitrary row multisets and chunkings.

Scale-gated (``REPRO_SCALE=medium`` / ``large``): the same equivalence
at 100k facts, and the ISSUE acceptance at 1M — the bulk path completes
and is **≥5× faster** than incremental ingestion of the identical
stream at the generator's natural write unit (one department,
:data:`~repro.bench.datagen.FACTS_PER_DEPARTMENT` facts per write) on
the sharded process backend.
"""

from __future__ import annotations

from time import perf_counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.datagen import (
    FACTS_PER_DEPARTMENT,
    encode_batch,
    exact_fact_count,
    generated_schema,
    load_generated,
    stream_batches,
)
from repro.engine.parallel import process_substrate_available
from repro.storage.layouts import LayoutData, TableSpec
from repro.storage.memory_backend import MemoryBackend
from repro.storage.sharded_backend import ShardedBackend
from repro.storage.sqlite_backend import SQLiteBackend

needs_processes = pytest.mark.skipif(
    not process_substrate_available(),
    reason="fork start method unavailable",
)

#: Queries whose answers must be byte-identical across ingest paths
#: (same deterministic dictionary encoding on both sides).
CHECK_SQL = (
    "SELECT s FROM c_GraduateStudent",
    "SELECT s, o FROM r_takesCourse",
    "SELECT DISTINCT t0.s FROM r_takesCourse t0, r_teacherOf t1 "
    "WHERE t0.o = t1.o",
    "SELECT t0.s FROM c_FullProfessor t0, r_worksFor t1 WHERE t0.s = t1.s",
    "SELECT s FROM c_JournalArticle UNION ALL SELECT s FROM c_ConferencePaper",
)

BACKENDS = {
    "memory": MemoryBackend,
    "sqlite": SQLiteBackend,
    "sharded-3": lambda: ShardedBackend(3),
}
if process_substrate_available():
    BACKENDS["sharded-2-process"] = lambda: ShardedBackend(
        2, substrate="process"
    )


def snapshot(backend):
    """Answers plus per-table statistics cardinalities."""
    answers = {sql: sorted(backend.execute(sql)) for sql in CHECK_SQL}
    cards = {}
    for spec in generated_schema():
        stats = backend.table_statistics(spec.name)
        if stats is not None:
            cards[spec.name] = stats.cardinality
    return answers, cards


def ingest(factory, scale, batch_rows, incremental):
    backend = factory()
    try:
        started = perf_counter()
        total, _dictionary = load_generated(
            backend, scale, batch_rows=batch_rows, incremental=incremental
        )
        elapsed = perf_counter() - started
        answers, cards = snapshot(backend)
        return elapsed, total, answers, cards
    finally:
        backend.close()


@pytest.mark.parametrize("backend_name", sorted(BACKENDS))
def test_bulk_equals_incremental_tiny(backend_name):
    """Tier-1: identical answers and statistics at ~1k facts."""
    factory = BACKENDS[backend_name]
    _t, total, bulk_answers, bulk_cards = ingest(factory, 1000, 100, False)
    _t, total2, inc_answers, inc_cards = ingest(factory, 1000, 100, True)
    assert total == total2 == exact_fact_count(1000)
    assert bulk_answers == inc_answers
    assert bulk_cards == inc_cards
    assert sum(bulk_cards.values()) > 0


@settings(deadline=None, max_examples=20)
@given(
    concept_rows=st.lists(st.tuples(st.integers(0, 15)), max_size=30),
    role_rows=st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=50
    ),
    chunk=st.integers(1, 7),
)
def test_bulk_matches_incremental_property(concept_rows, role_rows, chunk):
    """Any row multiset, any chunking: bulk ≡ incremental, per backend."""
    specs = [
        TableSpec(name="c_a", columns=("s",), rows=[], indexes=(("s",),)),
        TableSpec(
            name="r_p",
            columns=("s", "o"),
            rows=[],
            indexes=(("s",), ("o",), ("s", "o")),
        ),
    ]
    batches = {"c_a": concept_rows, "r_p": role_rows}
    for factory in (MemoryBackend, SQLiteBackend):
        bulk, incremental = factory(), factory()
        try:
            incremental.load(LayoutData(tables=specs))
            with bulk.bulk_load() as loader:
                for spec in specs:
                    loader.create_table(
                        spec.name, spec.columns, indexes=spec.indexes
                    )
                for name, rows in batches.items():
                    for start in range(0, len(rows), chunk):
                        loader.append(name, rows[start : start + chunk])
            for name, rows in batches.items():
                incremental.insert_rows(name, rows)
            for name, spec in (("c_a", specs[0]), ("r_p", specs[1])):
                sql = f"SELECT {', '.join(spec.columns)} FROM {name}"
                assert sorted(bulk.execute(sql)) == sorted(
                    incremental.execute(sql)
                )
                assert (
                    bulk.table_statistics(name).cardinality
                    == incremental.table_statistics(name).cardinality
                    == len(set(batches[name]))
                )
        finally:
            bulk.close()
            incremental.close()


@pytest.mark.scale("medium")
def test_bulk_equals_incremental_medium_memory():
    """~100k facts through both paths on the in-process engine."""
    _t, total, bulk_answers, bulk_cards = ingest(
        MemoryBackend, 100_000, FACTS_PER_DEPARTMENT, False
    )
    _t, total2, inc_answers, inc_cards = ingest(
        MemoryBackend, 100_000, FACTS_PER_DEPARTMENT, True
    )
    assert total == total2 == exact_fact_count(100_000)
    assert bulk_answers == inc_answers
    assert bulk_cards == inc_cards


@pytest.mark.scale("medium")
@needs_processes
def test_bulk_load_medium_scale_sharded_process():
    """~100k facts across process shards: identical, and no slower."""
    factory = lambda: ShardedBackend(4, substrate="process")  # noqa: E731
    bulk_t, total, bulk_answers, bulk_cards = ingest(
        factory, 100_000, FACTS_PER_DEPARTMENT, False
    )
    inc_t, _total, inc_answers, inc_cards = ingest(
        factory, 100_000, FACTS_PER_DEPARTMENT, True
    )
    assert total == exact_fact_count(100_000)
    assert bulk_answers == inc_answers
    assert bulk_cards == inc_cards
    # The hard ≥5× bar is asserted at 1M (the large tier); at 100k the
    # bulk path must already win clearly.
    assert inc_t / bulk_t >= 2.0, (bulk_t, inc_t)


@pytest.mark.scale("large")
@needs_processes
def test_bulk_load_1m_five_times_faster_than_incremental():
    """The ISSUE acceptance: 1M facts bulk-load completes and is ≥5×
    faster than incremental ingestion of the identical stream.

    Both paths consume the same pre-encoded department-unit batches
    (generation and dictionary-encoding cost excluded from both
    timings), on a 4-shard process backend. Answers and statistics must
    be byte-identical.
    """
    from repro.storage.dictionary import Dictionary

    scale = 1_000_000
    schema = generated_schema()
    dictionary = Dictionary()
    batches = [
        encode_batch(batch, dictionary)
        for batch in stream_batches(scale, 2016, FACTS_PER_DEPARTMENT)
    ]
    assert sum(
        len(rows) for tables in batches for rows in tables.values()
    ) == exact_fact_count(scale)

    def run(incremental):
        backend = ShardedBackend(4, substrate="process")
        try:
            started = perf_counter()
            if incremental:
                backend.load(LayoutData(tables=schema))
                for tables in batches:
                    for name, rows in tables.items():
                        backend.insert_rows(name, rows)
            else:
                with backend.bulk_load() as loader:
                    for spec in schema:
                        loader.create_table(
                            spec.name, spec.columns, spec.indexes
                        )
                    for tables in batches:
                        for name, rows in tables.items():
                            loader.append(name, rows)
            elapsed = perf_counter() - started
            answers, cards = snapshot(backend)
            return elapsed, answers, cards
        finally:
            backend.close()

    bulk_t, bulk_answers, bulk_cards = run(False)
    inc_t, inc_answers, inc_cards = run(True)
    assert bulk_answers == inc_answers
    assert bulk_cards == inc_cards
    assert inc_t / bulk_t >= 5.0, (bulk_t, inc_t)
