"""Unit tests for terms, atoms and substitutions."""

import pytest

from repro.queries.atoms import Atom, concept_atom, role_atom
from repro.queries.substitution import Substitution
from repro.queries.terms import (
    Constant,
    Variable,
    fresh_variable,
    is_constant,
    is_variable,
)


class TestTerms:
    def test_variable_equality_by_name(self):
        assert Variable("x") == Variable("x")
        assert Variable("x") != Variable("y")

    def test_constant_equality_by_value(self):
        assert Constant("Damian") == Constant("Damian")
        assert Constant("Damian") != Constant("Ioana")
        assert Constant(1) != Constant("1")

    def test_variable_is_hashable_and_usable_in_sets(self):
        assert len({Variable("x"), Variable("x"), Variable("y")}) == 2

    def test_fresh_variables_are_distinct(self):
        names = {fresh_variable().name for _ in range(100)}
        assert len(names) == 100

    def test_fresh_variables_are_anonymous(self):
        assert fresh_variable().is_anonymous
        assert not Variable("x").is_anonymous

    def test_predicates(self):
        assert is_variable(Variable("x"))
        assert not is_variable(Constant("a"))
        assert is_constant(Constant("a"))
        assert not is_constant(Variable("x"))

    def test_str_rendering(self):
        assert str(Variable("x")) == "x"
        assert str(Constant("Ioana")) == "<Ioana>"
        assert str(Constant(42)) == "42"


class TestAtoms:
    def test_concept_atom(self):
        atom = concept_atom("PhDStudent", Variable("x"))
        assert atom.arity == 1
        assert atom.is_concept_atom
        assert not atom.is_role_atom

    def test_role_atom(self):
        atom = role_atom("worksWith", Variable("x"), Constant("Ioana"))
        assert atom.arity == 2
        assert atom.is_role_atom

    def test_invalid_arity_rejected(self):
        with pytest.raises(ValueError):
            Atom("p", ())
        with pytest.raises(ValueError):
            Atom("p", (Variable("x"), Variable("y"), Variable("z")))

    def test_variables_iteration_skips_constants(self):
        atom = role_atom("r", Constant("a"), Variable("y"))
        assert list(atom.variables()) == [Variable("y")]

    def test_str(self):
        atom = role_atom("worksWith", Variable("y"), Variable("x"))
        assert str(atom) == "worksWith(y, x)"


class TestSubstitution:
    def test_identity_is_empty(self):
        identity = Substitution.identity()
        assert not identity
        assert identity.apply_term(Variable("x")) == Variable("x")

    def test_trivial_bindings_dropped(self):
        sub = Substitution({Variable("x"): Variable("x")})
        assert len(sub) == 0

    def test_apply_to_atom(self):
        sub = Substitution({Variable("x"): Constant("a")})
        atom = role_atom("r", Variable("x"), Variable("y"))
        assert sub.apply_atom(atom) == role_atom("r", Constant("a"), Variable("y"))

    def test_constants_unaffected(self):
        sub = Substitution({Variable("x"): Variable("y")})
        assert sub.apply_term(Constant("x")) == Constant("x")

    def test_compose_applies_left_then_right(self):
        first = Substitution({Variable("x"): Variable("y")})
        second = Substitution({Variable("y"): Constant("a")})
        composed = first.compose(second)
        assert composed.apply_term(Variable("x")) == Constant("a")
        assert composed.apply_term(Variable("y")) == Constant("a")

    def test_compose_keeps_disjoint_bindings(self):
        first = Substitution({Variable("x"): Constant("a")})
        second = Substitution({Variable("z"): Constant("b")})
        composed = first.compose(second)
        assert composed.apply_term(Variable("x")) == Constant("a")
        assert composed.apply_term(Variable("z")) == Constant("b")

    def test_bind_extends(self):
        sub = Substitution().bind(Variable("x"), Constant("a"))
        assert sub.get(Variable("x")) == Constant("a")

    def test_rejects_non_variable_keys(self):
        with pytest.raises(TypeError):
            Substitution({Constant("a"): Variable("x")})  # type: ignore[dict-item]
