"""Vectorized-engine semantics: batch boundaries, index scans, shared
scans, the statement cache, and a randomized differential test that runs
generated CQ/UCQ workloads through both backends and demands identical
answer sets."""

import random

import pytest

from repro.engine import MiniRDBMS
from repro.engine.operators import CostParameters
from repro.storage.layouts import LayoutData, TableSpec
from repro.storage.memory_backend import MemoryBackend
from repro.storage.sqlite_backend import SQLiteBackend


def _db(batch_size):
    db = MiniRDBMS(cost_parameters=CostParameters(batch_size=batch_size))
    student = db.create_table("c_phdstudent", ["s"])
    student.insert_many([(1,), (2,), (3,), (4,), (5,)])
    works = db.create_table("r_workswith", ["s", "o"])
    works.insert_many([(1, 3), (2, 3), (3, 4), (4, 1), (5, 5), (2, 1)])
    wide = db.create_table("t3", ["a", "b", "c"])  # >2 cols: no auto index
    wide.insert_many([(1, 1, 7), (1, 2, 7), (2, 2, 8), (3, 4, 9)])
    db.analyze()
    return db


#: Batch size 1 stresses every batch boundary; 2 stresses partial
#: batches; 1024 is the production shape.
BATCH_SIZES = (1, 2, 1024)


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
class TestBatchBoundaries:
    def test_empty_table_scan(self, batch_size):
        db = MiniRDBMS(cost_parameters=CostParameters(batch_size=batch_size))
        db.create_table("t", ["a"])
        db.analyze()
        assert db.execute("SELECT a FROM t") == []

    def test_single_row(self, batch_size):
        db = MiniRDBMS(cost_parameters=CostParameters(batch_size=batch_size))
        db.create_table("t", ["a"]).insert((42,))
        db.analyze()
        assert db.execute("SELECT a FROM t") == [(42,)]

    def test_scan_and_filters(self, batch_size):
        db = _db(batch_size)
        assert sorted(db.execute("SELECT o FROM r_workswith WHERE s = 2")) == [
            (1,),
            (3,),
        ]
        assert db.execute("SELECT s FROM r_workswith WHERE s = o") == [(5,)]
        assert sorted(db.execute("SELECT s FROM c_phdstudent WHERE s <> 3")) == [
            (1,),
            (2,),
            (4,),
            (5,),
        ]

    def test_distinct_dedups_across_batches(self, batch_size):
        db = _db(batch_size)
        rows = db.execute("SELECT DISTINCT c FROM t3")
        assert sorted(rows) == [(7,), (8,), (9,)]

    def test_union_dedups_across_arms_and_batches(self, batch_size):
        db = _db(batch_size)
        rows = db.execute(
            "SELECT s FROM c_phdstudent UNION SELECT o FROM r_workswith"
        )
        assert sorted(rows) == [(1,), (2,), (3,), (4,), (5,)]

    def test_union_all_keeps_duplicates(self, batch_size):
        db = _db(batch_size)
        rows = db.execute(
            "SELECT s FROM c_phdstudent UNION ALL SELECT s FROM c_phdstudent"
        )
        assert len(rows) == 10

    def test_hash_join_across_batches(self, batch_size):
        db = _db(batch_size)
        rows = db.execute(
            "SELECT a.s, b.o FROM r_workswith a, r_workswith b WHERE a.o = b.s"
        )
        assert (1, 4) in rows and (3, 1) in rows
        # Same result through the generic (non-indexed) path.
        generic = db.execute(
            "SELECT x.a, y.b FROM t3 x, t3 y WHERE x.b = y.a"
        )
        assert sorted(generic) == sorted(
            (r1[0], r2[1])
            for r1 in [(1, 1), (1, 2), (2, 2), (3, 4)]
            for r2 in [(1, 1), (1, 2), (2, 2), (3, 4)]
            if r1[1] == r2[0]
        )

    def test_cross_join(self, batch_size):
        db = _db(batch_size)
        rows = db.execute("SELECT p.s, w.a FROM c_phdstudent p, t3 w")
        assert len(rows) == 20

    def test_cte_join(self, batch_size):
        db = _db(batch_size)
        rows = db.execute(
            "WITH f AS (SELECT DISTINCT s FROM r_workswith) "
            "SELECT p.s FROM c_phdstudent p, f f WHERE p.s = f.s"
        )
        assert sorted(rows) == [(1,), (2,), (3,), (4,), (5,)]


class TestIndexScan:
    def test_explain_renders_index_scan(self):
        db = _db(1024)
        text = db.explain("SELECT o FROM r_workswith WHERE s = 1").text
        assert "IndexScan" in text

    def test_index_scan_with_residual_filter(self):
        db = _db(1024)
        # s is indexed; o becomes a residual filter on the bucket.
        rows = db.execute("SELECT s FROM r_workswith WHERE s = 2 AND o = 1")
        assert rows == [(2,)]
        text = db.explain("SELECT s FROM r_workswith WHERE s = 2 AND o = 1").text
        assert "IndexScan" in text

    def test_index_scan_cheaper_than_seq_scan(self):
        db = _db(1024)
        full = db.estimated_cost("SELECT s FROM r_workswith")
        probe = db.estimated_cost("SELECT s FROM r_workswith WHERE s = 1")
        assert probe < full

    def test_analyze_creates_key_indexes(self):
        db = MiniRDBMS()
        db.create_table("r_x", ["s", "o"]).insert((1, 2))
        db.create_table("wide", ["a", "b", "c"]).insert((1, 2, 3))
        db.analyze()
        assert db.catalog.table("r_x").index_on(("s",)) is not None
        assert db.catalog.table("r_x").index_on(("o",)) is not None
        assert db.catalog.table("wide").index_on(("a",)) is None

    def test_index_nested_loop_join_in_explain(self):
        db = _db(1024)
        text = db.explain(
            "SELECT a.s FROM r_workswith a, c_phdstudent p WHERE a.s = p.s"
        ).text
        assert "index probe into" in text


class TestSharedScans:
    def test_union_arms_share_filtered_scan(self):
        db = _db(1024)
        sql = (
            "SELECT a.o AS x FROM r_workswith a WHERE a.s = 2 "
            "UNION SELECT b.o AS x FROM r_workswith b WHERE b.s = 2"
        )
        text = db.explain(sql).text
        assert "Materialize _shared_0 (shared scan)" in text
        assert "CTEScan _shared_0" in text
        assert sorted(db.execute(sql)) == [(1,), (3,)]

    def test_shared_subquery_across_arms(self):
        db = _db(1024)
        inner = "(SELECT s AS v FROM c_phdstudent UNION ALL SELECT o AS v FROM r_workswith)"
        sql = (
            f"SELECT d.v FROM {inner} d WHERE d.v = 1 "
            f"UNION SELECT e.v FROM {inner} e WHERE e.v = 1"
        )
        text = db.explain(sql).text
        assert "shared scan" in text
        assert db.execute(sql) == [(1,)]

    def test_different_filters_not_shared(self):
        db = _db(1024)
        sql = (
            "SELECT a.o AS x FROM r_workswith a WHERE a.s = 1 "
            "UNION SELECT b.o AS x FROM r_workswith b WHERE b.s = 2"
        )
        assert "shared scan" not in db.explain(sql).text
        assert sorted(db.execute(sql)) == [(1,), (3,)]

    def test_unfiltered_scans_not_shared(self):
        # Unfiltered base scans serve cached batches already; sharing
        # them would only hide the join indexes.
        db = _db(1024)
        sql = "SELECT s FROM c_phdstudent UNION SELECT o FROM r_workswith"
        assert "shared scan" not in db.explain(sql).text

    def test_shared_scan_with_mixed_type_literals(self):
        # Filters mixing int and string literals on one column must not
        # crash fingerprint ordering (int < str is a TypeError).
        db = MiniRDBMS()
        db.create_table("t", ["a"]).insert_many([(1,), (2,)])
        db.analyze()
        sql = (
            "SELECT x.a AS v FROM t x WHERE x.a <> 1 AND x.a <> 'x' "
            "UNION SELECT y.a AS v FROM t y WHERE y.a <> 1 AND y.a <> 'x'"
        )
        assert db.execute(sql) == [(2,)]

    def test_shared_scan_coexists_with_user_ctes(self):
        db = _db(1024)
        sql = (
            "WITH f AS (SELECT s FROM c_phdstudent) "
            "SELECT a.o AS x FROM r_workswith a WHERE a.s = 2 "
            "UNION SELECT b.o AS x FROM r_workswith b WHERE b.s = 2 "
            "UNION SELECT f.s AS x FROM f f"
        )
        assert sorted(db.execute(sql)) == [(1,), (2,), (3,), (4,), (5,)]


class TestResidualPredicates:
    def test_inequality_survives_matching_join_key(self):
        # x.a = y.b as the hash-join key must not swallow the
        # contradictory x.a <> y.b residual (unsatisfiable query).
        db = MiniRDBMS()
        db.create_table("t", ["a", "b"]).insert_many([(1, 1), (1, 2)])
        db.analyze()
        rows = db.execute(
            "SELECT x.a FROM t x, t y WHERE x.a = y.b AND x.a <> y.b"
        )
        assert rows == []


class TestStatementCache:
    def test_repeat_execution_hits_cache(self):
        db = _db(1024)
        sql = "SELECT s FROM c_phdstudent WHERE s = 1"
        first = db.execute(sql)
        misses = db.plan_cache_misses
        second = db.execute(sql)
        assert first == second == [(1,)]
        assert db.plan_cache_hits >= 1
        assert db.plan_cache_misses == misses

    def test_write_invalidates_cached_plans(self):
        db = _db(1024)
        sql = "SELECT s FROM c_phdstudent WHERE s = 9"
        assert db.execute(sql) == []
        db.insert_many("c_phdstudent", [(9,)])
        db.analyze("c_phdstudent")
        assert db.execute(sql) == [(9,)]

    def test_ddl_invalidates_cached_plans(self):
        db = _db(1024)
        sql = "SELECT s FROM c_phdstudent"
        assert len(db.execute(sql)) == 5
        db.create_table("c_phdstudent", ["s"])  # replace with empty
        assert db.execute(sql) == []

    def test_cache_disabled(self):
        db = MiniRDBMS(plan_cache_size=0)
        db.create_table("t", ["a"]).insert((1,))
        db.analyze()
        assert db.execute("SELECT a FROM t") == [(1,)]
        assert db.execute("SELECT a FROM t") == [(1,)]
        assert db.plan_cache_hits == 0


class TestWritePathStatistics:
    def test_table_delete_delegates_to_batch_path(self):
        db = _db(1024)
        table = db.catalog.table("c_phdstudent")
        assert table.delete((1,)) is True
        assert table.delete((1,)) is False
        assert len(table) == 4

    def test_insert_rows_folds_delta_statistics(self):
        backend = MemoryBackend()
        backend.load(
            LayoutData(
                tables=[
                    TableSpec(
                        name="c_x", columns=("s",), rows=[(1,), (2,)], indexes=(("s",),)
                    )
                ]
            )
        )
        before = backend.db.catalog.statistics("c_x").cardinality
        backend.insert_rows("c_x", [(3,), (4,), (4,)])
        stats = backend.db.catalog.statistics("c_x")
        assert before == 2 and stats.cardinality == 4
        removed = backend.delete_rows("c_x", [(1,), (99,)])
        assert removed == 1
        assert backend.db.catalog.statistics("c_x").cardinality == 3

    def test_batch_counters_exposed(self):
        db = _db(2)
        db.execute("SELECT s FROM c_phdstudent")
        assert db.last_execution is not None
        assert db.last_execution.batches >= 3  # 5 rows at batch size 2
        assert db.last_execution.rows == 5


# ---------------------------------------------------------------------------
# Randomized differential testing against SQLite — generators and checks
# live in the reusable conformance suite (backend_conformance.py), which
# also runs them over ShardedBackend at several shard counts.
# ---------------------------------------------------------------------------

from backend_conformance import (  # noqa: E402
    check_random_workloads,
    random_layout_data,
    random_statement,
)


@pytest.mark.parametrize("seed", range(8))
def test_differential_random_workloads(seed):
    """MemoryBackend and SQLiteBackend agree on random CQ/UCQ workloads."""
    check_random_workloads(MemoryBackend, SQLiteBackend, 1000 + seed)


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_differential_small_batches(batch_size):
    """Batch boundaries never change answers (vs SQLite)."""
    check_random_workloads(
        lambda: MemoryBackend(
            cost_parameters=CostParameters(batch_size=batch_size)
        ),
        SQLiteBackend,
        77,
    )


def test_differential_jucq_shape():
    """The WITH-based fragment-join shape both backends must agree on."""
    rng = random.Random(5)
    data = random_layout_data(rng)
    memory = MemoryBackend()
    memory.load(data)
    sqlite = SQLiteBackend()
    sqlite.load(data)
    sql = (
        "WITH f0 AS (SELECT s AS v_x FROM c_a UNION SELECT s AS v_x FROM r_p), "
        "f1 AS (SELECT s AS v_x, o AS v_y FROM r_q UNION SELECT s AS v_x, o AS v_y FROM r_r) "
        "SELECT DISTINCT f0.v_x AS ans0, f1.v_y AS ans1 "
        "FROM f0 f0, f1 f1 WHERE f0.v_x = f1.v_x"
    )
    try:
        assert sorted(memory.execute(sql)) == sorted(sqlite.execute(sql))
    finally:
        sqlite.close()


def test_random_statement_generator_stays_in_grammar():
    """The shared generator's output parses in the engine's SQL dialect
    (the conformance suite depends on it)."""
    from repro.engine.sqlparser import parse_sql

    rng = random.Random(9)
    for _ in range(50):
        parse_sql(random_statement(rng))
