"""The reusable backend-conformance suite.

Every storage backend must behave *identically* — same answers on every
statement shape the translator emits, same write semantics, same
return-count contracts — regardless of how it stores rows. The checks
here were extracted from the ad-hoc MemoryBackend-vs-SQLiteBackend
differential tests (``test_engine_vectorized.py`` /
``test_sql_storage.py``) so that any backend, notably
:class:`~repro.storage.sharded_backend.ShardedBackend` at every shard
count, runs through one shared contract:

* :func:`check_random_workloads` — seeded random CQ/UCQ-shaped SQL
  (joins, filters, DISTINCT, UNION / UNION ALL) against an oracle
  backend, answers compared as sorted multisets;
* :func:`check_random_write_churn` — random ``insert_rows`` /
  ``delete_rows`` / ``apply_changes`` churn; the backend must agree with
  the oracle on every *return count* and every answer at every step;
* :func:`check_delete_count_semantics` — the pinned ``delete_rows``
  contract: duplicate input rows count **once**, absent rows count
  zero, a repeated delete returns zero;
* :func:`check_bulk_load_equivalence` — the same dataset ingested via
  a streaming :meth:`~repro.storage.base.Backend.bulk_load` session,
  via plain ``load`` and via incremental ``insert_rows`` must be
  indistinguishable: same answers, same statistics cardinalities, and
  the bulk-loaded instance keeps taking ordinary writes afterwards;
* :func:`check_bulk_load_abort` — an aborted bulk session leaves a
  backend that can still be loaded and queried;
* :func:`check_dialect_translations` — translated CQ / UCQ / JUCQ /
  USCQ / JUSCQ reformulations against the trusted naive evaluator, per
  layout;
* :func:`check_replica_consistency` — the **session-consistency
  oracle** for replicated serving: concurrent readers with epoch
  tokens against a writer, every answer required to equal the
  sequential single-backend oracle at exactly the epoch it reports,
  with that epoch never below the reader's token.

``tests/test_backend_conformance.py`` runs the full backend × layout ×
strategy matrix (including replicas × {1,2,4} × substrates for the
replica oracle); the original differential tests delegate here too.
"""

from __future__ import annotations

import random
import threading
from typing import Callable, Dict, List, Sequence, Tuple

from repro.covers.reformulate import (
    cover_based_reformulation,
    cover_based_uscq_reformulation,
)
from repro.covers.safety import root_cover
from repro.dllite.parser import parse_query
from repro.queries.evaluate import evaluate
from repro.reformulation.perfectref import reformulate_to_ucq
from repro.reformulation.uscq import factorize_ucq
from repro.sql.translator import SQLTranslator
from repro.storage.layouts import LayoutData, TableSpec

CONCEPTS = ("c_a", "c_b", "c_c")
ROLES = ("r_p", "r_q", "r_r")


def clone_abox(abox):
    """An independent ABox copy (systems under test mutate their own)."""
    from repro.dllite.abox import ABox

    clone = ABox()
    for concept in abox.concept_names():
        for (individual,) in abox.concept_facts(concept):
            clone.add_concept(concept, individual)
    for role in abox.role_names():
        for subject, value in abox.role_facts(role):
            clone.add_role(role, subject, value)
    return clone

#: The dialect workload (paper Example 1 vocabulary): bound and unbound
#: subjects, object-position joins, a boolean query.
DIALECT_QUERIES = (
    "q(x) <- PhDStudent(x)",
    "q(x) <- worksWith(y, x)",
    "q(x, y) <- worksWith(x, y)",
    "q(x) <- PhDStudent(x), worksWith(y, x)",
    "q(x) <- PhDStudent(x), supervisedBy(x, y), worksWith(z, y)",
    "q() <- supervisedBy(Damian, Ioana)",
    "q(x) <- supervisedBy(x, Ioana)",
    "q(x) <- supervisedBy(Damian, x)",
)


# ---------------------------------------------------------------------------
# Random workload generation (shared by the differential tests)
# ---------------------------------------------------------------------------
def random_layout_data(rng: random.Random) -> LayoutData:
    """A small random simple-layout dataset over a fixed schema."""
    tables = []
    for name in CONCEPTS:
        rows = sorted({(rng.randrange(8),) for _ in range(rng.randrange(1, 10))})
        tables.append(
            TableSpec(name=name, columns=("s",), rows=list(rows), indexes=(("s",),))
        )
    for name in ROLES:
        rows = sorted(
            {
                (rng.randrange(8), rng.randrange(8))
                for _ in range(rng.randrange(1, 14))
            }
        )
        tables.append(
            TableSpec(
                name=name,
                columns=("s", "o"),
                rows=list(rows),
                indexes=(("s",), ("o",), ("s", "o")),
            )
        )
    return LayoutData(tables=tables)


def random_core(rng: random.Random, arity: int) -> str:
    """One SELECT block over random sources with random predicates."""
    sources = []
    for i in range(rng.randrange(1, 4)):
        table = rng.choice(CONCEPTS + ROLES)
        sources.append(
            (f"t{i}", table, ("s",) if table.startswith("c_") else ("s", "o"))
        )
    conditions = []
    for i in range(1, len(sources)):
        # Connect to an earlier source most of the time (else cross join).
        if rng.random() < 0.85:
            left_alias, _t, left_cols = sources[rng.randrange(i)]
            alias, _t2, cols = sources[i]
            conditions.append(
                f"{left_alias}.{rng.choice(left_cols)} = {alias}.{rng.choice(cols)}"
            )
    for alias, _table, cols in sources:
        if rng.random() < 0.4:
            op = "=" if rng.random() < 0.8 else "<>"
            conditions.append(f"{alias}.{rng.choice(cols)} {op} {rng.randrange(8)}")
        if len(cols) == 2 and rng.random() < 0.15:
            conditions.append(f"{alias}.s = {alias}.o")
    projections = []
    for _ in range(arity):
        alias, _table, cols = rng.choice(sources)
        projections.append(f"{alias}.{rng.choice(cols)}")
    sql = "SELECT "
    if rng.random() < 0.5:
        sql += "DISTINCT "
    sql += ", ".join(f"{p} AS out{i}" for i, p in enumerate(projections))
    sql += " FROM " + ", ".join(f"{t} {a}" for a, t, _ in sources)
    if conditions:
        sql += " WHERE " + " AND ".join(conditions)
    return sql


def random_statement(rng: random.Random) -> str:
    """A random one-to-three-arm UNION / UNION ALL statement."""
    arity = rng.randrange(1, 3)
    arms = [random_core(rng, arity) for _ in range(rng.randrange(1, 4))]
    if len(arms) == 1:
        return arms[0]
    connector = " UNION " if rng.random() < 0.7 else " UNION ALL "
    return connector.join(arms)


# ---------------------------------------------------------------------------
# Conformance checks
# ---------------------------------------------------------------------------
def check_random_workloads(
    make_backend: Callable,
    make_oracle: Callable,
    seed: int,
    statements: int = 25,
) -> None:
    """Backend and oracle agree on random workloads, as sorted multisets
    (so UNION ALL duplicate counts are pinned too)."""
    rng = random.Random(seed)
    data = random_layout_data(rng)
    backend, oracle = make_backend(), make_oracle()
    try:
        backend.load(data)
        oracle.load(data)
        for _ in range(statements):
            sql = random_statement(rng)
            assert sorted(backend.execute(sql)) == sorted(
                oracle.execute(sql)
            ), f"divergence on: {sql}"
    finally:
        backend.close()
        oracle.close()


def check_random_write_churn(
    make_backend: Callable,
    make_oracle: Callable,
    seed: int,
    epochs: int = 8,
    statements_per_epoch: int = 6,
) -> None:
    """Random write churn: identical return counts and answers at every
    epoch. Delete batches deliberately include duplicate rows."""
    rng = random.Random(seed)
    data = random_layout_data(rng)
    backend, oracle = make_backend(), make_oracle()

    def random_rows(table: str, count: int):
        arity = 1 if table.startswith("c_") else 2
        return [
            tuple(rng.randrange(8) for _ in range(arity)) for _ in range(count)
        ]

    try:
        backend.load(data)
        oracle.load(data)
        for _ in range(epochs):
            table = rng.choice(CONCEPTS + ROLES)
            inserts = random_rows(table, rng.randrange(0, 5))
            deletes = random_rows(table, rng.randrange(0, 5))
            if deletes and rng.random() < 0.5:
                deletes.append(deletes[0])  # duplicate input row
            if rng.random() < 0.5:
                backend.insert_rows(table, inserts)
                oracle.insert_rows(table, inserts)
                removed = backend.delete_rows(table, deletes)
                assert removed == oracle.delete_rows(table, deletes)
            else:
                other = rng.choice(CONCEPTS + ROLES)
                changes = (
                    {table: inserts},
                    {table: deletes, other: random_rows(other, 2)}
                    if other != table
                    else {table: deletes},
                )
                backend.apply_changes(*changes)
                oracle.apply_changes(*changes)
            for _ in range(statements_per_epoch):
                sql = random_statement(rng)
                assert sorted(backend.execute(sql)) == sorted(
                    oracle.execute(sql)
                ), f"divergence after churn on: {sql}"
    finally:
        backend.close()
        oracle.close()


def check_bulk_load_equivalence(
    make_backend: Callable,
    make_oracle: Callable,
    seed: int,
    batch_rows: int = 7,
    statements: int = 15,
) -> None:
    """``bulk_load`` ≡ ``load`` ≡ incremental ``insert_rows``.

    The same random dataset is ingested three ways into the backend
    under test — one streaming bulk session (batched, shuffled, with
    duplicate rows mixed in to exercise the deferred dedup pass), one
    plain ``load``, and one empty ``load`` followed by batched
    ``insert_rows`` — plus once into the independent oracle. All four
    must agree on every random statement (as sorted multisets), the
    three backend instances must report the same exact statistics
    cardinality per table, and the bulk-loaded instance must keep
    taking ordinary writes afterwards, still tracking the oracle.
    """
    rng = random.Random(seed)
    data = random_layout_data(rng)
    schema_only = LayoutData(
        tables=[
            TableSpec(
                name=spec.name,
                columns=spec.columns,
                rows=[],
                indexes=spec.indexes,
            )
            for spec in data.tables
        ]
    )
    bulk = make_backend()
    loaded = make_backend()
    incremental = make_backend()
    oracle = make_oracle()
    try:
        loaded.load(data)
        oracle.load(data)
        incremental.load(schema_only)
        for spec in data.tables:
            for start in range(0, len(spec.rows), batch_rows):
                incremental.insert_rows(
                    spec.name, spec.rows[start : start + batch_rows]
                )
        with bulk.bulk_load() as loader:
            for spec in data.tables:
                loader.create_table(
                    spec.name, spec.columns, indexes=spec.indexes
                )
            for spec in data.tables:
                rows = list(spec.rows)
                rows.extend(
                    rng.choice(rows) for _ in range(rng.randrange(0, 4))
                )
                rng.shuffle(rows)
                for start in range(0, len(rows), batch_rows):
                    loader.append(spec.name, rows[start : start + batch_rows])
        for spec in data.tables:
            expected = len(spec.rows)
            for system in (bulk, loaded, incremental):
                stats = system.table_statistics(spec.name)
                if stats is not None:
                    assert stats.cardinality == expected, spec.name
        for _ in range(statements):
            sql = random_statement(rng)
            answer = sorted(oracle.execute(sql))
            assert sorted(bulk.execute(sql)) == answer, f"bulk: {sql}"
            assert sorted(loaded.execute(sql)) == answer, f"load: {sql}"
            assert (
                sorted(incremental.execute(sql)) == answer
            ), f"incremental: {sql}"
        for _ in range(4):
            table = rng.choice(CONCEPTS + ROLES)
            arity = 1 if table.startswith("c_") else 2
            inserts = [
                tuple(rng.randrange(8) for _ in range(arity))
                for _ in range(rng.randrange(1, 4))
            ]
            deletes = [
                tuple(rng.randrange(8) for _ in range(arity))
                for _ in range(rng.randrange(1, 4))
            ]
            bulk.insert_rows(table, inserts)
            oracle.insert_rows(table, inserts)
            assert bulk.delete_rows(table, deletes) == oracle.delete_rows(
                table, deletes
            )
            sql = random_statement(rng)
            assert sorted(bulk.execute(sql)) == sorted(
                oracle.execute(sql)
            ), f"post-bulk churn: {sql}"
    finally:
        bulk.close()
        loaded.close()
        incremental.close()
        oracle.close()


def check_bulk_load_abort(
    make_backend: Callable, make_oracle: Callable, seed: int
) -> None:
    """An aborted bulk session leaves a backend that still loads and
    answers correctly (no half-published tables poisoning later use)."""
    rng = random.Random(seed)
    data = random_layout_data(rng)
    backend, oracle = make_backend(), make_oracle()
    boom = RuntimeError("simulated mid-load failure")
    try:
        oracle.load(data)
        try:
            with backend.bulk_load() as loader:
                loader.create_table("c_a", ("s",), indexes=(("s",),))
                loader.append("c_a", [(1,), (2,), (3,)])
                raise boom
        except RuntimeError as err:
            assert err is boom
        backend.load(data)
        for _ in range(8):
            sql = random_statement(rng)
            assert sorted(backend.execute(sql)) == sorted(
                oracle.execute(sql)
            ), f"post-abort divergence on: {sql}"
    finally:
        backend.close()
        oracle.close()


def check_delete_count_semantics(make_backend: Callable) -> None:
    """The pinned ``Backend.delete_rows`` return-count contract."""
    backend = make_backend()
    try:
        backend.load(
            LayoutData(
                tables=[
                    TableSpec(
                        name="c_a",
                        columns=("s",),
                        rows=[(1,), (2,), (3,)],
                        indexes=(("s",),),
                    ),
                    TableSpec(
                        name="r_p",
                        columns=("s", "o"),
                        rows=[(1, 2), (2, 3)],
                        indexes=(("s",), ("o",), ("s", "o")),
                    ),
                ]
            )
        )
        # Duplicate input rows count once: one stored row was removed.
        assert backend.delete_rows("c_a", [(1,), (1,)]) == 1
        # Absent rows count zero.
        assert backend.delete_rows("c_a", [(9,)]) == 0
        # Mixed batch: duplicates collapse, absents don't count.
        assert backend.delete_rows("c_a", [(2,), (2,), (3,), (99,)]) == 2
        # Deleting again finds nothing.
        assert backend.delete_rows("c_a", [(2,)]) == 0
        assert backend.execute("SELECT s FROM c_a") == []
        # Same contract on binary tables.
        assert backend.delete_rows("r_p", [(1, 2), (1, 2), (7, 7)]) == 1
        assert sorted(backend.execute("SELECT s, o FROM r_p")) == [(2, 3)]
    finally:
        backend.close()


def check_dialect_translations(
    make_backend: Callable,
    layout_factory: Callable,
    abox,
    tbox,
    queries: Sequence[str] = DIALECT_QUERIES,
) -> None:
    """Translated dialects match the trusted naive evaluator.

    Covers plain CQs plus the UCQ / JUCQ / USCQ / JUSCQ reformulations
    of the running-example query, on the given layout.
    """
    layout = layout_factory()
    data = layout.build(abox, tbox)
    translator = SQLTranslator(layout)
    backend = make_backend()
    store = abox.fact_store()

    def assert_matches(query_like, query_for_expected=None):
        sql = translator.translate(query_like)
        rows = backend.execute(sql)
        expected = evaluate(query_for_expected or query_like, store)
        head = getattr(query_like, "head", None)
        if head is None or head:
            decoded = {layout.dictionary.decode_row(row) for row in rows}
            assert decoded == expected, query_like
        else:
            assert (len(rows) > 0) == (len(expected) > 0), query_like

    try:
        backend.load(data)
        for text in queries:
            assert_matches(parse_query(text))
        query = parse_query("q(x) <- PhDStudent(x), worksWith(y, x)")
        ucq = reformulate_to_ucq(query, tbox)
        assert_matches(ucq)
        assert_matches(factorize_ucq(ucq), ucq)
        cover = root_cover(query, tbox)
        assert_matches(cover_based_reformulation(cover, tbox))
        assert_matches(cover_based_uscq_reformulation(cover, tbox))
    finally:
        backend.close()


# ---------------------------------------------------------------------------
# Replicated-serving session consistency
# ---------------------------------------------------------------------------
#: Probe queries for the replica oracle (Example 1 vocabulary: one
#: concept with a subsumption chain, one role with inference, one join).
REPLICA_PROBES = (
    "q(x) <- Researcher(x)",
    "q(x, y) <- worksWith(x, y)",
    "q(x) <- PhDStudent(x), worksWith(y, x)",
)

#: Predicates the oracle's write script draws from.
_WRITE_CONCEPTS = ("Researcher", "PhDStudent")
_WRITE_ROLES = ("worksWith", "supervisedBy")


def replica_consistency_kb():
    """The oracle's KB: paper Example 1 constraints (minus the negative
    one, so random inserts can never make the KB inconsistent) over a
    small seed ABox that mentions every write-script predicate."""
    from repro.dllite.abox import ABox
    from repro.dllite.axioms import ConceptInclusion, RoleInclusion
    from repro.dllite.tbox import TBox
    from repro.dllite.vocabulary import AtomicConcept, Exists, Role

    works_with = Role("worksWith")
    supervised_by = Role("supervisedBy")
    tbox = TBox(
        [
            ConceptInclusion(
                AtomicConcept("PhDStudent"), AtomicConcept("Researcher")
            ),
            ConceptInclusion(Exists(works_with), AtomicConcept("Researcher")),
            ConceptInclusion(
                Exists(works_with.inverted()), AtomicConcept("Researcher")
            ),
            RoleInclusion(works_with, works_with.inverted()),
            RoleInclusion(supervised_by, works_with),
            ConceptInclusion(
                Exists(supervised_by), AtomicConcept("PhDStudent")
            ),
        ]
    )
    abox = ABox()
    abox.add_role("worksWith", "Ioana", "Francois")
    abox.add_role("supervisedBy", "Damian", "Ioana")
    abox.add_concept("PhDStudent", "Damian")
    abox.add_concept("Researcher", "Ioana")
    return tbox, abox


def replica_write_script(
    rng: random.Random, writes: int
) -> List[List[Tuple]]:
    """A deterministic write script where **every step changes the
    data** — so each step advances the primary's epoch by exactly one
    and the sequential history indexes cleanly by epoch. Steps insert
    fresh facts (fresh individuals, so they cannot pre-exist) or delete
    facts a previous step inserted."""
    script: List[List[Tuple]] = []
    inserted: List[Tuple] = []
    for step in range(writes):
        if inserted and rng.random() < 0.3:
            victim = inserted.pop(rng.randrange(len(inserted)))
            script.append([("delete", victim)])
            continue
        batch = []
        for j in range(rng.randrange(1, 3)):
            name = f"w{step}_{j}"
            if rng.random() < 0.5:
                fact = (rng.choice(_WRITE_CONCEPTS), name)
            else:
                fact = (rng.choice(_WRITE_ROLES), name, f"v{step}_{j}")
            batch.append(("insert", fact))
            inserted.append(fact)
        script.append(batch)
    return script


def _apply_script_step(system, step: List[Tuple]) -> None:
    inserts = [fact for op, fact in step if op == "insert"]
    deletes = [fact for op, fact in step if op == "delete"]
    if inserts:
        assert system.insert_facts(inserts) == len(inserts)
    if deletes:
        assert system.delete_facts(deletes) == len(deletes)


def check_replica_consistency(
    make_system: Callable,
    seed: int,
    queries: Sequence[str] = REPLICA_PROBES,
    writes: int = 10,
    readers: int = 3,
    strategy: str = "ucq",
) -> None:
    """The session-consistency oracle for replicated serving.

    ``make_system(tbox, abox)`` must return a **replicated**
    :class:`~repro.obda.system.OBDASystem` (any backend, shard count,
    substrate or replica count — including 1, and including seeded
    replica-kill / lag chaos via ``REPRO_FAULTS``).

    The oracle first replays a deterministic, always-effective write
    script on an *unreplicated* reference system, recording every probe
    query's answers at every epoch — the sequential history
    ``history[query][epoch]``. Then, on the system under test, a writer
    thread replays the same script while reader threads issue reads
    under three token modes (``fresh``: default session token; ``any``:
    ``min_epoch=0``; ``monotonic``: the reader's last observed epoch).
    Every report must satisfy, with ``t`` the effective token:

    * ``report.epoch >= t`` — the token was honored (read-your-writes /
      monotonic reads);
    * ``report.answers == history[query][report.epoch]`` — the answer
      is **byte-identical to the single-backend sequential oracle at
      exactly the epoch the report claims**, i.e. some epoch ``>= t``.

    A final fully-caught-up read per query must equal the history at
    the last epoch.
    """
    rng = random.Random(seed)
    script = replica_write_script(rng, writes)

    # Sequential history on an unreplicated single-backend reference.
    from repro.obda.system import OBDASystem

    tbox, abox = replica_consistency_kb()
    history: Dict[str, List] = {query: [] for query in queries}
    with OBDASystem(tbox, clone_abox(abox), backend="memory") as reference:
        for query in queries:
            history[query].append(
                reference.answer(query, strategy=strategy).answers
            )
        for step in script:
            _apply_script_step(reference, step)
            assert reference.data_epoch == len(history[queries[0]]), (
                "write script step was not a single-epoch write"
            )
            for query in queries:
                history[query].append(
                    reference.answer(query, strategy=strategy).answers
                )

    tbox, abox = replica_consistency_kb()
    system = make_system(tbox, abox)
    assert system.replica_set is not None, (
        "make_system must build a replicated system"
    )
    failures: List[str] = []
    done = threading.Event()

    def read_loop(reader_index: int) -> None:
        from repro.serving.concurrency import QueryTimeoutError

        reader_rng = random.Random(f"{seed}:{reader_index}")
        last_seen = 0
        while not failures and (not done.is_set() or last_seen == 0):
            query = reader_rng.choice(list(queries))
            mode = reader_rng.choice(("fresh", "any", "monotonic"))
            try:
                if mode == "fresh":
                    token = system.epoch_token()  # >= this at answer time
                    report = system.answer(query, strategy=strategy)
                elif mode == "any":
                    token = 0
                    report = system.answer(
                        query, strategy=strategy, min_epoch=0
                    )
                else:
                    token = last_seen
                    report = system.answer(
                        query, strategy=strategy, min_epoch=last_seen
                    )
            except QueryTimeoutError:
                # Deadline-bounded degradation (replica lag under
                # chaos, a saturated set, a slow substrate) is the
                # router's documented failure mode, not a consistency
                # violation: the read failed loudly rather than
                # returning stale data. Keep probing — the final
                # caught-up reads still assert full convergence.
                continue
            if report.epoch is None:
                failures.append(f"report without epoch ({mode}, {query})")
                return
            if report.epoch < token:
                failures.append(
                    f"token violated: epoch {report.epoch} < token "
                    f"{token} ({mode}, {query})"
                )
                return
            if report.answers != history[query][report.epoch]:
                failures.append(
                    f"answers diverge from sequential oracle at epoch "
                    f"{report.epoch} ({mode}, {query}): got "
                    f"{sorted(report.answers)!r}, expected "
                    f"{sorted(history[query][report.epoch])!r}"
                )
                return
            last_seen = report.epoch

    try:
        threads = [
            threading.Thread(target=read_loop, args=(index,), daemon=True)
            for index in range(readers)
        ]
        for thread in threads:
            thread.start()
        for step in script:
            _apply_script_step(system, step)
        done.set()
        for thread in threads:
            thread.join(timeout=60.0)
            assert not thread.is_alive(), "reader thread hung"
        assert not failures, failures[0]
        final = system.epoch_token()
        assert final == len(script)
        for query in queries:
            report = system.answer(
                query, strategy=strategy, min_epoch=final
            )
            assert report.epoch >= final
            assert report.answers == history[query][final], query
    finally:
        done.set()
        system.close()
