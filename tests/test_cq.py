"""Unit tests for the CQ dialect: structure, graphs, canonicalization."""

import pytest

from repro.queries.atoms import concept_atom, role_atom
from repro.queries.cq import CQ
from repro.queries.substitution import Substitution
from repro.queries.terms import Constant, Variable

X, Y, Z, W = Variable("x"), Variable("y"), Variable("z"), Variable("w")


def q_paper_example3() -> CQ:
    """q(x) <- PhDStudent(x) AND worksWith(y, x)."""
    return CQ(
        head=(X,),
        atoms=(concept_atom("PhDStudent", X), role_atom("worksWith", Y, X)),
    )


class TestConstruction:
    def test_empty_body_rejected(self):
        with pytest.raises(ValueError):
            CQ(head=(X,), atoms=())

    def test_unsafe_head_rejected(self):
        with pytest.raises(ValueError):
            CQ(head=(Z,), atoms=(concept_atom("A", X),))

    def test_constant_in_head_allowed(self):
        query = CQ(head=(Constant("a"),), atoms=(concept_atom("A", X),))
        assert query.head == (Constant("a"),)

    def test_boolean_query_allowed(self):
        query = CQ(head=(), atoms=(concept_atom("A", X),))
        assert query.head == ()


class TestVariableStructure:
    def test_variables(self):
        query = q_paper_example3()
        assert query.variables() == {X, Y}

    def test_head_and_existential_variables(self):
        query = q_paper_example3()
        assert query.head_variables() == {X}
        assert query.existential_variables() == {Y}

    def test_unbound_variables(self):
        # y occurs once and is existential -> unbound; x is distinguished.
        query = q_paper_example3()
        assert query.unbound_variables() == {Y}

    def test_repeated_existential_is_bound(self):
        query = CQ(
            head=(X,),
            atoms=(role_atom("r", X, Y), role_atom("s", Y, Z)),
        )
        assert query.unbound_variables() == {Z}

    def test_occurrence_counts(self):
        query = CQ(
            head=(X,),
            atoms=(role_atom("r", X, Y), role_atom("s", Y, X)),
        )
        assert query.occurrence_counts() == {X: 2, Y: 2}


class TestGraphStructure:
    def test_connected_query(self):
        assert q_paper_example3().is_connected()

    def test_disconnected_query(self):
        query = CQ(
            head=(X, Z),
            atoms=(concept_atom("A", X), concept_atom("B", Z)),
        )
        assert not query.is_connected()
        assert len(query.connected_components()) == 2

    def test_components_via_shared_variable(self):
        query = CQ(
            head=(X,),
            atoms=(role_atom("r", X, Y), role_atom("s", Y, Z), concept_atom("A", W), role_atom("t", W, W)),
        )
        components = query.connected_components()
        assert sorted(len(c) for c in components) == [2, 2]


class TestTransformation:
    def test_apply_substitution(self):
        query = q_paper_example3()
        result = query.apply(Substitution({Y: X}))
        assert result.atoms[1] == role_atom("worksWith", X, X)

    def test_dedup_atoms(self):
        query = CQ(
            head=(X,),
            atoms=(concept_atom("A", X), concept_atom("A", X)),
        )
        assert len(query.dedup_atoms().atoms) == 1

    def test_rename_apart_preserves_head(self):
        query = q_paper_example3()
        renamed = query.rename_apart({Y})
        assert renamed.head == (X,)
        assert renamed.atoms[1].args[1] == X
        assert renamed.atoms[1].args[0] != Y


class TestCanonicalKey:
    def test_isomorphic_queries_share_key(self):
        q1 = CQ(head=(X,), atoms=(role_atom("r", X, Y),))
        q2 = CQ(head=(Z,), atoms=(role_atom("r", Z, W),))
        assert q1.canonical_key() == q2.canonical_key()

    def test_head_position_matters(self):
        q1 = CQ(head=(X,), atoms=(role_atom("r", X, Y),))
        q2 = CQ(head=(Y,), atoms=(role_atom("r", X, Y),))
        assert q1.canonical_key() != q2.canonical_key()

    def test_different_predicates_differ(self):
        q1 = CQ(head=(X,), atoms=(role_atom("r", X, Y),))
        q2 = CQ(head=(X,), atoms=(role_atom("s", X, Y),))
        assert q1.canonical_key() != q2.canonical_key()

    def test_atom_order_irrelevant(self):
        a1, a2 = concept_atom("A", X), role_atom("r", X, Y)
        q1 = CQ(head=(X,), atoms=(a1, a2))
        q2 = CQ(head=(X,), atoms=(a2, a1))
        assert q1.canonical_key() == q2.canonical_key()

    def test_constants_pin_key(self):
        q1 = CQ(head=(), atoms=(role_atom("r", Constant("a"), X),))
        q2 = CQ(head=(), atoms=(role_atom("r", Constant("b"), X),))
        assert q1.canonical_key() != q2.canonical_key()
