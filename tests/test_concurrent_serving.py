"""Concurrent serving against the epoch-based write path.

The central property: a query answered concurrently with writes always
returns the complete answer set of *some* data epoch — the state before
a write or after it, never a torn mix. The stress test pins it over 100
randomized rounds of mixed ``answer_many`` / ``insert_facts`` /
``delete_facts`` traffic against a sequential oracle; the rest covers
the serving executor (determinism across worker counts, admission
control, per-query deadlines) and the read/write barrier primitive.
"""

import random
import threading
import time

import pytest

from repro.dllite.abox import ABox
from repro.engine.parallel import process_substrate_available
from repro.obda.system import OBDASystem
from repro.serving.concurrency import (
    AdmissionController,
    QueryTimeoutError,
    ReadWriteBarrier,
)
from repro.storage.memory_backend import MemoryBackend

QUERY = "q(x) <- Researcher(x)"


def _base_abox() -> ABox:
    abox = ABox()
    abox.add_role("worksWith", "Ioana", "Francois")
    abox.add_role("supervisedBy", "Damian", "Ioana")
    return abox


def _write_script(rng: random.Random, round_no: int):
    """A per-round script of write batches over fresh individuals.

    Inserts introduce new PhDStudents / supervisedBy pairs (each changes
    the Researcher answer set); deletes retract a previously inserted
    batch. Distinct prefixes of the script therefore produce distinct
    answer sets, which is what makes the at-some-epoch assertion sharp.
    """
    script = []
    inserted = []
    for step in range(4):
        if inserted and rng.random() < 0.3:
            batch = inserted.pop(rng.randrange(len(inserted)))
            script.append(("delete", batch))
        else:
            name = f"r{round_no}_{step}"
            if rng.random() < 0.5:
                batch = [("PhDStudent", name)]
            else:
                batch = [("supervisedBy", name, f"adv{round_no}_{step}")]
            script.append(("insert", batch))
            inserted.append(batch)
    return script


def _apply(system: OBDASystem, op: str, batch) -> None:
    if op == "insert":
        system.insert_facts(batch)
    else:
        system.delete_facts(batch)


@pytest.mark.parametrize("seed", range(4))
def test_stress_concurrent_reads_and_writes_match_an_epoch(
    example1_tbox, seed
):
    """100 randomized rounds: every concurrent answer equals the
    sequential oracle's answer at some prefix of the write script."""
    rng = random.Random(seed)
    rounds = 25  # 4 seeds x 25 rounds = the 100-round budget
    for round_no in range(rounds):
        materialized = round_no % 2 == 1
        strategy = "sat" if materialized else "ucq"
        script = _write_script(rng, round_no)

        # Sequential oracle: the answer set at every epoch.
        oracle = OBDASystem(
            example1_tbox, _base_abox(), materialize=materialized
        )
        valid_states = [oracle.answer(QUERY, strategy=strategy).answers]
        for op, batch in script:
            _apply(oracle, op, batch)
            valid_states.append(oracle.answer(QUERY, strategy=strategy).answers)
        oracle.close()

        subject = OBDASystem(
            example1_tbox, _base_abox(), materialize=materialized
        )
        observed = []
        failures = []

        def read(n_batches: int = 3) -> None:
            try:
                for _ in range(n_batches):
                    reports = subject.answer_many(
                        [QUERY, QUERY], strategy=strategy, max_workers=2
                    )
                    observed.extend(report.answers for report in reports)
            except Exception as exc:  # surfaced after join
                failures.append(exc)

        def write() -> None:
            try:
                for op, batch in script:
                    _apply(subject, op, batch)
            except Exception as exc:
                failures.append(exc)

        threads = [
            threading.Thread(target=read),
            threading.Thread(target=read),
            threading.Thread(target=write),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures, failures
        # Every concurrently observed answer set is a whole epoch.
        for answers in observed:
            assert answers in valid_states, (
                f"round {round_no}: torn answers {answers!r} "
                f"not one of {len(valid_states)} epochs"
            )
        # And after the dust settles, the final epoch's answers.
        assert (
            subject.answer(QUERY, strategy=strategy).answers
            == valid_states[-1]
        )
        subject.close()


@pytest.mark.skipif(
    not process_substrate_available(),
    reason="fork start method unavailable",
)
@pytest.mark.parametrize("seed", range(2))
def test_stress_sharded_process_reads_and_writes_match_an_epoch(
    example1_tbox, seed
):
    """The epoch property over the process substrate: every answer a
    sharded system with per-shard worker processes serves concurrently
    with writes equals the sequential oracle at some prefix of the
    write script — writes must replicate into the shard workers under
    the same barrier hold the in-process substrate uses."""
    rng = random.Random(1000 + seed)
    for round_no in range(8):
        script = _write_script(rng, round_no)

        oracle = OBDASystem(example1_tbox, _base_abox())
        valid_states = [oracle.answer(QUERY, strategy="ucq").answers]
        for op, batch in script:
            _apply(oracle, op, batch)
            valid_states.append(oracle.answer(QUERY, strategy="ucq").answers)
        oracle.close()

        subject = OBDASystem(
            example1_tbox, _base_abox(), shards=2, executor="process"
        )
        assert subject.backend.substrate == "process"
        observed = []
        failures = []

        def read(n_batches: int = 3) -> None:
            try:
                for _ in range(n_batches):
                    reports = subject.answer_many(
                        [QUERY, QUERY], strategy="ucq", max_workers=2
                    )
                    observed.extend(report.answers for report in reports)
            except Exception as exc:
                failures.append(exc)

        def write() -> None:
            try:
                for op, batch in script:
                    _apply(subject, op, batch)
            except Exception as exc:
                failures.append(exc)

        threads = [
            threading.Thread(target=read),
            threading.Thread(target=read),
            threading.Thread(target=write),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures, failures
        for answers in observed:
            assert answers in valid_states, (
                f"round {round_no}: torn answers {answers!r} "
                f"not one of {len(valid_states)} epochs"
            )
        assert (
            subject.answer(QUERY, strategy="ucq").answers == valid_states[-1]
        )
        subject.close()


class TestAnswerManyDeterminism:
    @pytest.fixture
    def system(self, example1_tbox, example1_abox):
        with OBDASystem(example1_tbox, example1_abox) as system:
            yield system

    QUERIES = [
        "q(x) <- Researcher(x)",
        "q(x) <- PhDStudent(x)",
        "q(x, y) <- worksWith(x, y)",
        "q(x) <- Researcher(x)",  # duplicate: plan-cache traffic
    ]

    @pytest.mark.parametrize("strategy", ["ucq", "gdl"])
    def test_same_answers_at_any_worker_count(self, system, strategy):
        baseline = [
            report.answers
            for report in system.answer_many(self.QUERIES, strategy=strategy)
        ]
        for workers in (1, 2, 8):
            reports = system.answer_many(
                self.QUERIES, strategy=strategy, max_workers=workers
            )
            assert [report.answers for report in reports] == baseline

    def test_constructor_serving_workers_default(
        self, example1_tbox, example1_abox
    ):
        with OBDASystem(
            example1_tbox, example1_abox, serving_workers=4
        ) as system:
            reports = system.answer_many(self.QUERIES)
            assert len(reports) == len(self.QUERIES)
            assert system.last_batch_stats is not None
            assert system.last_batch_stats["workers"] == 4

    def test_engine_workers_flow_into_the_memory_backend(
        self, example1_tbox, example1_abox
    ):
        def engine_workers(system):
            # Under REPRO_SHARDS the memory backend sits behind a
            # ShardedBackend; the knob must reach every child engine.
            backend = system.backend
            engines = [
                child.db for child in getattr(backend, "children", [backend])
            ]
            counts = {engine.workers for engine in engines}
            assert len(counts) == 1
            return counts.pop()

        with OBDASystem(
            example1_tbox, example1_abox, engine_workers=4
        ) as parallel, OBDASystem(
            example1_tbox, example1_abox, engine_workers=1
        ) as serial:
            assert engine_workers(parallel) == 4
            assert engine_workers(serial) == 1
            for query in self.QUERIES:
                assert (
                    parallel.answer(query).answers
                    == serial.answer(query).answers
                )


class TestAdmissionControl:
    def test_bounded_in_flight(self, example1_tbox, example1_abox):
        with OBDASystem(example1_tbox, example1_abox) as system:
            queries = ["q(x) <- Researcher(x)"] * 12
            reports = system.answer_many(
                queries, strategy="ucq", max_workers=4, max_in_flight=2
            )
            assert len(reports) == 12
            stats = system.last_batch_stats["admission"]
            assert stats["admitted"] == 12
            assert stats["peak_in_flight"] <= 2
            assert stats["in_flight"] == 0

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            AdmissionController(0)


class _SlowBackend(MemoryBackend):
    """A MemoryBackend whose reads take a configurable nap (and count
    how many reads actually ran — cancelled tasks must not)."""

    def __init__(self, delay: float) -> None:
        super().__init__()
        self.delay = delay
        self.reads = 0

    def execute(self, sql):
        self.reads += 1
        time.sleep(self.delay)
        return super().execute(sql)


class TestTimeouts:
    def test_collects_timeout_errors(self, example1_tbox, example1_abox):
        system = OBDASystem(
            example1_tbox, example1_abox, backend=_SlowBackend(0.25)
        )
        try:
            reports = system.answer_many(
                ["q(x) <- Researcher(x)"] * 2,
                strategy="ucq",
                max_workers=2,
                timeout_seconds=0.01,
                on_error="collect",
            )
            assert all(
                isinstance(report.error, QueryTimeoutError)
                for report in reports
            )
            assert all(report.failed for report in reports)
        finally:
            system.close()

    def test_raises_on_timeout(self, example1_tbox, example1_abox):
        system = OBDASystem(
            example1_tbox, example1_abox, backend=_SlowBackend(0.25)
        )
        try:
            with pytest.raises(QueryTimeoutError):
                system.answer_many(
                    ["q(x) <- Researcher(x)"] * 2,
                    strategy="ucq",
                    max_workers=2,
                    timeout_seconds=0.01,
                )
        finally:
            system.close()

    def test_no_timeout_by_default(self, example1_tbox, example1_abox):
        system = OBDASystem(
            example1_tbox, example1_abox, backend=_SlowBackend(0.05)
        )
        try:
            reports = system.answer_many(
                ["q(x) <- Researcher(x)"] * 2, strategy="ucq", max_workers=2
            )
            assert all(not report.failed for report in reports)
        finally:
            system.close()

    def test_admission_gate_respects_the_deadline(
        self, example1_tbox, example1_abox
    ):
        """Slow queries holding every admission slot must not hang the
        batch: later queries time out at the gate and the batch
        returns."""
        system = OBDASystem(
            example1_tbox, example1_abox, backend=_SlowBackend(0.3)
        )
        try:
            started = time.perf_counter()
            reports = system.answer_many(
                ["q(x) <- Researcher(x)"] * 5,
                strategy="ucq",
                max_workers=2,
                max_in_flight=1,
                timeout_seconds=0.05,
                on_error="collect",
            )
            elapsed = time.perf_counter() - started
            assert len(reports) == 5
            assert all(
                isinstance(report.error, QueryTimeoutError)
                for report in reports
            )
            # Sequential execution of five 0.3s queries would take
            # >=1.5s; deadline-bounded admission must return far sooner.
            assert elapsed < 1.2
        finally:
            system.close()

    def test_deadline_runs_from_dispatch_not_collection(
        self, example1_tbox, example1_abox
    ):
        """Concurrently dispatched queries each get their own deadline:
        waiting on an earlier future must not extend a later query's
        budget past dispatch + timeout."""
        system = OBDASystem(
            example1_tbox, example1_abox, backend=_SlowBackend(0.25)
        )
        try:
            reports = system.answer_many(
                ["q(x) <- Researcher(x)"] * 3,
                strategy="ucq",
                max_workers=3,
                timeout_seconds=0.1,
                on_error="collect",
            )
            # All three dispatched immediately; all exceed 0.1s; the
            # in-order collection of report 0 must not grant reports
            # 1 and 2 a fresh 0.1s each from collection time.
            assert all(
                isinstance(report.error, QueryTimeoutError)
                for report in reports
            )
        finally:
            system.close()

    def test_gate_timeouts_do_not_compound(
        self, example1_tbox, example1_abox
    ):
        """Regression: per-query deadline accounting in one batch.

        With every admission slot held by one hung query, each
        subsequent query used to wait out its *own* full timeout at the
        gate, serially — k stragglers burned k × timeout of wall-clock
        even though the gate's fate was already proven. Once one admit
        has timed out with no release since, the rest of the batch must
        fail fast."""
        system = OBDASystem(
            example1_tbox, example1_abox, backend=_SlowBackend(1.5)
        )
        try:
            started = time.perf_counter()
            reports = system.answer_many(
                ["q(x) <- Researcher(x)"] * 12,
                strategy="ucq",
                max_workers=2,
                max_in_flight=1,
                timeout_seconds=0.2,
                on_error="collect",
            )
            elapsed = time.perf_counter() - started
            assert len(reports) == 12
            assert all(
                isinstance(report.error, QueryTimeoutError)
                for report in reports
            )
            # Old behavior: 11 serial gate waits x 0.2s = 2.2s minimum.
            # Fail-fast: one proven gate timeout, the rest immediate.
            assert elapsed < 1.2, elapsed
        finally:
            system.close()

    def test_timed_out_queued_queries_release_their_slots(
        self, example1_tbox, example1_abox
    ):
        """Regression: a query that timed out while still *queued* (its
        pool task never started) used to keep its admission slot and
        its place in the worker queue, burning wall-clock from the next
        batch. Collection must cancel it and reclaim the slot."""
        system = OBDASystem(
            example1_tbox, example1_abox, backend=_SlowBackend(0.5)
        )
        try:
            # Two workers: two queries run 0.5s each, the other two sit
            # in the pool queue holding admission slots.
            reports = system.answer_many(
                ["q(x) <- Researcher(x)"] * 4,
                strategy="ucq",
                max_workers=2,
                max_in_flight=4,
                timeout_seconds=0.1,
                on_error="collect",
            )
            assert all(
                isinstance(report.error, QueryTimeoutError)
                for report in reports
            )
            # The cancelled queued tasks released their slots at
            # collection time, before their (abandoned) runners did.
            stats = system.last_batch_stats["admission"]
            assert stats["admitted"] == 4
            assert stats["released"] >= 2
            # The two cancelled tasks never reach the backend: after
            # the two abandoned runners drain, the read count is 2 —
            # not 4 reads x 0.5s of wall-clock burned from whatever the
            # pool serves next.
            deadline = time.perf_counter() + 5.0
            while (
                system.backend.reads < 2
                and time.perf_counter() < deadline
            ):
                time.sleep(0.05)
            time.sleep(0.7)  # would be mid-flight if they had started
            assert system.backend.reads == 2
        finally:
            system.close()


class TestSharedPoolRegrowth:
    def test_concurrent_batches_while_pool_regrows(
        self, example1_tbox, example1_abox
    ):
        """A batch submitting to the shared pool while a bigger batch
        regrows it must complete (submits retry on the replacement)."""
        system = OBDASystem(
            example1_tbox, example1_abox, backend=_SlowBackend(0.01)
        )
        queries = ["q(x) <- Researcher(x)"] * 10
        results = []
        failures = []

        def batch(workers: int) -> None:
            try:
                results.append(
                    system.answer_many(
                        queries, strategy="ucq", max_workers=workers
                    )
                )
            except Exception as exc:
                failures.append(exc)

        try:
            threads = [
                threading.Thread(target=batch, args=(workers,))
                for workers in (2, 4, 8, 3)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert not failures, failures
            assert len(results) == 4
            expected = system.answer(queries[0], strategy="ucq").answers
            for reports in results:
                assert len(reports) == len(queries)
                assert all(report.answers == expected for report in reports)
        finally:
            system.close()


class TestReadWriteBarrier:
    def test_writer_drains_readers(self):
        barrier = ReadWriteBarrier()
        log = []
        reader_in = threading.Event()
        release_reader = threading.Event()

        def reader():
            with barrier.shared():
                reader_in.set()
                release_reader.wait(timeout=5)
                log.append("reader-done")

        def writer():
            reader_in.wait(timeout=5)
            with barrier.exclusive():
                log.append("writer-done")

        threads = [
            threading.Thread(target=reader),
            threading.Thread(target=writer),
        ]
        for thread in threads:
            thread.start()
        reader_in.wait(timeout=5)
        time.sleep(0.05)  # give the writer time to reach the barrier
        release_reader.set()
        for thread in threads:
            thread.join(timeout=5)
        assert log == ["reader-done", "writer-done"]

    def test_waiting_writer_blocks_new_readers(self):
        barrier = ReadWriteBarrier()
        order = []
        first_reader_in = threading.Event()
        release_first = threading.Event()
        writer_waiting = threading.Event()

        def first_reader():
            with barrier.shared():
                first_reader_in.set()
                release_first.wait(timeout=5)
            order.append("reader1")

        def writer():
            first_reader_in.wait(timeout=5)
            writer_waiting.set()
            with barrier.exclusive():
                order.append("writer")

        def late_reader():
            writer_waiting.wait(timeout=5)
            time.sleep(0.05)  # writer is now parked at the barrier
            with barrier.shared():
                order.append("reader2")

        threads = [
            threading.Thread(target=first_reader),
            threading.Thread(target=writer),
            threading.Thread(target=late_reader),
        ]
        for thread in threads:
            thread.start()
        writer_waiting.wait(timeout=5)
        time.sleep(0.1)
        release_first.set()
        for thread in threads:
            thread.join(timeout=5)
        # Writer preference: the late reader must not overtake the writer.
        assert order.index("writer") < order.index("reader2")

    def test_many_concurrent_readers(self):
        barrier = ReadWriteBarrier()
        peak = [0]
        active = [0]
        lock = threading.Lock()

        def reader():
            with barrier.shared():
                with lock:
                    active[0] += 1
                    peak[0] = max(peak[0], active[0])
                time.sleep(0.01)
                with lock:
                    active[0] -= 1

        threads = [threading.Thread(target=reader) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5)
        assert peak[0] > 1, "readers must overlap"
