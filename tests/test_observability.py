"""End-to-end query tracing and the unified metrics registry.

Covers the :mod:`repro.obs` subsystem and its integration points:

* span/tracer unit behaviour, including the disabled :data:`NO_SPAN`
  path and rehydration of span dicts grafted from forked workers;
* the bounded-histogram metrics registry (quantiles, merging,
  Prometheus rendering) and the process-wide singleton;
* trace completeness for one ``answer()`` under every execution
  substrate (serial / thread / process) at 1 and 4 shards, with
  parent-child integrity and worker attribution;
* disabled tracing: identical answers, no retained trace state;
* the canonical-name telemetry aliases, the slow-query log, and the
  ``EXPLAIN ANALYZE`` surfaces on every backend.
"""

from __future__ import annotations

import logging
import os

import pytest

from repro.engine.database import MiniRDBMS
from repro.engine.parallel import process_substrate_available
from repro.obda.system import OBDASystem
from repro.obs.metrics import (
    DEFAULT_BUCKET_BOUNDS,
    HIST_BOUNDS_ENV,
    Histogram,
    MetricsRegistry,
    get_registry,
    histogram_bounds,
    reset_registry,
)
from repro.obs.trace import (
    NO_SPAN,
    TRACE_ENV,
    Tracer,
    activate,
    current_span,
    trace_enabled_default,
)
from repro.storage.memory_backend import MemoryBackend
from repro.storage.sharded_backend import ShardedBackend
from repro.storage.sqlite_backend import SQLiteBackend

needs_processes = pytest.mark.skipif(
    not process_substrate_available(),
    reason="fork start method unavailable",
)

#: Span names every traced ``answer()`` must produce, in pipeline order.
PIPELINE_SPANS = ("query", "parse", "reformulate", "translate", "execute", "decode")


@pytest.fixture(autouse=True)
def _isolate_replica_env(monkeypatch):
    """Insulate this suite from the ambient replica knob (the CI
    replicated-serving leg exports ``REPRO_REPLICAS`` for the *rest* of
    the tier-1 suite): tests here introspect the primary backend's
    execution internals (``last_execution`` routes, shard telemetry,
    batch route counters), which legitimately stay idle when reads are
    served by replica backends. Replica observability has its own
    assertions in ``tests/test_replica_serving.py``."""
    monkeypatch.delenv("REPRO_REPLICAS", raising=False)


@pytest.fixture(autouse=True)
def fresh_registry():
    """Isolate each test's process-wide metrics."""
    reset_registry()
    yield
    reset_registry()


# ----------------------------------------------------------------------
# Trace primitives
# ----------------------------------------------------------------------
class TestSpanPrimitives:
    def test_no_span_is_inert(self):
        assert NO_SPAN.enabled is False
        assert NO_SPAN.child("anything", rows=1) is NO_SPAN
        NO_SPAN.set(rows=1)
        NO_SPAN.graft({"name": "x"})
        with NO_SPAN as span:
            assert span is NO_SPAN
        assert NO_SPAN.to_dict() == {}

    def test_activate_disabled_span_never_touches_context(self):
        assert current_span() is NO_SPAN
        with activate(NO_SPAN):
            assert current_span() is NO_SPAN
        assert current_span() is NO_SPAN

    def test_span_tree_ids_and_durations(self):
        tracer = Tracer()
        with tracer.root("query", strategy="gdl") as root:
            with root.child("parse") as parse:
                pass
            with root.child("execute", rows=3) as execute:
                execute.set(batches=1)
        trace = tracer.trace()
        assert trace.root is root
        names = [span.name for span in trace.spans()]
        assert names == ["query", "parse", "execute"]
        assert root.parent_id is None
        assert parse.parent_id == root.span_id
        assert execute.attributes == {"rows": 3, "batches": 1}
        assert root.end is not None
        assert root.duration_seconds >= parse.duration_seconds
        rendered = trace.render()
        assert "query" in rendered and "strategy=gdl" in rendered

    def test_span_records_errors(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.root("query") as root:
                raise ValueError("boom")
        assert root.error == "ValueError: boom"
        assert tracer.trace().to_dict()["root"]["error"] == "ValueError: boom"

    def test_graft_rehydrates_worker_dicts(self):
        tracer = Tracer()
        with tracer.root("query") as root:
            root.graft(
                {
                    "name": "shard.worker",
                    "span_id": 1,
                    "parent_id": None,
                    "start_s": 0.0,
                    "duration_s": 0.25,
                    "attributes": {"pid": 4242, "clock": "worker"},
                    "children": [
                        {
                            "name": "inner",
                            "span_id": 2,
                            "parent_id": 1,
                            "start_s": 0.1,
                            "duration_s": 0.1,
                        }
                    ],
                }
            )
            root.graft(None)  # ignored
        spans = tracer.trace().spans()
        worker = [span for span in spans if span.name == "shard.worker"]
        assert len(worker) == 1
        # Rehydrated spans get fresh tracer-local ids linking to their
        # coordinator-side parent, and keep worker-clock durations.
        assert worker[0].parent_id == root.span_id
        assert worker[0].attributes["pid"] == 4242
        assert worker[0].duration_seconds == pytest.approx(0.25)
        inner = [span for span in spans if span.name == "inner"]
        assert inner[0].parent_id == worker[0].span_id
        ids = [span.span_id for span in spans]
        assert len(ids) == len(set(ids))

    def test_trace_env_default(self, monkeypatch):
        monkeypatch.delenv(TRACE_ENV, raising=False)
        assert trace_enabled_default() is False
        monkeypatch.setenv(TRACE_ENV, "1")
        assert trace_enabled_default() is True
        monkeypatch.setenv(TRACE_ENV, "garbage")
        assert trace_enabled_default() is False


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestHistogram:
    def test_quantiles_interpolate_and_clamp(self):
        histogram = Histogram(bounds=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.6, 5.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.min == 0.05
        assert histogram.max == 5.0
        assert histogram.total == pytest.approx(6.15)
        p50 = histogram.quantile(0.5)
        assert 0.1 <= p50 <= 1.0
        # +Inf-adjacent quantiles clamp to the exact max.
        assert histogram.quantile(0.99) <= 5.0
        assert Histogram().quantile(0.5) is None

    def test_merge_compatible_and_incompatible_bounds(self):
        left = Histogram(bounds=(1.0, 2.0))
        left.observe(0.5)
        right = Histogram(bounds=(1.0, 2.0))
        right.observe(1.5)
        left.merge_dict(right.to_dict())
        assert left.count == 2
        assert left.buckets == [1, 1, 0]
        odd = Histogram(bounds=(0.25,))
        odd.observe(0.1)
        left.merge_dict(odd.to_dict())  # degrades to p50 placement
        assert left.count == 3
        assert left.min == 0.1

    def test_bounds_env_override(self, monkeypatch):
        monkeypatch.setenv(HIST_BOUNDS_ENV, "0.5,1.5,9")
        assert histogram_bounds() == (0.5, 1.5, 9.0)
        monkeypatch.setenv(HIST_BOUNDS_ENV, "9,1")  # not ascending
        assert histogram_bounds() == DEFAULT_BUCKET_BOUNDS
        monkeypatch.setenv(HIST_BOUNDS_ENV, "pears")
        assert histogram_bounds() == DEFAULT_BUCKET_BOUNDS


class TestMetricsRegistry:
    def test_counters_gauges_histograms_roundtrip(self):
        registry = MetricsRegistry()
        registry.inc("repro.query.count")
        registry.inc("repro.query.count", 2)
        registry.set_gauge("repro.data_epoch", 7)
        registry.observe("repro.query.seconds", 0.01)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["repro.query.count"] == 3
        assert snapshot["gauges"]["repro.data_epoch"] == 7
        assert snapshot["histograms"]["repro.query.seconds"]["count"] == 1
        assert registry.counter_value("repro.query.count") == 3
        assert registry.counter_value("never.seen") == 0.0

    def test_merge_snapshot_adds_counters_overwrites_gauges(self):
        coordinator = MetricsRegistry()
        coordinator.inc("repro.worker.statements", 5)
        coordinator.set_gauge("repro.data_epoch", 1)
        worker = MetricsRegistry()
        worker.inc("repro.worker.statements", 3)
        worker.set_gauge("repro.data_epoch", 2)
        worker.observe("repro.worker.execute.seconds", 0.2)
        coordinator.merge_snapshot(worker.snapshot())
        coordinator.merge_snapshot(None)  # opt-out backends
        snapshot = coordinator.snapshot()
        assert snapshot["counters"]["repro.worker.statements"] == 8
        assert snapshot["gauges"]["repro.data_epoch"] == 2
        assert snapshot["histograms"]["repro.worker.execute.seconds"]["count"] == 1

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.inc("repro.query.count", 2)
        registry.set_gauge("repro.data_epoch", 3)
        registry.observe("repro.query.seconds", 0.004)
        text = registry.render_prometheus()
        assert "# TYPE repro_query_count counter" in text
        assert "repro_query_count 2" in text
        assert "# TYPE repro_data_epoch gauge" in text
        assert '# TYPE repro_query_seconds histogram' in text
        assert 'repro_query_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_query_seconds_count 1" in text

    def test_reset_registry_replaces_singleton(self):
        get_registry().inc("repro.query.count")
        replacement = reset_registry()
        assert get_registry() is replacement
        assert get_registry().counter_value("repro.query.count") == 0.0


# ----------------------------------------------------------------------
# End-to-end traces across substrates
# ----------------------------------------------------------------------
def _span_names(trace):
    return [span.name for span in trace.spans()]


def _assert_tree_integrity(trace):
    spans = trace.spans()
    ids = [span.span_id for span in spans]
    assert len(ids) == len(set(ids)), "span ids must be unique"
    known = set(ids)
    for span in spans:
        if span.parent_id is not None:
            assert span.parent_id in known, (span.name, span.parent_id)
    assert trace.root.parent_id is None
    assert trace.root.end is not None


SUBSTRATES = [
    pytest.param("serial", id="serial"),
    pytest.param("thread", id="thread"),
    pytest.param("process", id="process", marks=needs_processes),
]


class TestTracedAnswerMatrix:
    @pytest.mark.parametrize("substrate", SUBSTRATES)
    @pytest.mark.parametrize("shards", [1, 4])
    def test_trace_is_complete_under_every_substrate(
        self, example1_tbox, example1_abox, substrate, shards
    ):
        with OBDASystem(
            example1_tbox,
            example1_abox,
            backend="memory",
            shards=shards,
            executor=substrate,
            trace=True,
        ) as system:
            report = system.answer("q(x) <- supervisedBy(Damian, x)", strategy="sat")
            assert report.answers == {("Ioana",), ("Francois",)}
            trace = report.trace
            assert trace is not None
            names = _span_names(trace)
            for required in PIPELINE_SPANS:
                assert required in names, f"missing span {required!r} ({names})"
            assert "shards.execute" in names
            assert "shard.execute" in names
            _assert_tree_integrity(trace)
            shard_spans = trace.find("shard.execute")
            route = system.backend.last_execution.route
            if route == "pruned":
                assert len(shard_spans) == 1
            # Every shard.execute span carries its shard id.
            touched = {span.attributes["shard"] for span in shard_spans}
            assert touched == set(system.backend.last_execution.shards_touched)

    @needs_processes
    def test_worker_spans_are_attributed(self, example1_tbox, example1_abox):
        with OBDASystem(
            example1_tbox,
            example1_abox,
            backend="memory",
            shards=4,
            executor="process",
            trace=True,
        ) as system:
            report = system.answer("q(x, y) <- supervisedBy(x, y)", strategy="sat")
            worker_spans = report.trace.find("shard.worker")
            assert len(worker_spans) == 4  # scatter touches every shard
            pids = {span.attributes["pid"] for span in worker_spans}
            assert os.getpid() not in pids, "worker spans must come from workers"
            assert {span.attributes["shard"] for span in worker_spans} == {0, 1, 2, 3}
            for span in worker_spans:
                # Worker clocks are not comparable with the coordinator's.
                assert span.attributes["clock"] == "worker"
                assert span.attributes["transport"] in ("inline", "shm")
            _assert_tree_integrity(report.trace)

    def test_unsharded_trace_has_no_shard_spans(self, example1_tbox, example1_abox):
        # shards=0 pins the plain backend even under REPRO_SHARDS.
        with OBDASystem(example1_tbox, example1_abox, shards=0, trace=True) as system:
            report = system.answer("q(x) <- Researcher(x)")
            names = _span_names(report.trace)
            for required in PIPELINE_SPANS:
                assert required in names
            assert "shards.execute" not in names
            _assert_tree_integrity(report.trace)

    def test_cost_search_spans_describe_the_search(
        self, example1_tbox, example1_abox
    ):
        with OBDASystem(example1_tbox, example1_abox, trace=True) as system:
            report = system.answer("q(x) <- Researcher(x)", strategy="gdl")
            searches = report.trace.find("cover_search")
            assert searches, "gdl answers must trace their cover search"
            attributes = searches[0].attributes
            assert attributes["algorithm"] == "gdl"
            assert attributes["safe_covers_explored"] >= 1
            assert attributes["cost_estimations"] >= 1
            reformulate = report.trace.find("reformulate")[0]
            assert reformulate.attributes["chosen_strategy"] == "gdl"
            assert reformulate.attributes["plan_cache_hit"] is False
            # A second identical answer is a plan-cache hit with no search.
            repeat = system.answer("q(x) <- Researcher(x)", strategy="gdl")
            assert repeat.trace.find("reformulate")[0].attributes["plan_cache_hit"]
            assert not repeat.trace.find("cover_search")


class TestDisabledTracing:
    def test_disabled_trace_identical_answers_and_no_buffers(
        self, example1_tbox, example1_abox
    ):
        query = "q(x) <- Researcher(x)"
        with OBDASystem(example1_tbox, example1_abox, trace=True) as traced:
            expected = traced.answer(query).answers
        with OBDASystem(example1_tbox, example1_abox, trace=False) as system:
            report = system.answer(query)
            assert report.answers == expected
            assert report.trace is None
            assert current_span() is NO_SPAN

    @needs_processes
    def test_disabled_trace_on_process_substrate(
        self, example1_tbox, example1_abox
    ):
        with OBDASystem(
            example1_tbox,
            example1_abox,
            backend="memory",
            shards=2,
            executor="process",
            trace=False,
        ) as system:
            report = system.answer("q(x) <- Researcher(x)")
            assert report.answers == {("Damian",), ("Ioana",), ("Francois",)}
            assert report.trace is None

    def test_trace_env_turns_tracing_on(
        self, example1_tbox, example1_abox, monkeypatch
    ):
        monkeypatch.setenv(TRACE_ENV, "1")
        with OBDASystem(example1_tbox, example1_abox) as system:
            assert system.trace_enabled
            assert system.answer("q(x) <- Researcher(x)").trace is not None


# ----------------------------------------------------------------------
# Metrics surfaces
# ----------------------------------------------------------------------
class TestSystemMetrics:
    def test_answer_populates_registry(self, example1_tbox, example1_abox):
        # shards=0: sharded process workers would record their engine
        # statements under repro.worker.statements instead.
        with OBDASystem(example1_tbox, example1_abox, shards=0) as system:
            system.answer("q(x) <- Researcher(x)")
            system.answer("q(x) <- Researcher(x)")
            metrics = system.metrics()
            counters = metrics["counters"]
            assert counters["repro.query.count"] == 2
            assert counters["repro.plan_cache.misses"] == 1
            assert counters["repro.plan_cache.hits"] == 1
            assert counters["repro.engine.statements"] >= 2
            assert metrics["histograms"]["repro.query.seconds"]["count"] == 2
            assert metrics["gauges"]["repro.cache.plan.hits"] == 1
            assert "repro.data_epoch" in metrics["gauges"]
            prometheus = system.metrics_prometheus()
            assert "repro_query_count 2" in prometheus

    @needs_processes
    def test_metrics_merge_worker_registries_without_double_count(
        self, example1_tbox, example1_abox
    ):
        with OBDASystem(
            example1_tbox,
            example1_abox,
            backend="memory",
            shards=4,
            executor="process",
        ) as system:
            system.answer("q(x, y) <- supervisedBy(x, y)", strategy="sat")
            first = system.metrics()["counters"]
            second = system.metrics()["counters"]
            assert first["repro.worker.statements"] >= 4
            # Reading metrics must not accumulate worker counters.
            assert first["repro.worker.statements"] == second[
                "repro.worker.statements"
            ]

    @needs_processes
    def test_metrics_after_close_degrades(self, example1_tbox, example1_abox):
        system = OBDASystem(
            example1_tbox,
            example1_abox,
            backend="memory",
            shards=2,
            executor="process",
        )
        system.answer("q(x) <- Researcher(x)")
        system.close()
        # Closed workers contribute nothing, but the read must not raise.
        assert system.metrics()["counters"]["repro.query.count"] == 1

    def test_gather_transfer_counters(self, example1_tbox, example1_abox):
        with OBDASystem(
            example1_tbox, example1_abox, backend="memory", shards=4
        ) as system:
            system.answer("q(x) <- Researcher(x)")  # join → gather route
            telemetry = system.backend.shard_telemetry()
            assert telemetry["gather"] >= 1
            assert telemetry["gather_tables"] >= 1
            assert telemetry["gather_rows"] >= 1
            # Bytes are estimated at the shm wire width (8 bytes/cell).
            assert telemetry["gather_bytes"] == telemetry["gather_cells"] * 8


class TestTelemetryAliases:
    def test_shard_telemetry_carries_canonical_names(
        self, example1_tbox, example1_abox
    ):
        with OBDASystem(
            example1_tbox, example1_abox, backend="memory", shards=4
        ) as system:
            system.answer("q(x) <- supervisedBy(Damian, x)", strategy="sat")
            telemetry = system.backend.shard_telemetry()
            for old_key, canonical in ShardedBackend.TELEMETRY_ALIASES.items():
                if old_key in telemetry:
                    assert telemetry[canonical] == telemetry[old_key]
            assert telemetry["shards.count"] == telemetry["shards"] == 4
            assert telemetry["shards.executions"] == telemetry["executions"]

    def test_batch_stats_carry_canonical_names(self, example1_tbox, example1_abox):
        with OBDASystem(
            example1_tbox, example1_abox, backend="memory", shards=4
        ) as system:
            system.answer_many(
                ["q(x) <- supervisedBy(Damian, x)"] * 2,
                strategy="sat",
                max_workers=2,
            )
            stats = system.last_batch_stats
            assert stats["serving.workers"] == stats["workers"] == 2
            assert stats["serving.queries"] == stats["queries"] == 2
            assert stats["serving.wall.seconds"] == stats["wall_seconds"]
            assert stats["serving.substrate"] == stats["substrate"]
            shards = stats["shards"]
            assert shards["shards.executions"] == shards["executions"]
            counters = system.metrics()["counters"]
            assert counters["repro.serving.batches"] == 1
            assert counters["repro.serving.queries"] == 2
            assert counters["repro.serving.admission.admitted"] == 2


class TestSlowQueryLog:
    def test_slow_queries_are_logged_with_trace(
        self, example1_tbox, example1_abox, caplog
    ):
        with OBDASystem(
            example1_tbox, example1_abox, trace=True, slow_query_ms=0.0
        ) as system:
            with caplog.at_level(logging.WARNING, logger="repro.slow_query"):
                system.answer("q(x) <- Researcher(x)")
            slow_count = system.metrics()["counters"]["repro.query.slow"]
        records = [
            record
            for record in caplog.records
            if record.name == "repro.slow_query"
        ]
        assert len(records) == 1
        record = records[0]
        assert record.query_ms >= 0.0
        # The record carries the *chosen* strategy, not the requested one.
        assert record.strategy in ("ucq", "croot", "gdl", "edl", "sat")
        assert record.query_trace is not None
        assert record.query_trace["root"]["name"] == "query"
        assert slow_count == 1

    def test_fast_queries_stay_silent(self, example1_tbox, example1_abox, caplog):
        with OBDASystem(
            example1_tbox, example1_abox, slow_query_ms=60_000.0
        ) as system:
            with caplog.at_level(logging.WARNING, logger="repro.slow_query"):
                system.answer("q(x) <- Researcher(x)")
        assert not [
            record
            for record in caplog.records
            if record.name == "repro.slow_query"
        ]


# ----------------------------------------------------------------------
# EXPLAIN ANALYZE surfaces
# ----------------------------------------------------------------------
SQL = "SELECT DISTINCT s FROM r_supervisedby"


def _load(backend, example1_abox, example1_tbox):
    from repro.storage.layouts import SimpleLayout

    backend.load(SimpleLayout().build(example1_abox, example1_tbox))


class TestExplainAnalyze:
    def test_minirdbms_reports_measured_vs_estimated(
        self, example1_tbox, example1_abox
    ):
        backend = MemoryBackend()
        _load(backend, example1_abox, example1_tbox)
        result = backend.db.explain_analyze(SQL)
        assert result.actual_rows == 1
        assert result.actual_seconds >= 0.0
        assert "[actual rows=" in result.text
        assert "Execution: 1 rows in" in result.text
        assert "estimated rows:" in result.text
        # Answers must match the plain execution path (dictionary-coded).
        assert len(backend.execute(SQL)) == 1

    def test_memory_backend_explain_text_analyze(
        self, example1_tbox, example1_abox
    ):
        backend = MemoryBackend()
        _load(backend, example1_abox, example1_tbox)
        plain = backend.explain_text(SQL)
        analyzed = backend.explain_text(SQL, analyze=True)
        assert "[actual rows=" not in plain
        assert "[actual rows=" in analyzed

    def test_sqlite_backend_explain_text_analyze(
        self, example1_tbox, example1_abox
    ):
        backend = SQLiteBackend()
        try:
            _load(backend, example1_abox, example1_tbox)
            analyzed = backend.explain_text(SQL, analyze=True)
            assert "Execution: 1 rows in" in analyzed
        finally:
            backend.close()

    @pytest.mark.parametrize(
        "sql,route_marker",
        [
            ("SELECT DISTINCT s FROM r_supervisedby WHERE s = 0", "pruned"),
            (SQL, "scatter"),
        ],
    )
    def test_sharded_routes_forward_analyze(
        self, example1_tbox, example1_abox, sql, route_marker
    ):
        backend = ShardedBackend(4)
        try:
            _load(backend, example1_abox, example1_tbox)
            analyzed = backend.explain_text(sql, analyze=True)
            assert f"Shard route: {route_marker}" in analyzed
            assert "[actual rows=" in analyzed
        finally:
            backend.close()

    def test_sharded_gather_route_analyze(self, example1_tbox, example1_abox):
        backend = ShardedBackend(4)
        try:
            _load(backend, example1_abox, example1_tbox)
            gather_sql = (
                "SELECT DISTINCT a.o FROM r_supervisedby a, r_workswith b "
                "WHERE a.o = b.s"
            )
            analyzed = backend.explain_text(gather_sql, analyze=True)
            assert "[actual rows=" in analyzed
            assert "Execution:" in analyzed
        finally:
            backend.close()

    def test_never_pulled_marker(self, example1_tbox, example1_abox):
        backend = MemoryBackend()
        _load(backend, example1_abox, example1_tbox)
        # An index-probed join side replaces its SeqScan, so the scan
        # operator produces no batches — the marker must say so rather
        # than report a misleading 0 ms measurement.
        result = backend.db.explain_analyze(
            "SELECT a.s FROM r_supervisedby a, r_workswith b WHERE a.o = b.s"
        )
        assert "[actual rows=0 (never pulled)]" in result.text
        assert result.actual_rows == 1
