"""Tests for the benchmark package: TBox, generator, workload, harness."""

import pytest

from repro.bench.generator import generate_abox, scale_parameters
from repro.bench.lubm import lubm_exists_tbox, tbox_statistics
from repro.bench.queries import (
    benchmark_queries,
    query,
    star_queries,
    workload_profile,
)
from repro.dllite.kb import KnowledgeBase
from repro.dllite.vocabulary import AtomicConcept as C
from repro.dllite.vocabulary import Exists, Role


class TestLubmTBox:
    def test_signature_matches_the_paper(self):
        stats = tbox_statistics()
        # The paper's LUBM∃ TBox: 128 concepts, 34 roles, 212 constraints.
        assert stats["concepts"] == 128
        assert stats["roles"] == 34
        assert stats["axioms"] == 212

    def test_axiom_shape_mix(self):
        stats = tbox_statistics()
        assert stats["existential_rhs"] >= 20   # LUBM∃'s defining trait
        assert stats["role_inclusions"] >= 10
        assert stats["negative"] >= 5

    def test_hierarchy_depth(self):
        tbox = lubm_exists_tbox()
        supers = tbox.super_concepts(C("DistinguishedProfessor"))
        # DistinguishedProfessor <= FullProfessor <= Professor <= Faculty
        # <= Employee <= Person.
        for name in ("FullProfessor", "Professor", "Faculty", "Employee", "Person"):
            assert C(name) in supers

    def test_role_hierarchy_chain(self):
        tbox = lubm_exists_tbox()
        supers = tbox.super_roles(Role("headOf"))
        assert Role("worksFor") in supers
        assert Role("memberOf") in supers  # headOf <= worksFor <= memberOf

    def test_existential_entailment(self):
        tbox = lubm_exists_tbox()
        assert tbox.entails_concept_inclusion(
            C("DoctoralStudent"), Exists(Role("advisor"))
        )

    def test_tbox_is_cached(self):
        assert lubm_exists_tbox() is lubm_exists_tbox()


class TestGenerator:
    def test_deterministic(self):
        first = generate_abox("tiny", seed=7)
        second = generate_abox("tiny", seed=7)
        assert sorted(map(str, first.assertions())) == sorted(
            map(str, second.assertions())
        )

    def test_seed_changes_data(self):
        first = generate_abox("tiny", seed=1)
        second = generate_abox("tiny", seed=2)
        assert sorted(map(str, first.assertions())) != sorted(
            map(str, second.assertions())
        )

    def test_scales_grow(self):
        tiny = len(generate_abox("tiny"))
        small = len(generate_abox("small"))
        medium = len(generate_abox("medium"))
        assert tiny < small < medium

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            scale_parameters("galactic")

    def test_incompleteness_knob(self):
        complete = generate_abox("tiny", type_omission_probability=0.0)
        sparse = generate_abox("tiny", type_omission_probability=1.0)
        assert len(sparse.concept_names()) < len(complete.concept_names())

    def test_generated_kb_is_consistent(self):
        abox = generate_abox("tiny")
        kb = KnowledgeBase(lubm_exists_tbox(), abox)
        assert kb.is_consistent()

    def test_reasoning_is_required(self):
        # With type omission, some department heads lack explicit Chair
        # facts but are still certain answers through headOf's domain.
        from repro.dllite.parser import parse_query
        from repro.queries.evaluate import evaluate_cq, evaluate_ucq
        from repro.reformulation.perfectref import reformulate_to_ucq

        abox = generate_abox("tiny", type_omission_probability=1.0)
        q = parse_query("q(x) <- Chair(x)")
        plain = evaluate_cq(q, abox.fact_store())
        reformulated = evaluate_ucq(
            reformulate_to_ucq(q, lubm_exists_tbox()), abox.fact_store()
        )
        assert plain == set()
        assert reformulated  # every department has a head


class TestWorkload:
    def test_thirteen_queries(self):
        queries = benchmark_queries()
        assert len(queries) == 13
        assert set(queries) == {f"Q{i}" for i in range(1, 14)}

    def test_atom_range_matches_paper(self):
        profile = workload_profile()
        assert min(profile.values()) == 2
        assert max(profile.values()) == 10
        assert 4.5 <= sum(profile.values()) / 13 <= 6.0

    def test_queries_are_connected(self):
        for name, cq in benchmark_queries().items():
            assert cq.is_connected(), name

    def test_star_queries_are_prefixes_of_q1(self):
        stars = star_queries()
        q1 = query("Q1")
        assert set(stars) == {"A3", "A4", "A5", "A6"}
        for i in range(3, 7):
            assert stars[f"A{i}"].atoms == q1.atoms[:i]
        assert stars["A6"].atoms == q1.atoms  # A6 = Q1

    def test_star_queries_are_stars(self):
        from repro.queries.terms import Variable

        for name, star in star_queries().items():
            for atom in star.atoms:
                assert Variable("x") in set(atom.variables()), name

    def test_reformulation_size_spread(self):
        # The paper: 35-667 CQs. Pin our workload's spread on two
        # representative queries (cheap ones; the full table is a bench).
        from repro.reformulation.perfectref import perfectref

        tbox = lubm_exists_tbox()
        small = len(perfectref(query("Q12"), tbox))
        large = len(perfectref(query("Q6"), tbox))
        assert small == 50
        assert large == 585


class TestHarness:
    def test_reformulation_statistics(self):
        from repro.bench.harness import reformulation_statistics

        tbox = lubm_exists_tbox()
        queries = {"Q12": query("Q12")}
        result = reformulation_statistics(tbox, queries)
        assert result.rows[0]["ucq_size"] == 50
        assert "minimal_ucq_size" in result.rows[0]
        assert "Q12" in result.table()

    def test_search_space_experiment(self):
        from repro.bench.harness import search_space_experiment
        from repro.cost.statistics import DataStatistics

        tbox = lubm_exists_tbox()
        abox = generate_abox("tiny")
        stats = DataStatistics.from_abox(abox)
        result = search_space_experiment(
            tbox, {"A3": star_queries()["A3"]}, stats, generalized_limit=100
        )
        row = result.rows[0]
        assert row["lq_size"] >= 1
        assert row["gdl_safe_explored"] >= 1

    def test_evaluation_experiment_smoke(self):
        from repro.bench.harness import evaluation_experiment
        from repro.obda.system import OBDASystem

        tbox = lubm_exists_tbox()
        abox = generate_abox("tiny")
        system = OBDASystem(tbox, abox, backend="sqlite")
        result = evaluation_experiment(
            system,
            {"Q12": query("Q12")},
            variants=(("UCQ", "ucq", None), ("GDL/ext", "gdl", "ext")),
        )
        assert len(result.rows) == 2
        statuses = {row["status"] for row in result.rows}
        assert statuses == {"ok"}
        answer_counts = {row["answers"] for row in result.rows}
        assert len(answer_counts) == 1  # both variants agree
