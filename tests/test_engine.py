"""MiniRDBMS tests: parser, planner, executor, explain, limits."""

import pytest

from repro.engine import (
    MiniRDBMS,
    SQLSyntaxError,
    StatementTooLongError,
    UnknownTableError,
)
from repro.engine.errors import UnknownColumnError
from repro.engine.sqlparser import (
    ColumnRef,
    Literal,
    parse_sql,
    tokenize,
)


@pytest.fixture
def db() -> MiniRDBMS:
    db = MiniRDBMS()
    student = db.create_table("c_phdstudent", ["s"])
    student.insert_many([(1,), (2,)])
    works = db.create_table("r_workswith", ["s", "o"])
    works.insert_many([(1, 3), (2, 3), (3, 4), (4, 1)])
    supervised = db.create_table("r_supervisedby", ["s", "o"])
    supervised.insert_many([(1, 3), (2, 4)])
    db.create_index("r_workswith", ["s"])
    db.create_index("r_workswith", ["o"])
    db.analyze()
    return db


class TestTokenizer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("SeLeCt DISTINCT x FrOm t")
        assert [t.kind for t in tokens] == ["keyword", "keyword", "ident", "keyword", "ident"]

    def test_string_escaping(self):
        tokens = tokenize("SELECT 'it''s' FROM t")
        assert tokens[1].value == "'it''s'"

    def test_unexpected_character(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("SELECT x FROM t WHERE x ; 1")


class TestParser:
    def test_simple_select(self):
        stmt = parse_sql("SELECT s FROM c_phdstudent")
        assert not stmt.ctes
        core = stmt.body.selects[0]
        assert core.projections == ((ColumnRef(None, "s"), None),)

    def test_qualified_and_aliased(self):
        stmt = parse_sql("SELECT t.s AS x FROM c_phdstudent t")
        core = stmt.body.selects[0]
        assert core.projections[0] == (ColumnRef("t", "s"), "x")
        assert core.sources[0].alias == "t"

    def test_where_conjunction(self):
        stmt = parse_sql(
            "SELECT a.s FROM r_workswith a, r_supervisedby b "
            "WHERE a.o = b.s AND a.s = 1"
        )
        core = stmt.body.selects[0]
        assert len(core.conditions) == 2

    def test_join_on(self):
        stmt = parse_sql(
            "SELECT a.s FROM r_workswith a JOIN r_supervisedby b ON a.o = b.s"
        )
        core = stmt.body.selects[0]
        assert len(core.sources) == 2
        assert len(core.conditions) == 1

    def test_union(self):
        stmt = parse_sql("SELECT s FROM t1 UNION SELECT s FROM t2")
        assert len(stmt.body.selects) == 2
        assert not stmt.body.all

    def test_union_all(self):
        stmt = parse_sql("SELECT s FROM t1 UNION ALL SELECT s FROM t2")
        assert stmt.body.all

    def test_with_ctes(self):
        stmt = parse_sql(
            "WITH f1 AS (SELECT s FROM t1), f2 AS (SELECT s FROM t2) "
            "SELECT DISTINCT f1.s FROM f1, f2 WHERE f1.s = f2.s"
        )
        assert [name for name, _ in stmt.ctes] == ["f1", "f2"]
        assert stmt.body.selects[0].distinct

    def test_subquery_source(self):
        stmt = parse_sql("SELECT d.s FROM (SELECT s FROM t1) d")
        core = stmt.body.selects[0]
        assert core.sources[0].alias == "d"

    def test_subquery_requires_alias(self):
        with pytest.raises(SQLSyntaxError):
            parse_sql("SELECT s FROM (SELECT s FROM t1)")

    def test_literals(self):
        stmt = parse_sql("SELECT 1, 'x' FROM t")
        core = stmt.body.selects[0]
        assert core.projections[0][0] == Literal(1)
        assert core.projections[1][0] == Literal("x")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_sql("SELECT s FROM t WHERE s = 1 2")

    def test_bare_table_alias(self):
        # "t extra" parses as table t aliased extra (implicit AS).
        stmt = parse_sql("SELECT s FROM t extra")
        assert stmt.body.selects[0].sources[0].alias == "extra"

    def test_mixed_union_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_sql(
                "SELECT s FROM a UNION SELECT s FROM b UNION ALL SELECT s FROM c"
            )


class TestExecution:
    def test_scan(self, db):
        rows = db.execute("SELECT s FROM c_phdstudent")
        assert sorted(rows) == [(1,), (2,)]

    def test_constant_filter(self, db):
        rows = db.execute("SELECT o FROM r_workswith WHERE s = 1")
        assert rows == [(3,)]

    def test_join(self, db):
        rows = db.execute(
            "SELECT w.s FROM r_workswith w, r_supervisedby b WHERE w.s = b.s"
        )
        assert sorted(rows) == [(1,), (2,)]

    def test_three_way_join(self, db):
        rows = db.execute(
            "SELECT p.s FROM c_phdstudent p, r_workswith w, r_supervisedby b "
            "WHERE p.s = w.s AND w.o = b.o"
        )
        # Students 1 and 2 both work with 3, and (1, 3) is a supervisedBy
        # fact, so both join chains close.
        assert sorted(set(rows)) == [(1,), (2,)]

    def test_self_join_with_aliases(self, db):
        rows = db.execute(
            "SELECT a.s, b.o FROM r_workswith a, r_workswith b WHERE a.o = b.s"
        )
        assert (1, 4) in rows and (3, 1) in rows

    def test_same_source_equality(self, db):
        rows = db.execute("SELECT s FROM r_workswith WHERE s = o")
        assert rows == []

    def test_distinct(self, db):
        rows = db.execute("SELECT DISTINCT w.o FROM r_workswith w")
        assert sorted(rows) == [(1,), (3,), (4,)]

    def test_union_dedups(self, db):
        rows = db.execute(
            "SELECT s FROM c_phdstudent UNION SELECT s FROM r_supervisedby"
        )
        assert sorted(rows) == [(1,), (2,)]

    def test_union_all_keeps_duplicates(self, db):
        rows = db.execute(
            "SELECT s FROM c_phdstudent UNION ALL SELECT s FROM r_supervisedby"
        )
        assert sorted(rows) == [(1,), (1,), (2,), (2,)]

    def test_with_cte_join(self, db):
        rows = db.execute(
            "WITH f1 AS (SELECT s FROM c_phdstudent), "
            "f2 AS (SELECT DISTINCT s FROM r_workswith) "
            "SELECT DISTINCT f1.s FROM f1 f1, f2 f2 WHERE f1.s = f2.s"
        )
        assert sorted(rows) == [(1,), (2,)]

    def test_cte_without_alias(self, db):
        rows = db.execute(
            "WITH f1 AS (SELECT s FROM c_phdstudent) SELECT s FROM f1"
        )
        assert sorted(rows) == [(1,), (2,)]

    def test_subquery_in_from(self, db):
        rows = db.execute(
            "SELECT d.o FROM (SELECT o FROM r_workswith WHERE s = 3) d"
        )
        assert rows == [(4,)]

    def test_literal_projection(self, db):
        rows = db.execute("SELECT 7 AS c, s FROM c_phdstudent")
        assert sorted(rows) == [(7, 1), (7, 2)]

    def test_string_values(self):
        db = MiniRDBMS()
        t = db.create_table("t", ["name"])
        t.insert_many([("alice",), ("bob",)])
        rows = db.execute("SELECT name FROM t WHERE name = 'alice'")
        assert rows == [("alice",)]

    def test_cross_join_fallback(self, db):
        rows = db.execute("SELECT p.s, b.s FROM c_phdstudent p, r_supervisedby b")
        assert len(rows) == 4

    def test_inequality_predicate(self, db):
        rows = db.execute("SELECT s FROM c_phdstudent WHERE s <> 1")
        assert rows == [(2,)]

    def test_unknown_table(self, db):
        with pytest.raises(UnknownTableError):
            db.execute("SELECT s FROM missing")

    def test_unknown_column(self, db):
        with pytest.raises(UnknownColumnError):
            db.execute("SELECT nope FROM c_phdstudent")

    def test_ambiguous_column(self, db):
        with pytest.raises(UnknownColumnError):
            db.execute("SELECT s FROM r_workswith a, r_supervisedby b")

    def test_duplicate_alias_rejected(self, db):
        from repro.engine.errors import PlanningError

        with pytest.raises(PlanningError):
            db.execute("SELECT a.s FROM r_workswith a, r_supervisedby a")


class TestExplain:
    def test_explain_returns_cost_without_executing(self, db):
        result = db.explain(
            "SELECT w.s FROM r_workswith w, r_supervisedby b WHERE w.s = b.s"
        )
        assert result.total_cost > 0
        assert "HashJoin" in result.text

    def test_filtered_scan_cheaper_than_full(self, db):
        full = db.estimated_cost("SELECT s FROM r_workswith")
        filtered = db.estimated_cost("SELECT s FROM r_workswith WHERE s = 1")
        assert filtered < full

    def test_index_probe_used(self, db):
        result = db.explain("SELECT o FROM r_workswith WHERE s = 1")
        assert "IndexScan" in result.text

    def test_union_cost_accumulates(self, db):
        single = db.estimated_cost("SELECT s FROM r_workswith")
        union = db.estimated_cost(
            "SELECT s FROM r_workswith UNION SELECT s FROM r_workswith"
        )
        assert union > single

    def test_cte_cost_counted_once_in_total(self, db):
        result = db.explain(
            "WITH f1 AS (SELECT s FROM r_workswith) SELECT s FROM f1"
        )
        assert "Materialize f1" in result.text
        assert result.total_cost > 0


class TestStatementLimit:
    def test_oversized_statement_rejected(self):
        db = MiniRDBMS(max_statement_length=100)
        sql = "SELECT s FROM t WHERE " + " AND ".join(
            f"s = {i}" for i in range(50)
        )
        with pytest.raises(StatementTooLongError) as excinfo:
            db.execute(sql)
        assert "too long or too complex" in str(excinfo.value)

    def test_explain_also_enforces_limit(self):
        db = MiniRDBMS(max_statement_length=10)
        with pytest.raises(StatementTooLongError):
            db.explain("SELECT s FROM some_table")

    def test_default_limit_is_db2s(self):
        from repro.engine.database import DB2_STATEMENT_LIMIT

        assert MiniRDBMS().max_statement_length == DB2_STATEMENT_LIMIT == 2_000_000


class TestCatalog:
    def test_set_semantics_on_insert(self):
        db = MiniRDBMS()
        t = db.create_table("t", ["a"])
        t.insert_many([(1,), (1,), (2,)])
        assert len(t) == 2

    def test_statistics(self, db):
        stats = db.catalog.statistics("r_workswith")
        assert stats.cardinality == 4
        assert stats.distinct("s") == 4
        assert stats.distinct("o") == 3

    def test_create_table_replaces(self, db):
        db.create_table("c_phdstudent", ["s"])
        assert len(db.catalog.table("c_phdstudent")) == 0

    def test_arity_mismatch_on_insert(self, db):
        with pytest.raises(ValueError):
            db.insert_many("c_phdstudent", [(1, 2)])
