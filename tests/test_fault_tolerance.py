"""Fault-tolerant shard execution: the chaos suite.

Drives the supervision layer (:mod:`repro.storage.supervisor`) with the
deterministic fault harness (:mod:`repro.faults`): workers are killed
mid-query and on the Nth RPC of seeded randomized workloads, replies are
delayed, dropped, and shm attaches failed — and every answer must stay
byte-identical to a serial/unsharded oracle. Also covers the fault-plan
grammar, the coordinator-side shard state (epoch, bounded write log,
fold), RPC deadlines and serving-deadline propagation, circuit-breaker
degradation and half-open recovery, the shm crash/abort paths, and the
worker loop's clean KeyboardInterrupt/SystemExit exit.
"""

import os
import random
import signal
import threading
import time

import pytest

from repro.engine.parallel import process_substrate_available
from repro.faults import (
    FAULTS_ENV,
    FaultInjector,
    FaultPlan,
    TransientWorkerFault,
)
from repro.serving.concurrency import (
    QueryTimeoutError,
    current_deadline,
    deadline_scope,
)
from repro.storage.layouts import LayoutData, TableSpec
from repro.storage.memory_backend import MemoryBackend
from repro.storage.process_workers import (
    ProcessShardWorker,
    WorkerCrashedError,
    WorkerTimeoutError,
    _worker_main,
)
from repro.storage.sharded_backend import ShardedBackend
from repro.storage.supervisor import (
    RESTARTS_ENV,
    SUPERVISE_ENV,
    ShardState,
    SupervisedShardWorker,
    SupervisionConfig,
    WorkerRespawnError,
    supervision_enabled,
)

needs_processes = pytest.mark.skipif(
    not process_substrate_available(),
    reason="fork start method unavailable",
)


@pytest.fixture(autouse=True)
def _isolate_fault_env(monkeypatch):
    """Insulate this suite from ambient chaos knobs (the CI chaos leg
    exports a probabilistic ``REPRO_FAULTS`` plan for the *rest* of the
    tier-1 suite): every test here arms its own precise plan and
    asserts exact restart/retry counts, so a background kill landing on
    top would make those counts wrong. Tests that exercise the env
    knobs re-set them via ``monkeypatch`` after this runs."""
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    monkeypatch.delenv("REPRO_RPC_TIMEOUT_MS", raising=False)
    monkeypatch.delenv(SUPERVISE_ENV, raising=False)
    monkeypatch.delenv(RESTARTS_ENV, raising=False)


def _layout(rows=600):
    return LayoutData(
        tables=[
            TableSpec(
                name="r_p",
                columns=("s", "o"),
                rows=[(i, (i * 7) % 97) for i in range(rows)],
                indexes=(("s",), ("o",)),
            ),
            TableSpec(
                name="c_a",
                columns=("s",),
                rows=[(i,) for i in range(0, rows, 3)],
                indexes=(("s",),),
            ),
        ]
    )


QUERIES = [
    "SELECT o FROM r_p WHERE s = 6",
    "SELECT DISTINCT s FROM c_a",
    "SELECT s, o FROM r_p",
    "SELECT a.s AS x FROM r_p a, c_a b WHERE a.o = b.s",
]


def _config(**overrides):
    """A supervision config tuned for deterministic tests: no monitor
    thread, no backoff sleeps."""
    settings = dict(
        rpc_timeout_s=10.0,
        monitor=False,
        backoff_initial_s=0.0,
        backoff_cap_s=0.0,
    )
    settings.update(overrides)
    return SupervisionConfig(**settings)


def _oracle(data):
    backend = MemoryBackend()
    backend.load(data)
    return backend


# ----------------------------------------------------------------------
# Fault plan grammar and injector bookkeeping
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_parse_full_grammar(self):
        plan = FaultPlan.parse(
            "seed=42, kill_at=5, kill_cmd=apply, kill_p=0.1, kill_limit=2,"
            "delay_p=0.5, delay_ms=10, drop_p=0.01, shm_attach_p=0.2,"
            "shm_attach_limit=3, spawn_fails=4, shards=0|2"
        )
        assert plan.seed == 42
        assert plan.kill_at == 5
        assert plan.kill_cmd == "apply"
        assert plan.kill_p == pytest.approx(0.1)
        assert plan.kill_limit == 2
        assert plan.delay_ms == pytest.approx(10)
        assert plan.spawn_fails == 4
        assert plan.shards == frozenset({0, 2})
        assert plan.enabled

    def test_empty_plan_is_disabled(self):
        assert not FaultPlan.parse("").enabled
        assert not FaultPlan.parse("seed=7").enabled

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown key"):
            FaultPlan.parse("seed=1,explode=yes")

    def test_malformed_value_rejected(self):
        with pytest.raises(ValueError, match="integer"):
            FaultPlan.parse("kill_at=soon")
        with pytest.raises(ValueError, match="key=value"):
            FaultPlan.parse("kill_at")

    def test_shard_filter(self):
        plan = FaultPlan.parse("kill_at=1,shards=1|3")
        assert plan.applies_to(1) and plan.applies_to(3)
        assert not plan.applies_to(0)
        assert FaultPlan.parse("kill_at=1").applies_to(7)

    def test_kill_budget_defaults(self):
        assert FaultPlan.parse("kill_at=3").kill_budget == 1
        assert FaultPlan.parse("kill_cmd=apply").kill_budget == 1
        assert FaultPlan.parse("kill_p=0.5").kill_budget is None
        assert FaultPlan.parse("kill_at=3,kill_limit=5").kill_budget == 5

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        assert FaultPlan.from_env() is None
        monkeypatch.setenv(FAULTS_ENV, "   ")
        assert FaultPlan.from_env() is None
        monkeypatch.setenv(FAULTS_ENV, "seed=9,kill_at=2")
        plan = FaultPlan.from_env()
        assert plan is not None and plan.kill_at == 2

    def test_injector_charges_kill_budget_at_arming(self):
        injector = FaultInjector(FaultPlan.parse("seed=1,kill_at=2"))
        first = injector.worker_config(0, 0)
        assert first is not None and first.kill_at == 2
        # Budget (1 by default) spent: the respawned generation is safe.
        assert injector.worker_config(0, 1) is None
        # Other shards have their own budget.
        assert injector.worker_config(1, 0).kill_at == 2

    def test_worker_config_token_is_deterministic(self):
        plan = FaultPlan.parse("seed=5,delay_p=0.5,delay_ms=1")
        token = FaultInjector(plan).worker_config(2, 3).token
        assert token == FaultInjector(plan).worker_config(2, 3).token == "5:2:3"

    def test_spawn_fail_budget_and_reset(self):
        injector = FaultInjector(FaultPlan.parse("spawn_fails=2"))
        assert injector.take_spawn_fail(0)
        assert injector.take_spawn_fail(0)
        assert not injector.take_spawn_fail(0)
        assert injector.take_spawn_fail(1)
        injector.reset_spawn_fails()
        assert not injector.take_spawn_fail(1)


# ----------------------------------------------------------------------
# Coordinator-side shard state: epoch, bounded log, fold
# ----------------------------------------------------------------------
class TestShardState:
    def _spec(self, rows):
        return TableSpec(
            name="t", columns=("s", "o"), rows=rows, indexes=(("s",),)
        )

    def test_epoch_counts_every_recorded_write(self):
        state = ShardState(max_log=100)
        assert state.epoch == 0
        state.record(("load", LayoutData(tables=[self._spec([(1, 1)])])))
        state.record(("insert", "t", ((2, 2),)))
        state.record(("delete", "t", ((1, 1),)))
        assert state.epoch == 3
        assert state.expected_counts() == {"t": 1}

    def test_overflow_folds_into_base_without_losing_epoch(self):
        state = ShardState(max_log=2)
        state.record(("load", LayoutData(tables=[self._spec([])])))
        for i in range(10):
            state.record(("insert", "t", ((i, i),)))
        assert state.epoch == 11
        assert len(state.log) == 2
        assert state.base_epoch == 9
        assert state.expected_counts() == {"t": 10}
        # The base snapshot holds the folded prefix; replaying the log
        # over it reproduces the full state.
        folded = state.folded_tables()
        assert len(folded["t"].rows) == 10

    def test_insert_is_set_semantics_and_delete_tolerates_missing(self):
        state = ShardState(max_log=1)
        state.record(("load", LayoutData(tables=[self._spec([(1, 1)])])))
        state.record(("insert", "t", ((1, 1), (2, 2))))
        state.record(("delete", "t", ((9, 9), (2, 2))))
        assert state.expected_counts() == {"t": 1}

    def test_apply_inserts_before_deletes(self):
        state = ShardState(max_log=0)
        state.record(("load", LayoutData(tables=[self._spec([])])))
        state.record(("apply", {"t": ((1, 1),)}, {"t": ((1, 1),)}))
        assert state.expected_counts() == {"t": 0}

    def test_folded_layout_loads_into_a_backend(self):
        state = ShardState(max_log=1)
        state.record(
            ("load", LayoutData(tables=[self._spec([(1, 10), (2, 20)])]))
        )
        state.record(("insert", "t", ((3, 30),)))
        state.record(("delete", "t", ((1, 10),)))
        backend = MemoryBackend()
        backend.load(state.folded_layout())
        assert sorted(backend.execute("SELECT s, o FROM t")) == [
            (2, 20),
            (3, 30),
        ]


# ----------------------------------------------------------------------
# Supervised worker: respawn, replay, verification
# ----------------------------------------------------------------------
@needs_processes
class TestSupervisedWorker:
    def test_sigkill_respawns_at_correct_epoch(self):
        data = _layout()
        oracle = _oracle(data)
        worker = SupervisedShardWorker(MemoryBackend, 0, _config())
        try:
            worker.load(data)
            baseline = worker.execute("SELECT s, o FROM r_p")
            os.kill(worker.worker.pid, signal.SIGKILL)
            time.sleep(0.05)
            assert worker.execute("SELECT s, o FROM r_p") == baseline
            assert sorted(baseline) == sorted(
                oracle.execute("SELECT s, o FROM r_p")
            )
            assert worker.restarts == 1
            assert worker.epoch == 1
            assert not worker.circuit_open
        finally:
            worker.close()
            oracle.close()

    def test_write_replay_is_exactly_once(self):
        worker = SupervisedShardWorker(MemoryBackend, 0, _config())
        try:
            worker.load(_layout())
            worker.insert_rows("r_p", [(9000, 1), (9001, 2)])
            os.kill(worker.worker.pid, signal.SIGKILL)
            time.sleep(0.05)
            # The delete count must come from a backend that applied the
            # pre-delete state exactly once: rebuild to the pre-write
            # epoch, then the retried RPC reports the true count.
            removed = worker.delete_rows("r_p", [(9000, 1), (123456, 9)])
            assert removed == 1
            assert worker.execute("SELECT o FROM r_p WHERE s = 9001") == [(2,)]
            assert worker.execute("SELECT o FROM r_p WHERE s = 9000") == []
            assert worker.epoch == 3
            assert worker.restarts == 1
        finally:
            worker.close()

    def test_sigkill_after_bulk_load_rebuilds_from_snapshot(self):
        """A bulk load folds into the coordinator's snapshot as ONE
        epoch step — the bounded write log stays empty. A SIGKILL right
        after the load therefore rebuilds the worker from a single
        snapshot install (no per-write replay), byte-identically."""
        data = _layout(rows=900)
        oracle = _oracle(data)
        worker = SupervisedShardWorker(MemoryBackend, 0, _config())
        try:
            with worker.bulk_load() as loader:
                for spec in data.tables:
                    loader.create_table(
                        spec.name, spec.columns, indexes=spec.indexes
                    )
                for spec in data.tables:
                    for start in range(0, len(spec.rows), 128):
                        loader.append(
                            spec.name, spec.rows[start : start + 128]
                        )
            # Snapshot, not log: the whole load is one base-epoch step.
            assert len(worker._state.log) == 0
            assert worker._state.base_epoch == 1
            assert worker.epoch == 1
            baseline = {sql: sorted(worker.execute(sql)) for sql in QUERIES}
            os.kill(worker.worker.pid, signal.SIGKILL)
            time.sleep(0.05)
            for sql in QUERIES:
                assert sorted(worker.execute(sql)) == baseline[sql]
                assert baseline[sql] == sorted(oracle.execute(sql))
            assert worker.restarts == 1
            assert worker.epoch == 1
            # The rebuilt worker takes ordinary logged writes as usual.
            worker.insert_rows("c_a", [(100001,)])
            assert worker.epoch == 2
            assert len(worker._state.log) == 1
            assert worker.execute("SELECT s FROM c_a WHERE s = 100001") == [
                (100001,)
            ]
        finally:
            worker.close()
            oracle.close()

    def test_kill_on_nth_rpc_is_transparent(self):
        plan = FaultPlan.parse("seed=11,kill_at=4")
        worker = SupervisedShardWorker(
            MemoryBackend, 0, _config(), FaultInjector(plan)
        )
        data = _layout()
        oracle = _oracle(data)
        try:
            worker.load(data)
            for sql in QUERIES * 3:
                assert sorted(worker.execute(sql)) == sorted(
                    oracle.execute(sql)
                )
            assert worker.restarts == 1
        finally:
            worker.close()
            oracle.close()

    def test_transient_shm_fault_retries_without_respawn(self):
        # Every attach fails once (limit bounds it); the retry on the
        # *same* worker succeeds — the stream stayed synchronized.
        plan = FaultPlan.parse("seed=2,shm_attach_p=1.0,shm_attach_limit=1")
        worker = SupervisedShardWorker(
            MemoryBackend, 0, _config(), FaultInjector(plan)
        )
        data = _layout(rows=3000)  # big scan → shm transport
        oracle = _oracle(data)
        try:
            worker.load(data)
            rows = worker.execute("SELECT s, o FROM r_p")
            assert sorted(rows) == sorted(oracle.execute("SELECT s, o FROM r_p"))
            assert worker.rpc_retries >= 1
            assert worker.restarts == 0
        finally:
            worker.close()
            oracle.close()

    def test_verification_rejects_diverged_rebuild(self, tmp_path):
        # After the flag file appears, *worker-side* loads silently drop
        # a row — a respawned worker then diverges from the
        # coordinator's epoch expectation. Verification must reject
        # every such rebuild (restarts stays 0), trip the breaker, and
        # the in-coordinator fallback (same factory, but running in the
        # unaffected coordinator process) must still answer correctly.
        flag = tmp_path / "lossy"
        coordinator_pid = os.getpid()

        class LossyOnRebuild(MemoryBackend):
            def load(self, data):
                if flag.exists() and os.getpid() != coordinator_pid:
                    for spec in data.tables:
                        if spec.name == "r_p" and spec.rows:
                            spec.rows.pop()
                super().load(data)

        worker = SupervisedShardWorker(
            LossyOnRebuild, 0, _config(max_respawns=2)
        )
        data = _layout(rows=50)
        oracle = _oracle(data)
        try:
            worker.load(data)
            baseline = sorted(worker.execute("SELECT s, o FROM r_p"))
            flag.write_text("armed")
            os.kill(worker.worker.pid, signal.SIGKILL)
            time.sleep(0.05)
            rows = worker.execute("SELECT s, o FROM r_p")
            assert sorted(rows) == baseline == sorted(
                oracle.execute("SELECT s, o FROM r_p")
            )
            assert worker.circuit_open
            assert worker.restarts == 0
        finally:
            worker.close()
            oracle.close()

    def test_dropped_replies_time_out_with_bounded_retries(self):
        # Every reply swallowed: each RPC runs out its deadline, the
        # retry budget bounds the attempts, and the failure surfaces as
        # WorkerTimeoutError instead of a hang.
        plan = FaultPlan.parse("seed=3,drop_p=1.0")
        worker = SupervisedShardWorker(
            MemoryBackend,
            0,
            _config(rpc_timeout_s=0.2, max_respawns=2, max_rpc_retries=1),
            FaultInjector(plan),
        )
        try:
            started = time.monotonic()
            with pytest.raises(WorkerTimeoutError):
                worker.load(_layout(rows=30))
            assert time.monotonic() - started < 10.0
            assert worker.deadline_exceeded >= 2
        finally:
            worker.close()

    def test_repeated_kills_during_rebuild_trip_the_breaker(self):
        # Generations 0..3 all die on their second RPC: the initial
        # worker survives load (RPC 1) and dies on the first query; each
        # respawn's rebuild (load replay + verification) also needs two
        # RPCs, so all K attempts fail and the breaker trips. The first
        # half-open probe lands on the first unarmed generation and
        # recovers.
        plan = FaultPlan.parse("seed=3,kill_at=2,kill_limit=4")
        data = _layout(rows=60)
        oracle = _oracle(data)
        config = _config(max_respawns=3, probe_after_ops=2)
        worker = SupervisedShardWorker(
            MemoryBackend, 0, config, FaultInjector(plan)
        )
        try:
            worker.load(data)
            assert sorted(worker.execute("SELECT s FROM c_a")) == sorted(
                oracle.execute("SELECT s FROM c_a")
            )
            assert worker.circuit_open
            assert worker.circuit_trips == 1
            assert worker.degraded_executions == 1
            assert worker.restarts == 0
            for _ in range(2 * config.probe_after_ops):
                assert sorted(worker.execute("SELECT s FROM c_a")) == sorted(
                    oracle.execute("SELECT s FROM c_a")
                )
            assert not worker.circuit_open
            assert worker.circuit_recoveries == 1
        finally:
            worker.close()
            oracle.close()


# ----------------------------------------------------------------------
# Circuit breaker: trip, degraded execution, half-open recovery
# ----------------------------------------------------------------------
@needs_processes
class TestCircuitBreaker:
    def test_trip_degrade_and_recover(self):
        plan = FaultPlan.parse("seed=4,spawn_fails=100")
        injector = FaultInjector(plan)
        config = _config(max_respawns=3, probe_after_ops=3)
        worker = SupervisedShardWorker(MemoryBackend, 0, config, injector)
        data = _layout(rows=200)
        oracle = _oracle(data)
        try:
            worker.load(data)
            baseline = sorted(worker.execute("SELECT s, o FROM r_p"))
            os.kill(worker.worker.pid, signal.SIGKILL)
            time.sleep(0.05)
            # K respawns all fail (injected): breaker trips, the answer
            # still arrives from the in-coordinator fallback.
            assert sorted(worker.execute("SELECT s, o FROM r_p")) == baseline
            assert worker.circuit_open
            assert worker.circuit_trips == 1
            assert worker.degraded_executions == 1
            # Degraded writes apply to the fallback and are recorded.
            worker.insert_rows("r_p", [(7777, 3)])
            assert worker.execute("SELECT o FROM r_p WHERE s = 7777") == [(3,)]
            assert sorted(worker.execute("SELECT s, o FROM r_p")) == sorted(
                oracle.execute("SELECT s, o FROM r_p") + [(7777, 3)]
            )
            # Let respawns succeed again: the half-open probe (every
            # probe_after_ops operations) closes the circuit and the
            # recovered worker carries the degraded-era write.
            injector.reset_spawn_fails()
            for _ in range(config.probe_after_ops + 1):
                worker.execute("SELECT o FROM r_p WHERE s = 7777")
            assert not worker.circuit_open
            assert worker.circuit_recoveries == 1
            assert worker.restarts == 1
            assert worker.execute("SELECT o FROM r_p WHERE s = 7777") == [(3,)]
        finally:
            worker.close()
            oracle.close()


# ----------------------------------------------------------------------
# RPC deadlines and serving-deadline propagation
# ----------------------------------------------------------------------
class TestDeadlineScope:
    def test_default_is_none_and_scopes_nest(self):
        assert current_deadline() is None
        with deadline_scope(5.0):
            outer = current_deadline()
            assert outer is not None and outer[1] == 5.0
            with deadline_scope(1.0):
                assert current_deadline()[1] == 1.0
            assert current_deadline() == outer
        assert current_deadline() is None

    def test_none_scope_is_noop(self):
        with deadline_scope(None):
            assert current_deadline() is None


@needs_processes
class TestDeadlinePropagation:
    def test_blown_deadline_raises_query_timeout(self):
        # Worker sleeps 500ms before serving anything; a 150ms serving
        # deadline must surface as QueryTimeoutError well before the
        # 10s RPC timeout — i.e. the shard call used min(rpc, remaining).
        plan = FaultPlan.parse("seed=6,delay_p=1.0,delay_ms=500")
        worker = SupervisedShardWorker(
            MemoryBackend,
            0,
            _config(max_rpc_retries=1),
            FaultInjector(plan),
        )
        try:
            worker.load(_layout(rows=50))
            started = time.monotonic()
            with pytest.raises(QueryTimeoutError):
                worker.execute(
                    "SELECT s FROM c_a",
                    deadline=(time.monotonic() + 0.15, 0.15),
                )
            assert time.monotonic() - started < 5.0
            assert worker.deadline_exceeded >= 1
        finally:
            worker.close()

    def test_sharded_backend_reads_the_contextvar(self):
        plan = FaultPlan.parse("seed=6,delay_p=1.0,delay_ms=500")
        backend = ShardedBackend(
            shards=2,
            substrate="process",
            supervision=_config(max_rpc_retries=1),
            fault_injector=FaultInjector(plan),
        )
        try:
            backend.load(_layout(rows=50))
            with deadline_scope(0.15):
                with pytest.raises(QueryTimeoutError):
                    backend.execute("SELECT s, o FROM r_p")
        finally:
            backend.close()


# ----------------------------------------------------------------------
# Shared-memory crash and abort paths (no leaked segments)
# ----------------------------------------------------------------------
def _shm_segments():
    try:
        return {name for name in os.listdir("/dev/shm") if "psm" in name}
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


@needs_processes
class TestShmFailurePaths:
    def test_attach_failure_leaves_no_segment(self):
        # The worker fails between the coordinator's segment creation
        # and its attach: the error reply must travel back over the
        # still-synchronized stream and the coordinator must unlink the
        # segment it created for the handshake.
        plan = FaultPlan.parse("seed=8,shm_attach_p=1.0,shm_attach_limit=1")
        config = FaultInjector(plan).worker_config(0, 0)
        worker = ProcessShardWorker(MemoryBackend, 0, fault_config=config)
        try:
            worker.load(_layout(rows=3000))
            before = _shm_segments()
            with pytest.raises(TransientWorkerFault):
                worker.execute("SELECT s, o FROM r_p")
            assert _shm_segments() <= before
            # Stream stayed synchronized: the same worker still answers
            # (the attach-fail budget is spent).
            assert len(worker.execute("SELECT s, o FROM r_p")) == 3000
        finally:
            worker.close()

    def test_coordinator_allocation_failure_aborts_handshake(
        self, monkeypatch
    ):
        from multiprocessing import shared_memory

        worker = ProcessShardWorker(MemoryBackend, 0)
        try:
            worker.load(_layout(rows=3000))
            real = shared_memory.SharedMemory
            calls = {"n": 0}

            def failing(*args, **kwargs):
                if kwargs.get("create") and calls["n"] == 0:
                    calls["n"] += 1
                    raise OSError("injected allocation failure")
                return real(*args, **kwargs)

            monkeypatch.setattr(shared_memory, "SharedMemory", failing)
            with pytest.raises(OSError, match="injected allocation"):
                worker.execute("SELECT s, o FROM r_p")
            # The abort message kept the worker's request/reply stream
            # synchronized: the next RPC works.
            assert len(worker.execute("SELECT s, o FROM r_p")) == 3000
        finally:
            worker.close()

    def test_sigkill_mid_query_leaves_no_segment(self):
        worker = SupervisedShardWorker(MemoryBackend, 0, _config())
        try:
            worker.load(_layout(rows=3000))
            before = _shm_segments()
            stop = threading.Event()

            def killer():
                while not stop.is_set():
                    proxy = worker.worker
                    if proxy is not None and proxy.pid is not None:
                        try:
                            os.kill(proxy.pid, signal.SIGKILL)
                        except (ProcessLookupError, TypeError):
                            pass
                    time.sleep(0.002)

            thread = threading.Thread(target=killer)
            thread.start()
            try:
                # Whatever point in the handshake the kill lands at, the
                # answer must eventually be correct and no segment may
                # leak. (The killer fires faster than respawns settle,
                # so several generations die mid-conversation.)
                deadline = time.monotonic() + 3.0
                answered = False
                while time.monotonic() < deadline and not answered:
                    try:
                        rows = worker.execute("SELECT s, o FROM r_p")
                        assert len(rows) == 3000
                        answered = True
                    except (WorkerCrashedError, WorkerRespawnError):
                        continue
            finally:
                stop.set()
                thread.join()
            # Once the killing stops, supervision must converge.
            assert len(worker.execute("SELECT s, o FROM r_p")) == 3000
            assert worker.restarts >= 1
            assert _shm_segments() <= before
        finally:
            worker.close()


# ----------------------------------------------------------------------
# Worker loop: clean KeyboardInterrupt / SystemExit exit
# ----------------------------------------------------------------------
@needs_processes
class TestWorkerLoopSignals:
    def test_sigint_exits_worker_cleanly(self):
        worker = ProcessShardWorker(MemoryBackend, 0)
        try:
            worker.load(_layout(rows=20))
            process = worker._process
            os.kill(worker.pid, signal.SIGINT)
            process.join(timeout=5.0)
            # Clean loop exit (backend closed, pipe closed), not a
            # KeyboardInterrupt traceback death.
            assert process.exitcode == 0
        finally:
            worker.close()

    def test_factory_system_exit_closes_pipe(self):
        import multiprocessing

        parent, child = multiprocessing.Pipe()

        def factory():
            raise SystemExit(3)

        _worker_main(child, factory)
        with pytest.raises(EOFError):
            parent.recv()

    def test_system_exit_mid_loop_breaks_cleanly(self):
        import multiprocessing

        class ExitingBackend(MemoryBackend):
            def estimated_cost(self, sql):
                raise SystemExit(5)

        parent, child = multiprocessing.Pipe()
        done = []

        def serve():
            _worker_main(child, ExitingBackend)
            done.append(True)

        thread = threading.Thread(target=serve)
        thread.start()
        try:
            tag, _name = parent.recv()
            assert tag == "ok"
            parent.send(("cost", "SELECT s FROM c_a"))
            thread.join(timeout=5.0)
            # SystemExit broke the loop (clean return) instead of being
            # pickled back as a query error.
            assert done == [True]
            with pytest.raises(EOFError):
                parent.recv()
        finally:
            thread.join(timeout=1.0)


# ----------------------------------------------------------------------
# Sharded backend integration and the seeded chaos workload
# ----------------------------------------------------------------------
@needs_processes
class TestShardedSupervision:
    def test_supervision_is_default_on_process_substrate(self):
        backend = ShardedBackend(shards=2, substrate="process")
        try:
            assert backend._supervisor is not None
            assert all(
                isinstance(child, SupervisedShardWorker)
                for child in backend.children
            )
        finally:
            backend.close()

    def test_supervise_env_opts_out(self, monkeypatch):
        monkeypatch.setenv(SUPERVISE_ENV, "0")
        assert not supervision_enabled()
        backend = ShardedBackend(shards=2, substrate="process")
        try:
            assert backend._supervisor is None
            assert all(
                isinstance(child, ProcessShardWorker)
                for child in backend.children
            )
        finally:
            backend.close()

    def test_restarts_env_configures_k(self, monkeypatch):
        monkeypatch.setenv(RESTARTS_ENV, "5")
        assert SupervisionConfig.from_env().max_respawns == 5
        monkeypatch.setenv(RESTARTS_ENV, "bogus")
        assert SupervisionConfig.from_env().max_respawns == 3

    def test_faults_env_arms_the_backend(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "seed=13,kill_at=6")
        data = _layout()
        oracle = _oracle(data)
        backend = ShardedBackend(
            shards=2, substrate="process", supervision=_config()
        )
        try:
            backend.load(data)
            for sql in QUERIES * 4:
                assert sorted(backend.execute(sql)) == sorted(
                    oracle.execute(sql)
                )
            telemetry = backend.shard_telemetry()
            assert telemetry["worker.restarts"] >= 1
            assert telemetry["worker_restarts"] == telemetry["worker.restarts"]
        finally:
            backend.close()
            oracle.close()

    def test_monitor_heals_idle_worker(self):
        config = _config(monitor=True, monitor_interval_s=0.05)
        backend = ShardedBackend(
            shards=2, substrate="process", supervision=config
        )
        try:
            backend.load(_layout(rows=100))
            victim = backend.children[1]
            os.kill(victim.worker.pid, signal.SIGKILL)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline and victim.restarts == 0:
                time.sleep(0.02)
            # No query ran: the sentinel monitor healed the shard.
            assert victim.restarts == 1
            assert sorted(backend.execute("SELECT DISTINCT s FROM c_a")) == [
                (i,) for i in range(0, 100, 3)
            ]
        finally:
            backend.close()

    def test_sigkill_mid_query_answers_stay_correct(self):
        data = _layout()
        oracle = _oracle(data)
        backend = ShardedBackend(
            shards=4, substrate="process", supervision=_config()
        )
        try:
            backend.load(data)
            victim = backend.children[2]

            def killer():
                time.sleep(0.01)
                proxy = victim.worker
                if proxy is not None and proxy.pid is not None:
                    os.kill(proxy.pid, signal.SIGKILL)

            thread = threading.Thread(target=killer)
            thread.start()
            deadline = time.monotonic() + 1.0
            while time.monotonic() < deadline:
                for sql in QUERIES:
                    assert sorted(backend.execute(sql)) == sorted(
                        oracle.execute(sql)
                    )
            thread.join()
            assert victim.restarts == 1
            assert victim.epoch == 1
        finally:
            backend.close()
            oracle.close()

    def test_sigkill_after_sharded_bulk_load(self):
        """Backend-level kill-after-bulk: every supervised shard folded
        the bulk load into its snapshot (empty logs), so the killed
        worker rebuilds to the same epoch and answers stay correct."""
        data = _layout(rows=600)
        oracle = _oracle(data)
        backend = ShardedBackend(
            shards=2, substrate="process", supervision=_config()
        )
        try:
            with backend.bulk_load() as loader:
                for spec in data.tables:
                    loader.create_table(
                        spec.name, spec.columns, indexes=spec.indexes
                    )
                for spec in data.tables:
                    loader.append(spec.name, spec.rows)
            for child in backend.children:
                assert child.epoch == 1
                assert len(child._state.log) == 0
            victim = backend.children[0]
            os.kill(victim.worker.pid, signal.SIGKILL)
            time.sleep(0.05)
            for sql in QUERIES:
                assert sorted(backend.execute(sql)) == sorted(
                    oracle.execute(sql)
                )
            assert victim.restarts == 1
            assert victim.epoch == 1
        finally:
            backend.close()
            oracle.close()


@needs_processes
class TestChaosWorkload:
    def test_seeded_100_query_workload_matches_oracles(self):
        """The acceptance workload: 4 supervised shards, a worker killed
        on its Nth RPC, 100 seeded randomized queries interleaved with
        writes — every answer identical to the serial/unsharded oracle
        *and* to a clean sharded run."""
        data = _layout()
        oracle = _oracle(data)
        clean = ShardedBackend(
            shards=4, substrate="process", supervision=_config()
        )
        chaotic = ShardedBackend(
            shards=4,
            substrate="process",
            supervision=_config(),
            fault_injector=FaultInjector(
                FaultPlan.parse("seed=7,kill_at=23,kill_limit=2")
            ),
        )
        rng = random.Random(42)
        try:
            clean.load(data)
            chaotic.load(data)
            next_id = 100_000
            for step in range(100):
                if step % 10 == 9:
                    inserts = {"r_p": [(next_id, rng.randrange(97))]}
                    deletes = {"c_a": [(rng.randrange(600),)]}
                    next_id += 1
                    for target in (oracle, clean, chaotic):
                        target.apply_changes(
                            {k: list(v) for k, v in inserts.items()},
                            {k: list(v) for k, v in deletes.items()},
                        )
                    continue
                kind = rng.randrange(3)
                if kind == 0:
                    sql = f"SELECT o FROM r_p WHERE s = {rng.randrange(700)}"
                elif kind == 1:
                    sql = "SELECT DISTINCT s FROM c_a"
                else:
                    sql = "SELECT a.s AS x FROM r_p a, c_a b WHERE a.o = b.s"
                expected = sorted(oracle.execute(sql))
                assert sorted(clean.execute(sql)) == expected, sql
                assert sorted(chaotic.execute(sql)) == expected, sql
            telemetry = chaotic.shard_telemetry()
            assert telemetry["worker.restarts"] >= 1
            # Respawned workers rejoined at the correct data epoch: the
            # per-shard epochs agree across the clean and chaotic runs.
            assert [w.epoch for w in chaotic.children] == [
                w.epoch for w in clean.children
            ]
            assert all(not w.circuit_open for w in chaotic.children)
        finally:
            chaotic.close()
            clean.close()
            oracle.close()

    def test_crash_mid_apply_on_one_shard(self):
        """Satellite: crash 1 of 4 shards mid-``apply_changes``; epoch
        verification repairs the diverged worker and answers equal the
        unsharded oracle."""
        data = _layout()
        oracle = _oracle(data)
        backend = ShardedBackend(
            shards=4,
            substrate="process",
            supervision=_config(),
            fault_injector=FaultInjector(
                FaultPlan.parse("seed=9,kill_cmd=apply,shards=2")
            ),
        )
        try:
            backend.load(data)
            inserts = {"r_p": [(4 * i + 2, 7) for i in range(40)]}
            deletes = {"c_a": [(s,) for s in range(0, 120, 3)]}
            backend.apply_changes(
                {k: list(v) for k, v in inserts.items()},
                {k: list(v) for k, v in deletes.items()},
            )
            oracle.apply_changes(inserts, deletes)
            for sql in QUERIES + ["SELECT s, o FROM r_p WHERE o = 7"]:
                assert sorted(backend.execute(sql)) == sorted(
                    oracle.execute(sql)
                ), sql
            victim = backend.children[2]
            assert victim.restarts == 1
            # The write is recorded exactly once on the rebuilt shard.
            assert victim.epoch == backend.children[0].epoch
            untouched = [
                w.restarts for i, w in enumerate(backend.children) if i != 2
            ]
            assert untouched == [0, 0, 0]
        finally:
            backend.close()
            oracle.close()
