"""The streaming generator's contract: deterministic, seeded, bounded.

The scale story (ISSUE: three orders of magnitude) only works if the
generator is (a) byte-identical for a given ``(scale_factor, seed)``
across runs *and* batch sizes — so benchmarks at different chunkings
measure the same dataset — (b) genuinely different across seeds, and
(c) streaming: a 10^9-scale stream must start yielding instantly and
never hold more than one batch of rows resident.
"""

from __future__ import annotations

import hashlib
from itertools import islice

import pytest

from repro.bench.datagen import (
    CONCEPTS,
    DEPARTMENTS_PER_UNIVERSITY,
    FACTS_PER_DEPARTMENT,
    ROLES,
    departments_for,
    encode_batch,
    exact_fact_count,
    generated_schema,
    load_generated,
    stream_batches,
    stream_facts,
)
from repro.bench.lubm import lubm_exists_tbox
from repro.storage.dictionary import Dictionary
from repro.storage.layouts import SimpleLayout
from repro.storage.memory_backend import MemoryBackend


def stream_digest(scale: int, seed: int, batch_rows: int = None) -> str:
    """A SHA-256 over the serialized fact stream (order-sensitive)."""
    digest = hashlib.sha256()
    if batch_rows is None:
        facts = stream_facts(scale, seed)
    else:
        facts = (
            fact
            for batch in stream_batches(scale, seed, batch_rows)
            for fact in batch
        )
    for fact in facts:
        digest.update("\t".join(fact).encode())
        digest.update(b"\n")
    return digest.hexdigest()


def test_same_seed_is_byte_identical_across_runs():
    assert stream_digest(5000, seed=7) == stream_digest(5000, seed=7)


@pytest.mark.parametrize("batch_rows", (1, 13, 223, 100_000))
def test_batch_size_never_changes_the_stream(batch_rows):
    """Chunking moves only the cut points, never the facts."""
    assert stream_digest(3000, seed=7, batch_rows=batch_rows) == stream_digest(
        3000, seed=7
    )


def test_distinct_seeds_differ():
    assert stream_digest(2000, seed=1) != stream_digest(2000, seed=2)


def test_exact_fact_count_matches_the_stream():
    for scale in (1, 223, 1000, 4460, 12_345):
        facts = list(stream_facts(scale, seed=3))
        assert len(facts) == exact_fact_count(scale), scale
        departments = departments_for(scale)
        universities = -(-departments // DEPARTMENTS_PER_UNIVERSITY)
        assert len(facts) == (
            departments * FACTS_PER_DEPARTMENT + universities
        )


def test_stream_is_lazy_at_absurd_scale():
    """The head of a 10^9-fact stream arrives without generating it."""
    head = list(islice(stream_facts(1_000_000_000, seed=5), 10))
    assert len(head) == 10
    assert head[0] == ("c", "University", "Univ0")


def test_vocabulary_is_closed():
    """Every streamed predicate belongs to the declared signature."""
    for fact in stream_facts(2000, seed=11):
        if fact[0] == "c":
            assert len(fact) == 3 and fact[1] in CONCEPTS, fact
        else:
            assert fact[0] == "r"
            assert len(fact) == 4 and fact[1] in ROLES, fact


def test_bounded_residency_via_batch_sink():
    """``load_generated`` never holds more than one batch of facts: the
    counting sink sees every batch, each within the requested width."""
    seen = []
    backend = MemoryBackend()
    try:
        total, dictionary = load_generated(
            backend, 4000, seed=9, batch_rows=500, batch_sink=seen.append
        )
    finally:
        backend.close()
    assert total == exact_fact_count(4000)
    assert sum(seen) == total
    assert max(seen) <= 500
    assert len(seen) == -(-total // 500)
    # Dictionary codes are dense first-seen ints.
    assert len(dictionary) > 0


def test_encode_batch_routes_to_simple_layout_tables():
    dictionary = Dictionary()
    tables = encode_batch(
        [
            ("c", "University", "Univ0"),
            ("r", "worksFor", "P0", "Dept0_0"),
            ("r", "worksFor", "P1", "Dept0_0"),
        ],
        dictionary,
    )
    assert set(tables) == {
        SimpleLayout.concept_table("University"),
        SimpleLayout.role_table("worksFor"),
    }
    assert tables[SimpleLayout.role_table("worksFor")] == [
        (dictionary.encode("P0"), dictionary.encode("Dept0_0")),
        (dictionary.encode("P1"), dictionary.encode("Dept0_0")),
    ]


def test_generated_schema_covers_tbox_signature():
    """With a TBox, reformulation-only predicates get empty tables too."""
    tbox = lubm_exists_tbox()
    names = {spec.name for spec in generated_schema(tbox)}
    for concept in tbox.concept_names():
        assert SimpleLayout.concept_table(concept) in names
    for role in tbox.role_names():
        assert SimpleLayout.role_table(role) in names
    for concept in CONCEPTS:
        assert SimpleLayout.concept_table(concept) in names


def test_cli_counts_and_stream(capsys):
    from repro.bench.datagen import main

    assert main(["--scale-factor", "223", "--seed", "4", "--counts"]) == 0
    out = capsys.readouterr().out
    assert f"TOTAL\t{exact_fact_count(223)}" in out
    assert main(["--scale-factor", "223", "--seed", "4"]) == 0
    lines = capsys.readouterr().out.splitlines()
    assert len(lines) == exact_fact_count(223)
    assert lines[0] == "c\tUniversity\tUniv0"


def test_cli_load_smoke(capsys):
    from repro.bench.datagen import main

    assert main(["--scale-factor", "446", "--load", "memory"]) == 0
    assert "bulk-loaded" in capsys.readouterr().out


def test_calibration_over_generated_tables():
    """`calibrate_cost_parameters` derives sane constants from a loaded
    backend: the numeraire stays 1.0, every measured constant respects
    the noise floor, and an empty table is a loud error."""
    from repro.bench.calibrate import MIN_UNITS, calibrate_cost_parameters
    from repro.storage.memory_backend import MemoryBackend

    backend = MemoryBackend()
    try:
        from repro.bench.lubm import lubm_exists_tbox

        load_generated(backend, 2000, seed=5, tbox=lubm_exists_tbox())
        parameters, measurements = calibrate_cost_parameters(backend)
        assert parameters.seq_scan_per_row == 1.0
        for name in (
            "dedup_per_row",
            "hash_build_per_row",
            "hash_probe_per_row",
            "index_probe_per_row",
        ):
            assert getattr(parameters, name) >= MIN_UNITS, name
        assert measurements["rows_scanned"] > 0
        assert measurements["unit_s"] > 0
        with pytest.raises(ValueError):
            calibrate_cost_parameters(backend, scan_table="r_degreeFrom")
    finally:
        backend.close()
