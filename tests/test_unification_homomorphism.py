"""Unit tests for mgu computation and CQ containment."""

from repro.queries.atoms import concept_atom, role_atom
from repro.queries.cq import CQ
from repro.queries.homomorphism import (
    are_equivalent,
    find_homomorphism,
    is_contained_in,
)
from repro.queries.minimize import minimize_cq, minimize_ucq
from repro.queries.terms import Constant, Variable
from repro.queries.unification import most_general_unifier

X, Y, Z, W = Variable("x"), Variable("y"), Variable("z"), Variable("w")


class TestMGU:
    def test_different_predicates_fail(self):
        assert most_general_unifier(concept_atom("A", X), concept_atom("B", X)) is None

    def test_different_arities_fail(self):
        assert (
            most_general_unifier(concept_atom("r", X), role_atom("r", X, Y)) is None
        )

    def test_identical_atoms_unify_with_identity(self):
        unifier = most_general_unifier(role_atom("r", X, Y), role_atom("r", X, Y))
        assert unifier is not None
        assert len(unifier) == 0

    def test_variable_to_constant(self):
        unifier = most_general_unifier(
            role_atom("r", X, Y), role_atom("r", Constant("a"), Y)
        )
        assert unifier is not None
        assert unifier.apply_term(X) == Constant("a")

    def test_conflicting_constants_fail(self):
        assert (
            most_general_unifier(
                role_atom("r", Constant("a"), Y), role_atom("r", Constant("b"), Y)
            )
            is None
        )

    def test_transitive_binding(self):
        # r(x, x) vs r(y, a): x ~ y then x ~ a forces y -> a.
        unifier = most_general_unifier(
            role_atom("r", X, X), role_atom("r", Y, Constant("a"))
        )
        assert unifier is not None
        assert unifier.apply_term(X) == Constant("a")
        assert unifier.apply_term(Y) == Constant("a")

    def test_protected_variable_kept_as_representative(self):
        # Paper Example 7 footnote: unify supervisedBy(x, y), supervisedBy(z, y)
        # keeping head variable x.
        unifier = most_general_unifier(
            role_atom("supervisedBy", X, Y),
            role_atom("supervisedBy", Z, Y),
            protected=frozenset({X}),
        )
        assert unifier is not None
        assert unifier.apply_term(Z) == X
        assert unifier.apply_term(X) == X

    def test_example4_q9_unification(self):
        # supervisedBy(x, z) and supervisedBy(y, x) -> supervisedBy(x, x).
        unifier = most_general_unifier(
            role_atom("supervisedBy", X, Z),
            role_atom("supervisedBy", Y, X),
            protected=frozenset({X}),
        )
        assert unifier is not None
        atom = unifier.apply_atom(role_atom("supervisedBy", X, Z))
        assert atom == role_atom("supervisedBy", X, X)


class TestContainment:
    def test_reflexive(self):
        q = CQ(head=(X,), atoms=(role_atom("r", X, Y),))
        assert is_contained_in(q, q)

    def test_more_atoms_is_more_specific(self):
        general = CQ(head=(X,), atoms=(role_atom("r", X, Y),))
        specific = CQ(
            head=(X,), atoms=(role_atom("r", X, Y), concept_atom("A", X))
        )
        assert is_contained_in(specific, general)
        assert not is_contained_in(general, specific)

    def test_example4_containment_in_q10(self):
        # Paper 2.3: q1..q3 of Table 5 are all contained in q10.
        q10 = CQ(head=(X,), atoms=(role_atom("supervisedBy", X, Y),))
        q7 = CQ(
            head=(X,),
            atoms=(
                role_atom("supervisedBy", X, Z),
                role_atom("supervisedBy", Y, X),
            ),
        )
        assert is_contained_in(q7, q10)
        assert not is_contained_in(q10, q7)

    def test_head_arity_mismatch(self):
        q1 = CQ(head=(X,), atoms=(role_atom("r", X, Y),))
        q2 = CQ(head=(X, Y), atoms=(role_atom("r", X, Y),))
        assert not is_contained_in(q1, q2)

    def test_constant_must_match(self):
        qa = CQ(head=(), atoms=(concept_atom("A", Constant("a")),))
        qx = CQ(head=(), atoms=(concept_atom("A", X),))
        assert is_contained_in(qa, qx)  # A(a) is a special case of A(x)
        assert not is_contained_in(qx, qa)

    def test_equivalence_modulo_renaming(self):
        q1 = CQ(head=(X,), atoms=(role_atom("r", X, Y),))
        q2 = CQ(head=(Z,), atoms=(role_atom("r", Z, W),))
        assert are_equivalent(q1, q2)

    def test_homomorphism_returns_mapping(self):
        general = CQ(head=(X,), atoms=(role_atom("r", X, Y),))
        specific = CQ(head=(Z,), atoms=(role_atom("r", Z, Constant("a")),))
        mapping = find_homomorphism(general, specific)
        assert mapping is not None
        assert mapping[X] == Z
        assert mapping[Y] == Constant("a")


class TestMinimization:
    def test_duplicate_atom_removed(self):
        q = CQ(head=(X,), atoms=(role_atom("r", X, Y), role_atom("r", X, Y)))
        assert len(minimize_cq(q).atoms) == 1

    def test_redundant_generalization_removed(self):
        # r(x, y) AND r(x, z) with z unbound folds onto r(x, y).
        q = CQ(head=(X,), atoms=(role_atom("r", X, Y), role_atom("r", X, Z)))
        assert len(minimize_cq(q).atoms) == 1

    def test_core_preserves_equivalence(self):
        q = CQ(
            head=(X,),
            atoms=(role_atom("r", X, Y), role_atom("r", X, Z), concept_atom("A", X)),
        )
        minimized = minimize_cq(q)
        assert are_equivalent(q, minimized)

    def test_non_redundant_untouched(self):
        q = CQ(head=(X,), atoms=(role_atom("r", X, Y), role_atom("s", X, Y)))
        assert minimize_cq(q) == q

    def test_minimize_ucq_drops_subsumed(self):
        q10 = CQ(head=(X,), atoms=(role_atom("supervisedBy", X, Y),))
        q8 = CQ(
            head=(X,),
            atoms=(
                role_atom("supervisedBy", X, Z),
                role_atom("supervisedBy", X, Y),
            ),
        )
        # q8 and q10 are equivalent (the extra atom folds); the smaller
        # representative is kept regardless of order.
        survivors = minimize_ucq([q8, q10])
        assert survivors == [q10]

    def test_minimize_ucq_keeps_one_of_equivalent_pair(self):
        q1 = CQ(head=(X,), atoms=(role_atom("r", X, Y),))
        q2 = CQ(head=(Z,), atoms=(role_atom("r", Z, W),))
        survivors = minimize_ucq([q1, q2])
        assert len(survivors) == 1

    def test_minimize_ucq_incomparable_kept(self):
        qa = CQ(head=(X,), atoms=(concept_atom("A", X),))
        qb = CQ(head=(X,), atoms=(concept_atom("B", X),))
        assert len(minimize_ucq([qa, qb])) == 2
