"""Cover framework tests, pinned to paper Examples 5-11 and Theorems 1-3."""

import pytest

from repro.covers.cover import Cover, GeneralizedCover, GeneralizedFragment
from repro.covers.dependencies import dependencies, share_dependency
from repro.covers.fragments import fragment_query, generalized_fragment_query
from repro.covers.lattice import (
    bell_number,
    enumerate_safe_covers,
    safe_cover_count,
)
from repro.covers.generalized import (
    enumerate_generalized_covers,
    generalized_space_upper_bound,
    in_generalized_space,
)
from repro.covers.reformulate import (
    cover_based_reformulation,
    cover_based_uscq_reformulation,
    fragment_queries_of,
)
from repro.covers.safety import is_safe_cover, root_cover, single_fragment_cover
from repro.dllite.parser import parse_query, parse_tbox
from repro.queries.evaluate import (
    evaluate_jucq,
    evaluate_juscq,
    evaluate_ucq,
)
from repro.queries.terms import Variable
from repro.reformulation.perfectref import reformulate_to_ucq

X, Y, Z, W, V = (Variable(n) for n in "xyzwv")


@pytest.fixture
def example7_query():
    return parse_query(
        "q(x) <- PhDStudent(x), worksWith(x, y), supervisedBy(z, y)"
    )


class TestDependencies:
    """Paper Example 8."""

    def test_example8(self, example7_tbox):
        assert dependencies("PhDStudent", example7_tbox) == {"PhDStudent"}
        assert dependencies("Graduate", example7_tbox) == {"Graduate"}
        assert dependencies("worksWith", example7_tbox) == {
            "worksWith",
            "supervisedBy",
            "Graduate",
        }
        assert dependencies("supervisedBy", example7_tbox) == {
            "supervisedBy",
            "Graduate",
        }

    def test_share_dependency(self, example7_tbox):
        assert share_dependency("worksWith", "supervisedBy", example7_tbox)
        assert not share_dependency("PhDStudent", "worksWith", example7_tbox)

    def test_unknown_predicate_depends_on_itself(self, example7_tbox):
        assert dependencies("Alien", example7_tbox) == {"Alien"}

    def test_example1_tbox_dependencies(self, example1_tbox):
        # worksWith <- supervisedBy (T5); PhDStudent <- supervisedBy via T6.
        assert "supervisedBy" in dependencies("worksWith", example1_tbox)
        assert "supervisedBy" in dependencies("PhDStudent", example1_tbox)


class TestCoverStructure:
    """Definition 1 conditions, Example 5 shape."""

    def test_example5_cover(self):
        query = parse_query(
            "q(x, y) <- teachesTo(v, x), teachesTo(v, y), "
            "supervisedBy(x, w), supervisedBy(y, w)"
        )
        cover = Cover(query, (frozenset({0, 2}), frozenset({1, 3})))
        assert len(cover) == 2
        assert not cover.is_partition() or cover.is_partition()  # well-formed
        assert cover.is_connected()

    def test_must_cover_all_atoms(self, example7_query):
        with pytest.raises(ValueError):
            Cover(example7_query, (frozenset({0}),))

    def test_no_fragment_inclusion(self, example7_query):
        with pytest.raises(ValueError):
            Cover(example7_query, (frozenset({0, 1, 2}), frozenset({1, 2})))

    def test_empty_fragment_rejected(self, example7_query):
        with pytest.raises(ValueError):
            Cover(example7_query, (frozenset(), frozenset({0, 1, 2})))

    def test_overlapping_cover_is_not_partition(self, example7_query):
        cover = Cover(example7_query, (frozenset({0, 1}), frozenset({1, 2})))
        assert not cover.is_partition()

    def test_union_fragments(self, example7_query):
        cover = Cover(
            example7_query, (frozenset({0}), frozenset({1}), frozenset({2}))
        )
        merged = cover.union_fragments(frozenset({0}), frozenset({1}))
        assert len(merged) == 2
        assert frozenset({0, 1}) in merged.fragments

    def test_key_is_order_insensitive(self, example7_query):
        c1 = Cover(example7_query, (frozenset({0, 1}), frozenset({2})))
        c2 = Cover(example7_query, (frozenset({2}), frozenset({0, 1})))
        assert c1.key() == c2.key()


class TestFragmentQueries:
    """Definition 2, Example 6."""

    def test_example6(self):
        query = parse_query(
            "q(x, y) <- teachesTo(v, x), teachesTo(v, y), "
            "supervisedBy(x, w), supervisedBy(y, w)"
        )
        cover = Cover(query, (frozenset({0, 2}), frozenset({1, 3})))
        f1 = fragment_query(query, cover.fragments[0], cover)
        f2 = fragment_query(query, cover.fragments[1], cover)
        # q|f1(x, v, w) and q|f2(y, v, w): head vars + shared existentials.
        assert set(f1.head) == {X, V, W}
        assert set(f2.head) == {Y, V, W}

    def test_unshared_existential_not_exported(self, example7_query, example7_tbox):
        # Cover C2 of Example 9: {PhDStudent(x)}, {worksWith(x,y), supervisedBy(z,y)}.
        cover = Cover(example7_query, (frozenset({0}), frozenset({1, 2})))
        f2 = fragment_query(example7_query, cover.fragments[1], cover)
        # y and z are internal to the fragment: only x is exported.
        assert f2.head == (X,)

    def test_boolean_query_fragments_join_on_existentials(self):
        query = parse_query("q() <- A(x), r(x, y)")
        cover = Cover(query, (frozenset({0}), frozenset({1})))
        f1 = fragment_query(query, cover.fragments[0], cover)
        f2 = fragment_query(query, cover.fragments[1], cover)
        assert f1.head == (X,)
        assert X in f2.head


class TestSafety:
    """Definition 5, Example 7's unsafe C1, Example 10's root cover."""

    def test_c1_is_unsafe(self, example7_query, example7_tbox):
        # C1 separates worksWith and supervisedBy which share a dependency.
        c1 = Cover(example7_query, (frozenset({0, 1}), frozenset({2})))
        assert not is_safe_cover(c1, example7_tbox)

    def test_c2_is_safe(self, example7_query, example7_tbox):
        c2 = Cover(example7_query, (frozenset({0}), frozenset({1, 2})))
        assert is_safe_cover(c2, example7_tbox)

    def test_root_cover_is_example10_c2(self, example7_query, example7_tbox):
        croot = root_cover(example7_query, example7_tbox)
        assert croot.key() == ((0,), (1, 2))

    def test_root_cover_is_safe(self, example7_query, example7_tbox):
        assert is_safe_cover(root_cover(example7_query, example7_tbox), example7_tbox)

    def test_single_fragment_cover_always_safe(self, example7_query, example7_tbox):
        assert is_safe_cover(single_fragment_cover(example7_query), example7_tbox)

    def test_non_partition_is_unsafe(self, example7_query, example7_tbox):
        overlapping = Cover(example7_query, (frozenset({0, 1}), frozenset({1, 2})))
        assert not is_safe_cover(overlapping, example7_tbox)

    def test_root_cover_without_dependencies_is_all_singletons(self):
        from repro.dllite.tbox import TBox

        query = parse_query("q(x) <- A(x), r(x, y), B(y)")
        croot = root_cover(query, TBox())
        assert croot.key() == ((0,), (1,), (2,))


class TestLattice:
    """Theorem 2 and the Bell-number bound."""

    def test_lattice_of_example7(self, example7_query, example7_tbox):
        # Root cover has 2 fragments -> B2 = 2 safe covers.
        covers = list(enumerate_safe_covers(example7_query, example7_tbox))
        assert len(covers) == 2
        keys = {c.key() for c in covers}
        assert ((0,), (1, 2)) in keys       # the root cover
        assert ((0, 1, 2),) in keys         # the single-fragment cover

    def test_every_enumerated_cover_is_safe(self, example7_query, example7_tbox):
        for cover in enumerate_safe_covers(example7_query, example7_tbox):
            assert is_safe_cover(cover, example7_tbox)

    def test_bell_bound_no_dependencies(self):
        from repro.dllite.tbox import TBox

        query = parse_query("q(x) <- A(x), B(x), C(x), D(x)")
        assert safe_cover_count(query, TBox()) == bell_number(4) == 15

    def test_bell_numbers(self):
        assert [bell_number(n) for n in range(7)] == [1, 1, 2, 5, 15, 52, 203]

    def test_fragments_are_unions_of_root_fragments(
        self, example7_query, example7_tbox
    ):
        root = root_cover(example7_query, example7_tbox)
        root_sets = set(root.fragments)
        for cover in enumerate_safe_covers(example7_query, example7_tbox):
            for fragment in cover.fragments:
                # fragment must be expressible as a union of root fragments.
                parts = [r for r in root_sets if r <= fragment]
                assert frozenset().union(*parts) == fragment


class TestGeneralizedCovers:
    """Section 5.2, Example 11, Theorem 3."""

    def test_example11_cover_is_in_gq(self, example7_query, example7_tbox):
        # C3 = {f1||f1, f2||f0} with f0={PhDStudent(x)}, f1={worksWith,
        # supervisedBy}, f2={PhDStudent(x), worksWith(x, y)}.
        c3 = GeneralizedCover(
            example7_query,
            (
                GeneralizedFragment(frozenset({1, 2}), frozenset({1, 2})),
                GeneralizedFragment(frozenset({0, 1}), frozenset({0})),
            ),
        )
        assert in_generalized_space(c3, example7_tbox)

    def test_example11_fragment_queries(self, example7_query, example7_tbox):
        c3 = GeneralizedCover(
            example7_query,
            (
                GeneralizedFragment(frozenset({1, 2}), frozenset({1, 2})),
                GeneralizedFragment(frozenset({0, 1}), frozenset({0})),
            ),
        )
        queries = fragment_queries_of(c3)
        by_body_size = sorted(queries, key=lambda q: len(q.atoms))
        # q|f1||f1 (x): y not exported (it is not a variable of f0).
        f1_query = [q for q in queries if len(q.atoms) == 2 and q.atoms[0].predicate != "PhDStudent"]
        for q in queries:
            assert q.head == (X,)

    def test_g_must_be_subset_of_f(self):
        with pytest.raises(ValueError):
            GeneralizedFragment(frozenset({0}), frozenset({0, 1}))

    def test_g_nonempty(self):
        with pytest.raises(ValueError):
            GeneralizedFragment(frozenset({0}), frozenset())

    def test_from_cover_is_plain(self, example7_query, example7_tbox):
        lifted = GeneralizedCover.from_cover(
            root_cover(example7_query, example7_tbox)
        )
        assert lifted.is_plain()

    def test_enlarge_move(self, example7_query, example7_tbox):
        lifted = GeneralizedCover.from_cover(
            root_cover(example7_query, example7_tbox)
        )
        target = [gf for gf in lifted.fragments if gf.g == frozenset({0})][0]
        enlarged = lifted.enlarge(target, 1)
        assert not enlarged.is_plain()
        assert in_generalized_space(enlarged, example7_tbox)

    def test_enumeration_contains_plain_and_generalized(
        self, example7_query, example7_tbox
    ):
        covers = list(
            enumerate_generalized_covers(example7_query, example7_tbox, limit=500)
        )
        assert any(c.is_plain() for c in covers)
        assert any(not c.is_plain() for c in covers)
        # All enumerated covers are members of Gq.
        for cover in covers:
            assert in_generalized_space(cover, example7_tbox)

    def test_limit_respected(self, example7_query, example7_tbox):
        covers = list(
            enumerate_generalized_covers(example7_query, example7_tbox, limit=3)
        )
        assert len(covers) == 3

    def test_upper_bound_formula(self):
        assert generalized_space_upper_bound(3) == 5 * 3 * 4


class TestCoverBasedReformulation:
    """Definition 3; Examples 7, 9, 11 end-to-end; Theorems 1 and 3."""

    def test_unsafe_c1_misses_answers(
        self, example7_query, example7_tbox, example7_abox
    ):
        # The paper's negative example: C1's JUCQ is NOT a reformulation.
        c1 = Cover(example7_query, (frozenset({0, 1}), frozenset({2})))
        jucq = cover_based_reformulation(c1, example7_tbox)
        facts = example7_abox.fact_store()
        assert evaluate_jucq(jucq, facts) == set()  # misses {Damian}

    def test_example9_safe_c2_reformulation(
        self, example7_query, example7_tbox, example7_abox
    ):
        c2 = Cover(example7_query, (frozenset({0}), frozenset({1, 2})))
        jucq = cover_based_reformulation(c2, example7_tbox)
        facts = example7_abox.fact_store()
        assert evaluate_jucq(jucq, facts) == {("Damian",)}

    def test_example11_generalized_reformulation(
        self, example7_query, example7_tbox, example7_abox
    ):
        c3 = GeneralizedCover(
            example7_query,
            (
                GeneralizedFragment(frozenset({1, 2}), frozenset({1, 2})),
                GeneralizedFragment(frozenset({0, 1}), frozenset({0})),
            ),
        )
        jucq = cover_based_reformulation(c3, example7_tbox)
        facts = example7_abox.fact_store()
        assert evaluate_jucq(jucq, facts) == {("Damian",)}

    def test_theorem1_all_safe_covers_equivalent(
        self, example7_query, example7_tbox, example7_abox
    ):
        facts = example7_abox.fact_store()
        reference = evaluate_ucq(
            reformulate_to_ucq(example7_query, example7_tbox), facts
        )
        for cover in enumerate_safe_covers(example7_query, example7_tbox):
            jucq = cover_based_reformulation(cover, example7_tbox)
            assert evaluate_jucq(jucq, facts) == reference

    def test_theorem3_generalized_covers_equivalent(
        self, example7_query, example7_tbox, example7_abox
    ):
        facts = example7_abox.fact_store()
        reference = evaluate_ucq(
            reformulate_to_ucq(example7_query, example7_tbox), facts
        )
        for cover in enumerate_generalized_covers(
            example7_query, example7_tbox, limit=50
        ):
            jucq = cover_based_reformulation(cover, example7_tbox)
            assert evaluate_jucq(jucq, facts) == reference

    def test_juscq_reformulation_equivalent(
        self, example7_query, example7_tbox, example7_abox
    ):
        facts = example7_abox.fact_store()
        reference = evaluate_ucq(
            reformulate_to_ucq(example7_query, example7_tbox), facts
        )
        c2 = Cover(example7_query, (frozenset({0}), frozenset({1, 2})))
        juscq = cover_based_uscq_reformulation(c2, example7_tbox)
        assert evaluate_juscq(juscq, facts) == reference

    def test_single_fragment_cover_equals_ucq(
        self, example7_query, example7_tbox, example7_abox
    ):
        facts = example7_abox.fact_store()
        cover = single_fragment_cover(example7_query)
        jucq = cover_based_reformulation(cover, example7_tbox)
        assert len(jucq.components) == 1
        reference = evaluate_ucq(
            reformulate_to_ucq(example7_query, example7_tbox), facts
        )
        assert evaluate_jucq(jucq, facts) == reference
