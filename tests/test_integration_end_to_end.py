"""End-to-end integration tests on generated LUBM∃ data.

These exercise the full pipeline — generator → KB → reformulation →
cover search → SQL → backend → decode — across every strategy, backend
and layout combination, on the `tiny` benchmark scale.
"""

import pytest

from repro.bench.generator import generate_abox
from repro.bench.lubm import lubm_exists_tbox
from repro.bench.queries import benchmark_queries, query
from repro.dllite.abox import ConceptAssertion
from repro.obda.system import OBDASystem


@pytest.fixture(scope="module")
def tbox():
    return lubm_exists_tbox()


@pytest.fixture(scope="module")
def abox():
    return generate_abox("tiny", seed=42)


@pytest.fixture(scope="module")
def sqlite_system(tbox, abox):
    return OBDASystem(tbox, abox, backend="sqlite", layout="simple")


@pytest.fixture(scope="module")
def memory_system(tbox, abox):
    return OBDASystem(tbox, abox, backend="memory", layout="simple")


@pytest.fixture(scope="module")
def rdf_system(tbox, abox):
    return OBDASystem(tbox, abox, backend="memory", layout="rdf", rdf_width=4)


class TestStrategiesAgree:
    """Every strategy must return the same certain answers."""

    @pytest.mark.parametrize("name", ["Q2", "Q4", "Q9", "Q12"])
    def test_strategies_agree_on_sqlite(self, sqlite_system, name):
        q = query(name)
        reference = sqlite_system.answer(q, strategy="ucq").answers
        for strategy in ("croot", "gdl"):
            assert (
                sqlite_system.answer(q, strategy=strategy).answers == reference
            ), (name, strategy)

    @pytest.mark.parametrize("name", ["Q2", "Q12"])
    def test_backends_agree(self, sqlite_system, memory_system, name):
        q = query(name)
        lite = sqlite_system.answer(q, strategy="gdl").answers
        mini = memory_system.answer(q, strategy="gdl").answers
        assert lite == mini, name

    @pytest.mark.parametrize("name", ["Q2", "Q12"])
    def test_layouts_agree(self, memory_system, rdf_system, name):
        q = query(name)
        simple = memory_system.answer(q, strategy="croot").answers
        rdf = rdf_system.answer(q, strategy="croot").answers
        assert simple == rdf, name

    def test_rdbms_and_ext_estimators_agree_on_answers(self, memory_system):
        q = query("Q12")
        ext = memory_system.answer(q, strategy="gdl", cost="ext").answers
        rdbms = memory_system.answer(q, strategy="gdl", cost="rdbms").answers
        assert ext == rdbms


class TestReasoningOnGeneratedData:
    def test_chairs_inferred_from_headof(self, tbox, abox, sqlite_system):
        # The generator asserts headOf without asserting Chair types:
        # exists headOf <= Chair makes every head a certain Chair answer.
        report = sqlite_system.answer("q(x) <- Chair(x)", strategy="ucq")
        heads = {
            subject for subject, _dept in abox.role_facts("headOf")
        }
        answered = {a[0] for a in report.answers}
        assert heads <= answered

    def test_grads_without_advisor_edges_still_answer(self, abox, sqlite_system):
        # GraduateStudent <= exists advisor: grads whose advisor edge was
        # omitted are still answers to the advisor query.
        report = sqlite_system.answer("q(x) <- advisor(x, y)", strategy="ucq")
        answered = {a[0] for a in report.answers}
        explicit_grads = {
            individual for (individual,) in abox.concept_facts("GraduateStudent")
        }
        missing_edge = explicit_grads - {
            s for s, _o in abox.role_facts("advisor")
        }
        assert missing_edge, "the generator must omit some advisor edges"
        assert missing_edge <= answered

    def test_person_query_spans_everyone(self, abox, sqlite_system):
        report = sqlite_system.answer("q(x) <- Person(x)", strategy="gdl")
        answered = {a[0] for a in report.answers}
        # All workers are persons through worksFor's domain chain.
        workers = {s for s, _o in abox.role_facts("worksFor")}
        assert workers <= answered

    def test_entailment_on_generated_kb(self, tbox, abox):
        from repro.dllite.kb import KnowledgeBase

        kb = KnowledgeBase(tbox, abox)
        head = next(iter(abox.role_facts("headOf")))[0]
        assert kb.entails_assertion(ConceptAssertion("Professor", head))
        assert kb.entails_assertion(ConceptAssertion("Person", head))


class TestReportPlumbing:
    def test_search_metadata_exposed(self, sqlite_system):
        report = sqlite_system.answer(query("Q8"), strategy="gdl")
        search = report.choice.search
        assert search is not None
        assert search.cost_estimations >= 1
        assert search.elapsed_seconds >= 0
        assert report.choice.sql.startswith("WITH") or report.choice.sql.startswith(
            "SELECT"
        )

    def test_edl_on_small_star(self, sqlite_system):
        from repro.bench.queries import star_queries

        a3 = star_queries()["A3"]
        report = sqlite_system.answer(a3, strategy="edl")
        search = report.choice.search
        assert search.safe_covers_explored >= 2

    def test_time_budgeted_answer(self, sqlite_system):
        report = sqlite_system.answer(
            query("Q8"), strategy="gdl", time_budget_seconds=0.01
        )
        assert report.answers == sqlite_system.answer(
            query("Q8"), strategy="ucq"
        ).answers
