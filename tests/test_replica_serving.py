"""Replicated serving: router, chaos, tokens and the HTTP edge.

Four layers of coverage for the serving tier:

* **router units** — least-loaded selection, per-replica admission
  backpressure (:class:`ReplicaSaturatedError`), token-wait deadlines
  (:class:`ReplicaLagTimeoutError`), kill + heal, and the replication
  log's bounded-fold contract, all on a bare
  :class:`~repro.serving.replicas.ReplicaSet` over a tiny dataset;
* **randomized stress** — the session-consistency oracle from
  ``backend_conformance.py`` at higher write counts, with explicit
  mid-stress replica kills layered on top;
* **chaos** — seeded ``REPRO_FAULTS`` replica-kill and lag injection
  (the deterministic fault grammar of :mod:`repro.faults`);
* **HTTP round trips** — batch answers with session tokens, per-query
  error reports, ``/metrics`` / ``/epoch`` / ``/healthz``, and the
  write endpoint's read-your-writes token handshake.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from backend_conformance import (
    check_replica_consistency,
    replica_consistency_kb,
)
from repro.obda.system import OBDASystem
from repro.serving.concurrency import deadline_scope
from repro.serving.http import ServingEndpoint
from repro.serving.replicas import (
    ReplicaLagTimeoutError,
    ReplicaSaturatedError,
    ReplicaSet,
)
from repro.storage.layouts import LayoutData, TableSpec
from repro.storage.memory_backend import MemoryBackend
from repro.storage.replication import (
    EpochDelta,
    ReplicationLog,
    apply_delta,
)

PROBE_SQL = "SELECT s FROM c_a"


def _layout_data(rows=((1,), (2,))):
    return LayoutData(
        tables=[
            TableSpec(
                name="c_a",
                columns=("s",),
                rows=list(rows),
                indexes=(("s",),),
            )
        ]
    )


def _make_log(max_log: int = 256) -> ReplicationLog:
    log = ReplicationLog(max_log=max_log)
    log.bootstrap(_layout_data(), epoch=0)
    return log


def _insert_delta(epoch: int, value: int) -> EpochDelta:
    return EpochDelta(epoch=epoch, inserts={"c_a": [(value,)]}, deletes={})


def _wait_until(predicate, timeout: float = 10.0) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, "condition never became true"
        time.sleep(0.01)


# ---------------------------------------------------------------------------
# Replication log
# ---------------------------------------------------------------------------
class TestReplicationLog:
    def test_snapshot_equals_replayed_deltas(self):
        log = _make_log()
        for epoch in range(1, 6):
            log.record(_insert_delta(epoch, 100 + epoch))
        data, epoch = log.snapshot()
        assert epoch == 5
        fresh = MemoryBackend()
        fresh.load(data)
        replayed = MemoryBackend()
        base, _ = _make_log().snapshot()
        replayed.load(base)
        for epoch in range(1, 6):
            apply_delta(replayed, _insert_delta(epoch, 100 + epoch))
        assert sorted(fresh.execute(PROBE_SQL)) == sorted(
            replayed.execute(PROBE_SQL)
        )
        fresh.close()
        replayed.close()

    def test_bounded_log_folds_but_snapshot_is_complete(self):
        log = _make_log(max_log=2)
        for epoch in range(1, 10):
            log.record(_insert_delta(epoch, 100 + epoch))
        data, epoch = log.snapshot()
        assert epoch == 9
        backend = MemoryBackend()
        backend.load(data)
        values = {row[0] for row in backend.execute(PROBE_SQL)}
        assert values == {1, 2} | {100 + e for e in range(1, 10)}
        backend.close()

    def test_out_of_order_record_rejected(self):
        log = _make_log()
        log.record(_insert_delta(1, 101))
        with pytest.raises(ValueError):
            log.record(_insert_delta(3, 103))
        with pytest.raises(ValueError):
            log.record(_insert_delta(1, 101))

    def test_deltas_since_and_rebootstrap_signal(self):
        log = _make_log(max_log=2)
        for epoch in range(1, 6):
            log.record(_insert_delta(epoch, 100 + epoch))
        # Epochs 1..3 were folded into the base: a replica stuck there
        # cannot catch up incrementally and must re-bootstrap.
        assert log.deltas_since(0) is None
        assert log.deltas_since(1) is None
        tail = log.deltas_since(3)
        assert [delta.epoch for delta in tail] == [4, 5]
        assert log.deltas_since(5) == []

    def test_delta_ships_new_tables(self):
        log = _make_log()
        spec = TableSpec(
            name="c_new", columns=("s",), rows=[], indexes=(("s",),)
        )
        log.record(
            EpochDelta(
                epoch=1,
                new_tables=(spec,),
                inserts={"c_new": [(7,)]},
                deletes={},
            )
        )
        data, _ = log.snapshot()
        backend = MemoryBackend()
        backend.load(data)
        assert backend.execute("SELECT s FROM c_new") == [(7,)]
        backend.close()


# ---------------------------------------------------------------------------
# Router: least-loaded selection, backpressure, token waits, heal
# ---------------------------------------------------------------------------
@pytest.fixture
def replica_set():
    log = _make_log()
    replica_set = ReplicaSet(
        2, MemoryBackend, log, max_in_flight=1, lag_timeout_seconds=0.5
    )
    yield replica_set, log
    replica_set.close()


class TestRouter:
    def test_execute_returns_rows_and_observed_epoch(self, replica_set):
        replicas, log = replica_set
        rows, epoch, index = replicas.execute(PROBE_SQL)
        assert sorted(rows) == [(1,), (2,)]
        assert epoch == 0
        assert index in (0, 1)

    def test_least_loaded_selection_avoids_busy_replica(self, replica_set):
        replicas, _log = replica_set
        # Occupy replica 0's only admission slot: the router must pick
        # replica 1 without waiting out replica 0's gate.
        assert replicas.replica(0).admission.admit(timeout=0)
        try:
            started = time.perf_counter()
            _rows, _epoch, index = replicas.execute(PROBE_SQL)
            assert index == 1
            assert time.perf_counter() - started < 0.4
        finally:
            replicas.replica(0).admission.release()

    def test_saturated_set_fails_fast(self, replica_set):
        replicas, _log = replica_set
        assert replicas.replica(0).admission.admit(timeout=0)
        assert replicas.replica(1).admission.admit(timeout=0)
        try:
            with pytest.raises(ReplicaSaturatedError):
                replicas.execute(PROBE_SQL, timeout_seconds=0.3)
        finally:
            replicas.replica(0).admission.release()
            replicas.replica(1).admission.release()

    def test_token_wait_catches_up(self, replica_set):
        replicas, log = replica_set
        delta = _insert_delta(1, 101)
        log.record(delta)
        replicas.publish(delta)
        rows, epoch, _index = replicas.execute(PROBE_SQL, min_epoch=1)
        assert epoch >= 1
        assert (101,) in rows

    def test_unreachable_token_times_out(self, replica_set):
        replicas, log = replica_set
        started = time.perf_counter()
        with pytest.raises(ReplicaLagTimeoutError):
            replicas.execute(PROBE_SQL, min_epoch=log.epoch + 1)
        elapsed = time.perf_counter() - started
        assert 0.3 < elapsed < 5.0  # the set's 0.5s lag deadline

    def test_serving_deadline_caps_token_wait(self, replica_set):
        replicas, log = replica_set
        started = time.perf_counter()
        with deadline_scope(0.05):
            with pytest.raises(ReplicaLagTimeoutError):
                replicas.execute(PROBE_SQL, min_epoch=log.epoch + 1)
        assert time.perf_counter() - started < 0.4

    def test_kill_routes_around_and_heals(self, replica_set):
        replicas, log = replica_set
        delta = _insert_delta(1, 101)
        log.record(delta)
        replicas.publish(delta)
        replicas.kill(0)
        rows, epoch, index = replicas.execute(PROBE_SQL, min_epoch=1)
        assert index == 1 and epoch >= 1 and (101,) in rows
        _wait_until(lambda: replicas.heals >= 1)
        healed = replicas.replica(0)
        _wait_until(lambda: healed.ready)
        assert healed.generation == 1
        # The healed replica bootstrapped from the folded snapshot at
        # the log's current epoch — including the delta it missed.
        assert healed.applied_epoch == log.epoch
        rows, _epoch = healed.execute(PROBE_SQL)
        assert (101,) in rows

    def test_all_replicas_dead_heals_on_the_read_path(self, replica_set):
        replicas, _log = replica_set
        replicas.replica(0).die()
        replicas.replica(1).die()
        rows, _epoch, _index = replicas.execute(PROBE_SQL)
        assert sorted(rows) == [(1,), (2,)]

    def test_publish_while_healing_is_never_lost(self):
        """A delta recorded while a replacement bootstraps must land on
        it: registration happens before the (slow) snapshot load, and
        the applier's epoch guard drops only already-folded deltas."""
        log = _make_log()
        replicas = ReplicaSet(1, MemoryBackend, log, max_in_flight=2)
        try:
            for epoch in range(1, 30):
                delta = _insert_delta(epoch, 100 + epoch)
                log.record(delta)
                replicas.publish(delta)
                if epoch % 7 == 0:
                    replicas.kill(0)
            rows, epoch, _index = replicas.execute(
                PROBE_SQL, min_epoch=log.epoch
            )
            assert epoch == 29
            assert {row[0] for row in rows} == {1, 2} | {
                100 + e for e in range(1, 30)
            }
        finally:
            replicas.close()

    def test_telemetry_shape(self, replica_set):
        replicas, _log = replica_set
        replicas.execute(PROBE_SQL)
        telemetry = replicas.telemetry()
        assert telemetry["replicas"] == 2
        assert len(telemetry["per_replica"]) == 2
        entry = telemetry["per_replica"][0]
        assert {
            "replica",
            "generation",
            "alive",
            "applied_epoch",
            "lag",
            "in_flight",
            "executions",
        } <= set(entry)
        assert replicas.max_lag() == 0


# ---------------------------------------------------------------------------
# System-level: tokens, stress, chaos
# ---------------------------------------------------------------------------
class TestSystemTokens:
    def test_read_your_writes_token_honored(self):
        tbox, abox = replica_consistency_kb()
        with OBDASystem(tbox, abox, replicas=2) as system:
            system.insert_facts([("Researcher", "Nadia")])
            token = system.epoch_token()
            report = system.answer(
                "q(x) <- Researcher(x)", strategy="ucq", min_epoch=token
            )
            assert report.epoch >= token
            assert ("Nadia",) in report.answers
            assert report.replica is not None

    def test_default_read_sees_own_writes(self):
        """No token needed in-process: the default session token is the
        primary's epoch, so a write is always visible to the next read."""
        tbox, abox = replica_consistency_kb()
        with OBDASystem(tbox, abox, replicas=3) as system:
            for step in range(5):
                system.insert_facts([("Researcher", f"n{step}")])
                report = system.answer(
                    "q(x) <- Researcher(x)", strategy="ucq"
                )
                assert (f"n{step}",) in report.answers
                assert report.epoch == step + 1

    def test_replicated_equals_unreplicated(self):
        tbox, abox = replica_consistency_kb()
        queries = [
            "q(x) <- Researcher(x)",
            "q(x) <- PhDStudent(x), worksWith(y, x)",
            "q(x, y) <- worksWith(x, y)",
        ]
        tbox2, abox2 = replica_consistency_kb()
        with OBDASystem(tbox, abox, backend="memory") as plain, OBDASystem(
            tbox2, abox2, replicas=2
        ) as replicated:
            for strategy in ("ucq", "gdl"):
                for query in queries:
                    assert (
                        replicated.answer(query, strategy=strategy).answers
                        == plain.answer(query, strategy=strategy).answers
                    ), (strategy, query)

    def test_unreplicated_reports_epoch_too(self, monkeypatch):
        monkeypatch.delenv("REPRO_REPLICAS", raising=False)
        tbox, abox = replica_consistency_kb()
        with OBDASystem(tbox, abox) as system:
            assert system.replica_set is None
            report = system.answer("q(x) <- Researcher(x)", strategy="ucq")
            assert report.epoch == 0 and report.replica is None
            system.insert_facts([("Researcher", "Nadia")])
            assert (
                system.answer("q(x) <- Researcher(x)", strategy="ucq").epoch
                == 1
            )

    def test_replicas_rejected_for_custom_backend_objects(self):
        tbox, abox = replica_consistency_kb()
        with pytest.raises(ValueError, match="named backend"):
            OBDASystem(tbox, abox, backend=MemoryBackend(), replicas=2)

    def test_env_knob_builds_replicas(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPLICAS", "2")
        tbox, abox = replica_consistency_kb()
        with OBDASystem(tbox, abox) as system:
            assert system.replica_set is not None
            assert system.replica_set.count == 2
            report = system.answer("q(x) <- Researcher(x)", strategy="ucq")
            assert report.replica is not None

    def test_batch_carries_one_token(self):
        tbox, abox = replica_consistency_kb()
        with OBDASystem(tbox, abox, replicas=2) as system:
            system.insert_facts([("Researcher", "Nadia")])
            token = system.epoch_token()
            reports = system.answer_many(
                ["q(x) <- Researcher(x)"] * 4,
                strategy="ucq",
                max_workers=3,
                min_epoch=token,
            )
            for report in reports:
                assert report.epoch >= token
                assert ("Nadia",) in report.answers


class TestStress:
    def test_randomized_stress_with_tokens(self):
        """The session-consistency oracle at stress scale: more writes,
        more readers, explicit mid-stress replica kills."""
        systems = []

        def make_system(tbox, abox):
            system = OBDASystem(tbox, abox, replicas=3)
            systems.append(system)
            killer_done = threading.Event()

            def killer():
                for index in (0, 1, 2, 0):
                    if killer_done.wait(timeout=0.05):
                        return
                    try:
                        system.replica_set.kill(index)
                    except Exception:
                        return

            thread = threading.Thread(target=killer, daemon=True)
            thread.start()
            system._test_killer = (thread, killer_done)
            return system

        check_replica_consistency(
            make_system, seed=7001, writes=16, readers=4
        )
        for system in systems:
            thread, killer_done = system._test_killer
            killer_done.set()
            thread.join(timeout=5.0)

    def test_chaos_kill_and_lag_via_faults_env(self, monkeypatch):
        """Seeded REPRO_FAULTS chaos: random replica kills (healed from
        the replication log) plus injected apply lag (absorbed by token
        waits). Consistency must hold throughout."""
        monkeypatch.setenv(
            "REPRO_FAULTS",
            "seed=23,replica_kill_p=0.3,replica_lag_p=0.6,replica_lag_ms=25",
        )
        check_replica_consistency(
            lambda tbox, abox: OBDASystem(tbox, abox, replicas=2),
            seed=7002,
            writes=10,
            readers=3,
        )

    def test_chaos_kill_limit_bounds_injected_kills(self, monkeypatch):
        """replica_kill_limit caps the injected kills per replica slot,
        so a chaos run terminates in a stable serving state."""
        monkeypatch.setenv(
            "REPRO_FAULTS",
            "seed=29,replica_kill_p=1.0,replica_kill_limit=2",
        )
        tbox, abox = replica_consistency_kb()
        with OBDASystem(tbox, abox, replicas=2) as system:
            for step in range(8):
                system.insert_facts([("Researcher", f"k{step}")])
            token = system.epoch_token()
            report = system.answer(
                "q(x) <- Researcher(x)", strategy="ucq", min_epoch=token
            )
            assert {(f"k{step}",) for step in range(8)} <= report.answers
            # Budget exhausted: generations beyond the limit stop dying.
            _wait_until(
                lambda: all(
                    entry["alive"]
                    for entry in system.replica_set.telemetry()[
                        "per_replica"
                    ]
                )
            )


# ---------------------------------------------------------------------------
# HTTP round trips
# ---------------------------------------------------------------------------
def _post(url, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read())


def _get(url, as_json=True):
    with urllib.request.urlopen(url, timeout=30) as response:
        body = response.read()
        return response.status, (json.loads(body) if as_json else body)


@pytest.fixture
def endpoint():
    tbox, abox = replica_consistency_kb()
    with OBDASystem(tbox, abox, replicas=2) as system:
        with ServingEndpoint(system) as served:
            yield served


class TestHttp:
    def test_batch_answers_round_trip(self, endpoint):
        status, payload = _post(
            endpoint.url + "/answer",
            {"queries": ["q(x) <- Researcher(x)"], "strategy": "ucq"},
        )
        assert status == 200
        report = payload["reports"][0]
        assert report["error"] is None
        assert ["Ioana"] in report["answers"]
        assert report["epoch"] == 0
        assert payload["epoch_token"] == 0

    def test_write_then_tokened_read(self, endpoint):
        _status, write = _post(
            endpoint.url + "/write",
            {"insert": [["Researcher", "Zoe"], ["worksWith", "Zoe", "Ana"]]},
        )
        assert write["inserted"] == 2
        token = write["epoch_token"]
        assert token >= 1
        _status, payload = _post(
            endpoint.url + "/answer",
            {
                "queries": ["q(x) <- Researcher(x)"],
                "strategy": "ucq",
                "min_epoch": token,
            },
        )
        report = payload["reports"][0]
        assert report["epoch"] >= token
        assert ["Zoe"] in report["answers"]
        _status, deleted = _post(
            endpoint.url + "/write", {"delete": [["Researcher", "Zoe"]]}
        )
        assert deleted["deleted"] == 1
        assert deleted["epoch_token"] == token + 1

    def test_error_reports_are_per_query(self, endpoint):
        _status, payload = _post(
            endpoint.url + "/answer",
            {
                "queries": [
                    "q(x) <- Researcher(x)",
                    "this is not a query",
                ],
                "strategy": "ucq",
            },
        )
        good, bad = payload["reports"]
        assert good["error"] is None and good["answers"]
        assert bad["error"]["type"] == "ParseError"
        assert bad["answers"] == []

    def test_metrics_epoch_healthz(self, endpoint):
        _status, body = _get(endpoint.url + "/metrics", as_json=False)
        text = body.decode("utf-8")
        assert "repro" in text  # Prometheus exposition of the registry
        assert "replica" in text  # includes the replica-lag gauges
        _status, epoch = _get(endpoint.url + "/epoch")
        assert epoch == {"epoch": 0}
        _status, health = _get(endpoint.url + "/healthz")
        assert health == {"ok": True, "replicas": 2}

    def test_http_error_statuses(self, endpoint):
        with pytest.raises(urllib.error.HTTPError) as not_found:
            _get(endpoint.url + "/nope")
        assert not_found.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as bad_request:
            _post(endpoint.url + "/answer", {"queries": "not a list"})
        assert bad_request.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as bad_json:
            request = urllib.request.Request(
                endpoint.url + "/answer", data=b"{not json"
            )
            urllib.request.urlopen(request, timeout=30)
        assert bad_json.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as bad_fact:
            _post(endpoint.url + "/write", {"insert": [["onlyone"]]})
        assert bad_fact.value.code == 400

    def test_works_without_replicas_too(self, monkeypatch):
        monkeypatch.delenv("REPRO_REPLICAS", raising=False)
        tbox, abox = replica_consistency_kb()
        with OBDASystem(tbox, abox) as system:
            with ServingEndpoint(system) as served:
                _status, health = _get(served.url + "/healthz")
                assert health == {"ok": True, "replicas": 0}
                _status, payload = _post(
                    served.url + "/answer",
                    {
                        "queries": ["q(x) <- Researcher(x)"],
                        "strategy": "ucq",
                    },
                )
                assert payload["reports"][0]["answers"]
