"""Shared fixtures: the paper's running-example knowledge bases."""

from __future__ import annotations

import pytest

from repro.dllite.abox import ABox
from repro.dllite.axioms import ConceptInclusion, RoleInclusion
from repro.dllite.tbox import TBox
from repro.dllite.vocabulary import AtomicConcept as C
from repro.dllite.vocabulary import Exists, Role


@pytest.fixture
def example1_tbox() -> TBox:
    """The TBox of paper Example 1 (Table 2, constraints T1-T7)."""
    works_with = Role("worksWith")
    supervised_by = Role("supervisedBy")
    return TBox(
        [
            ConceptInclusion(C("PhDStudent"), C("Researcher")),                      # T1
            ConceptInclusion(Exists(works_with), C("Researcher")),                   # T2
            ConceptInclusion(Exists(works_with.inverted()), C("Researcher")),        # T3
            RoleInclusion(works_with, works_with.inverted()),                        # T4
            RoleInclusion(supervised_by, works_with),                                # T5
            ConceptInclusion(Exists(supervised_by), C("PhDStudent")),                # T6
            ConceptInclusion(
                C("PhDStudent"), Exists(supervised_by.inverted()), negative=True
            ),                                                                       # T7
        ]
    )


@pytest.fixture
def example1_abox() -> ABox:
    """The ABox of paper Example 1 (assertions A1-A3)."""
    abox = ABox()
    abox.add_role("worksWith", "Ioana", "Francois")      # A1
    abox.add_role("supervisedBy", "Damian", "Ioana")     # A2
    abox.add_role("supervisedBy", "Damian", "Francois")  # A3
    return abox


@pytest.fixture
def example7_tbox() -> TBox:
    """The TBox of paper Example 7 (running example of Section 4)."""
    supervised_by = Role("supervisedBy")
    return TBox(
        [
            ConceptInclusion(C("Graduate"), Exists(supervised_by)),
            RoleInclusion(supervised_by, Role("worksWith")),
        ]
    )


@pytest.fixture
def example7_abox() -> ABox:
    """The ABox of paper Example 7."""
    abox = ABox()
    abox.add_concept("PhDStudent", "Damian")
    abox.add_concept("Graduate", "Damian")
    return abox
