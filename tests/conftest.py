"""Shared fixtures: the paper's running-example knowledge bases, plus
the ``REPRO_SCALE`` tier knob for scale-gated tests.

``REPRO_SCALE`` selects how much generated data scale-aware tests use:
``tiny`` (the tier-1 default, ~1k facts), ``medium`` (~100k, the CI
smoke tier) or ``large`` (~1M, the acceptance tier). Tests marked
``@pytest.mark.scale("medium")`` / ``("large")`` are skipped below
their tier, so the default suite stays fast.
"""

from __future__ import annotations

import os

import pytest

from repro.dllite.abox import ABox
from repro.dllite.axioms import ConceptInclusion, RoleInclusion
from repro.dllite.tbox import TBox
from repro.dllite.vocabulary import AtomicConcept as C
from repro.dllite.vocabulary import Exists, Role

#: Fact budget per scale tier (generator scale factors).
SCALE_FACTS = {"tiny": 1_000, "medium": 100_000, "large": 1_000_000}
_TIER_ORDER = ("tiny", "medium", "large")


def active_scale() -> str:
    """The tier selected by ``REPRO_SCALE`` (default ``tiny``)."""
    tier = os.environ.get("REPRO_SCALE", "tiny").strip().lower()
    if tier not in SCALE_FACTS:
        raise ValueError(
            f"REPRO_SCALE={tier!r} is not one of {sorted(SCALE_FACTS)}"
        )
    return tier


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "scale(tier): run only when REPRO_SCALE is at or above *tier*",
    )


def pytest_collection_modifyitems(config, items):
    active = _TIER_ORDER.index(active_scale())
    for item in items:
        marker = item.get_closest_marker("scale")
        if marker is None:
            continue
        tier = marker.args[0]
        if _TIER_ORDER.index(tier) > active:
            item.add_marker(
                pytest.mark.skip(
                    reason=(
                        f"needs REPRO_SCALE={tier} "
                        f"(active tier: {_TIER_ORDER[active]})"
                    )
                )
            )


@pytest.fixture(scope="session")
def scale_facts() -> int:
    """The fact budget of the active ``REPRO_SCALE`` tier."""
    return SCALE_FACTS[active_scale()]


@pytest.fixture
def example1_tbox() -> TBox:
    """The TBox of paper Example 1 (Table 2, constraints T1-T7)."""
    works_with = Role("worksWith")
    supervised_by = Role("supervisedBy")
    return TBox(
        [
            ConceptInclusion(C("PhDStudent"), C("Researcher")),                      # T1
            ConceptInclusion(Exists(works_with), C("Researcher")),                   # T2
            ConceptInclusion(Exists(works_with.inverted()), C("Researcher")),        # T3
            RoleInclusion(works_with, works_with.inverted()),                        # T4
            RoleInclusion(supervised_by, works_with),                                # T5
            ConceptInclusion(Exists(supervised_by), C("PhDStudent")),                # T6
            ConceptInclusion(
                C("PhDStudent"), Exists(supervised_by.inverted()), negative=True
            ),                                                                       # T7
        ]
    )


@pytest.fixture
def example1_abox() -> ABox:
    """The ABox of paper Example 1 (assertions A1-A3)."""
    abox = ABox()
    abox.add_role("worksWith", "Ioana", "Francois")      # A1
    abox.add_role("supervisedBy", "Damian", "Ioana")     # A2
    abox.add_role("supervisedBy", "Damian", "Francois")  # A3
    return abox


@pytest.fixture
def example7_tbox() -> TBox:
    """The TBox of paper Example 7 (running example of Section 4)."""
    supervised_by = Role("supervisedBy")
    return TBox(
        [
            ConceptInclusion(C("Graduate"), Exists(supervised_by)),
            RoleInclusion(supervised_by, Role("worksWith")),
        ]
    )


@pytest.fixture
def example7_abox() -> ABox:
    """The ABox of paper Example 7."""
    abox = ABox()
    abox.add_concept("PhDStudent", "Damian")
    abox.add_concept("Graduate", "Damian")
    return abox
