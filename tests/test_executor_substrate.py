"""The pluggable execution substrate: resolution, workers, exchange.

Covers the :class:`~repro.engine.parallel.ExecutorBackend` abstraction
(serial / thread / process selection via argument and ``REPRO_EXECUTOR``,
auto-detection rules), the process substrate's worker lifecycle (close
teardown, error propagation, write replication), the shared-memory
columnar wire format, and the substrate-keyed efficiency learning that
keeps GIL-bound thread measurements out of process-mode cost estimates.
"""

import os
import pickle

import pytest

from repro.cost.model import ExternalCostModel, ExternalCostParameters
from repro.cost.statistics import DataStatistics
from repro.engine.database import MiniRDBMS
from repro.engine.errors import StatementTooLongError, UnknownTableError
from repro.engine.parallel import (
    EXECUTOR_ENV,
    ParallelContext,
    SerialExecutor,
    ThreadExecutor,
    gil_enabled,
    process_substrate_available,
    resolve_substrate,
)
from repro.storage.layouts import LayoutData, TableSpec
from repro.storage.memory_backend import MemoryBackend
from repro.storage.process_workers import ProcessShardWorker
from repro.storage.sharded_backend import ShardedBackend
from repro.storage.shm_exchange import (
    pack_columns,
    pack_rows,
    should_inline,
    unpack_rows,
)

needs_processes = pytest.mark.skipif(
    not process_substrate_available(),
    reason="fork start method unavailable",
)


def _layout(rows=2000):
    return LayoutData(
        tables=[
            TableSpec(
                name="r_p",
                columns=("s", "o"),
                rows=[(i, (i * 7) % 97) for i in range(rows)],
                indexes=(("s",), ("o",)),
            ),
            TableSpec(
                name="c_a",
                columns=("s",),
                rows=[(i,) for i in range(0, rows, 3)],
                indexes=(("s",),),
            ),
        ]
    )


QUERIES = [
    "SELECT o FROM r_p WHERE s = 6",
    "SELECT DISTINCT s FROM c_a",
    "SELECT s, o FROM r_p",
    "SELECT a.s AS x FROM r_p a, c_a b WHERE a.o = b.s",
]


# ----------------------------------------------------------------------
# Substrate resolution
# ----------------------------------------------------------------------
class TestResolution:
    def test_explicit_names_resolve_to_themselves(self):
        assert resolve_substrate("serial") == "serial"
        assert resolve_substrate("thread") == "thread"

    def test_unknown_substrate_rejected(self):
        with pytest.raises(ValueError):
            resolve_substrate("fiber")

    def test_env_garbage_falls_back_to_auto(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV, "nonsense")
        assert resolve_substrate(None) in ("serial", "thread", "process")

    def test_env_selects_substrate(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV, "serial")
        assert resolve_substrate(None) == "serial"

    def test_auto_prefers_threads_without_process_preference(self):
        if gil_enabled():
            assert resolve_substrate("auto") == "thread"

    @needs_processes
    def test_auto_with_process_preference_depends_on_cpus(self):
        resolved = resolve_substrate("auto", prefer_processes=True)
        if not gil_enabled():
            assert resolved == "thread"
        elif (os.cpu_count() or 1) > 1:
            assert resolved == "process"
        else:
            assert resolved == "thread"

    def test_engine_context_maps_process_to_thread(self):
        # Morsels share one address space: an engine-level "process"
        # request runs on the thread executor (the process substrate
        # lives at the shard boundary).
        context = ParallelContext(workers=2, substrate="process")
        try:
            assert context.substrate == "thread"
            assert isinstance(context.executor, ThreadExecutor)
        finally:
            context.close()

    def test_one_worker_is_always_serial(self):
        context = ParallelContext(workers=1, substrate="thread")
        assert context.substrate == "serial"
        assert isinstance(context.executor, SerialExecutor)
        assert not context.parallel

    def test_serial_substrate_disables_partitioning(self):
        context = ParallelContext(workers=4, substrate="serial")
        assert not context.parallel
        assert context.partitions_for(10_000_000) == 1
        assert context.map_partitions(lambda i: i * i, 3) == [0, 1, 4]


# ----------------------------------------------------------------------
# Substrate-keyed efficiency learning
# ----------------------------------------------------------------------
class TestLearnKeying:
    def test_context_records_per_substrate(self):
        context = ParallelContext(workers=4, substrate="thread")
        try:
            context.learn(1.0)  # GIL-bound thread measurement: eff 0
            context.learn(3.4, substrate="process")
            assert context.efficiency_by_substrate["thread"] == 0.0
            assert context.efficiency_by_substrate["process"] == (
                pytest.approx(0.8)
            )
        finally:
            context.close()

    def test_engine_ignores_foreign_substrate_measurement(self):
        db = MiniRDBMS(workers=4, substrate="thread")
        try:
            before = db.cost_parameters.parallel_efficiency
            # A process-substrate measurement is recorded but must not
            # touch this thread-substrate engine's live discount.
            db.learn_parallel_efficiency(4.0, substrate="process")
            assert db.cost_parameters.parallel_efficiency == before
            assert db.parallel.efficiency_by_substrate["process"] == 1.0
            # A matching-substrate measurement does apply.
            db.learn_parallel_efficiency(1.0)
            assert db.cost_parameters.parallel_efficiency == 0.0
        finally:
            db.close()

    def test_external_model_keys_by_substrate(self):
        model = ExternalCostModel(
            DataStatistics(),
            ExternalCostParameters(workers=4, substrate="process"),
        )
        before = model.parameters.parallel_efficiency
        model.learn_parallelism(4, 1.0, substrate="thread")
        assert model.parameters.parallel_efficiency == before
        assert model.efficiency_by_substrate["thread"] == 0.0
        model.learn_parallelism(4, 3.4, substrate="process")
        assert model.parameters.parallel_efficiency == pytest.approx(0.8)


# ----------------------------------------------------------------------
# Columnar wire format
# ----------------------------------------------------------------------
class TestWireFormat:
    def test_int_rows_round_trip_as_i64(self):
        rows = [(i, i * 3) for i in range(500)]
        meta, payload = pack_rows(rows)
        nrows, column_metas = meta
        assert nrows == 500
        assert [kind for kind, _ in column_metas] == ["i64", "i64"]
        assert unpack_rows(payload, meta) == rows

    def test_mixed_columns_fall_back_to_pickle(self):
        rows = [(i, None if i % 5 == 0 else 10**30) for i in range(64)]
        meta, payload = pack_rows(rows)
        _nrows, column_metas = meta
        assert [kind for kind, _ in column_metas] == ["i64", "pkl"]
        assert unpack_rows(payload, meta) == rows

    def test_pack_columns_matches_pack_rows(self):
        rows = [(i, -i) for i in range(100)]
        assert pack_columns(100, list(zip(*rows))) == pack_rows(rows)

    def test_corrupt_meta_detected(self):
        meta, payload = pack_rows([(1, 2), (3, 4)])
        bad_meta = (3, meta[1])  # claims one more row than packed
        with pytest.raises(ValueError):
            unpack_rows(payload, bad_meta)

    def test_should_inline_threshold(self):
        assert should_inline(10, 2, 4096)
        assert not should_inline(4096, 2, 4096)


# ----------------------------------------------------------------------
# Columnar engine results
# ----------------------------------------------------------------------
class TestExecuteColumns:
    @pytest.mark.parametrize("workers", (1, 4))
    def test_columns_equal_rows(self, workers):
        backend = MemoryBackend(workers=workers)
        try:
            backend.load(_layout())
            for sql in QUERIES:
                rows = backend.execute(sql)
                nrows, columns = backend.execute_columns(sql)
                assert nrows == len(rows)
                rebuilt = list(zip(*columns)) if columns else []
                assert rebuilt == rows, sql
        finally:
            backend.close()

    def test_empty_result(self):
        backend = MemoryBackend()
        try:
            backend.load(_layout(rows=10))
            assert backend.execute_columns(
                "SELECT o FROM r_p WHERE s = 123456"
            ) == (0, [])
        finally:
            backend.close()


# ----------------------------------------------------------------------
# Process workers
# ----------------------------------------------------------------------
@needs_processes
class TestProcessWorkers:
    def test_worker_hosts_backend_and_closes(self):
        worker = ProcessShardWorker(MemoryBackend, shard=0)
        worker.load(_layout(rows=200))
        assert worker.execute("SELECT o FROM r_p WHERE s = 6") == [(42,)]
        assert worker.last_execution.transport == "inline"
        worker.close()
        assert worker.exit_code == 0
        worker.close()  # idempotent
        with pytest.raises(RuntimeError):
            worker.execute("SELECT s FROM c_a")

    def test_shm_transport_used_above_threshold(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_MIN_CELLS", "10")
        worker = ProcessShardWorker(MemoryBackend, shard=0)
        try:
            worker.load(_layout(rows=300))
            rows = worker.execute("SELECT s, o FROM r_p")
            assert len(rows) == 300
            assert worker.last_execution.transport == "shm"
            assert worker.shm_results == 1
            assert worker.shm_bytes > 0
        finally:
            worker.close()

    def test_errors_cross_with_real_types(self):
        worker = ProcessShardWorker(
            lambda: MemoryBackend(max_statement_length=20), shard=0
        )
        try:
            worker.load(_layout(rows=20))
            with pytest.raises(UnknownTableError):
                worker.execute("SELECT x FROM hmm")
            with pytest.raises(StatementTooLongError) as excinfo:
                worker.execute("SELECT s, o FROM r_p WHERE s = 1")
            assert excinfo.value.limit == 20
            # The worker survives failing statements.
            assert worker.execute("SELECT s FROM c_a") != []
        finally:
            worker.close()

    def test_statement_too_long_error_pickles(self):
        error = pickle.loads(pickle.dumps(StatementTooLongError(10, 5)))
        assert (error.size, error.limit) == (10, 5)

    def test_writes_replicate_into_worker(self):
        worker = ProcessShardWorker(MemoryBackend, shard=0)
        try:
            worker.load(_layout(rows=30))
            worker.insert_rows("c_a", [(1000,), (1001,)])
            assert worker.delete_rows("c_a", [(1000,), (7777,)]) == 1
            assert (1001,) in set(worker.execute("SELECT s FROM c_a"))
            worker.apply_changes({"c_a": [(2000,)]}, {"c_a": [(1001,)]})
            present = set(worker.execute("SELECT s FROM c_a"))
            assert (2000,) in present and (1001,) not in present
            stats = worker.statistics_many(["c_a", "r_p"])
            assert stats["r_p"].cardinality == 30
        finally:
            worker.close()

    def test_factory_failure_surfaces_at_construction(self):
        def boom():
            raise ValueError("no backend for you")

        with pytest.raises(ValueError, match="no backend"):
            ProcessShardWorker(boom, shard=0)


# ----------------------------------------------------------------------
# Sharded backend over the process substrate
# ----------------------------------------------------------------------
@needs_processes
class TestShardedProcess:
    @pytest.mark.parametrize("shards", (1, 3))
    def test_answers_identical_to_serial(self, shards, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_MIN_CELLS", "64")
        oracle = ShardedBackend(shards, substrate="serial")
        backend = ShardedBackend(shards, substrate="process")
        try:
            data = _layout()
            oracle.load(data)
            backend.load(data)
            for sql in QUERIES:
                assert backend.execute(sql) == oracle.execute(sql), sql
            telemetry = backend.shard_telemetry()
            assert telemetry["shm_results"] > 0
        finally:
            backend.close()
            oracle.close()

    def test_write_replication_under_routes(self):
        oracle = ShardedBackend(3, substrate="thread")
        backend = ShardedBackend(3, substrate="process")
        try:
            data = _layout(rows=500)
            oracle.load(data)
            backend.load(data)
            for target in (oracle, backend):
                target.insert_rows("c_a", [(9001,), (9002,), (9003,)])
                assert target.delete_rows("c_a", [(9002,)]) == 1
                target.apply_changes(
                    {"r_p": [(9001, 5)]}, {"c_a": [(9003,)]}
                )
            for sql in QUERIES:
                assert backend.execute(sql) == oracle.execute(sql), sql
            # Merged statistics track the workers' post-write state.
            assert (
                backend.table_statistics("c_a").cardinality
                == oracle.table_statistics("c_a").cardinality
            )
        finally:
            backend.close()
            oracle.close()

    def test_substrate_visible_in_stats_and_name(self):
        backend = ShardedBackend(2, substrate="process")
        try:
            backend.load(_layout(rows=50))
            backend.execute("SELECT DISTINCT s FROM c_a")
            assert backend.substrate == "process"
            assert backend.last_execution.substrate == "process"
            assert backend.name.startswith("sharded[2xworker[")
        finally:
            backend.close()

    def test_dispatch_pool_defaults_to_one_thread_per_shard(self):
        backend = ShardedBackend(6, substrate="process")
        try:
            assert backend._parallel.workers == 6
        finally:
            backend.close()

    def test_explain_and_cost_proxy_through_workers(self):
        backend = ShardedBackend(2, substrate="process")
        try:
            backend.load(_layout(rows=100))
            sql = "SELECT o FROM r_p WHERE s = 6"
            assert backend.estimated_cost(sql) > 0
            assert backend.explain_text(sql).startswith("Shard route:")
        finally:
            backend.close()
