"""Sharded-backend routing, pruning proof, and the churn property test.

The pruning tests assert *via telemetry* (``ShardedBackend.
last_execution`` / ``explain_text``) that a shard-key-bound statement
touches exactly one shard while an unbound one scatters to all — the
acceptance contract of the sharding subsystem. The property test churns
a random ABox through random inserts and deletes and demands the
sharded system equal the unsharded oracle at every epoch, for the
``gdl`` / ``sat`` / ``auto`` strategies at 1 and 4 serving workers.
"""

import random

import pytest


@pytest.fixture(autouse=True)
def _isolate_replica_env(monkeypatch):
    """Insulate this suite from the ambient replica knob (the CI
    replicated-serving leg exports ``REPRO_REPLICAS`` for the rest of
    the tier-1 suite): the pruning proofs here read the *primary*
    backend's ``last_execution`` / batch route counters, which stay
    idle when reads are served by replica backends."""
    monkeypatch.delenv("REPRO_REPLICAS", raising=False)

from repro.dllite.abox import ABox
from repro.obda.system import OBDASystem
from repro.storage.layouts import LayoutData, SimpleLayout, TableSpec
from repro.storage.sharded_backend import (
    ShardCostParameters,
    ShardedBackend,
)


def _data(rows=24):
    return LayoutData(
        tables=[
            TableSpec(
                name="c_a",
                columns=("s",),
                rows=[(i,) for i in range(rows)],
                indexes=(("s",),),
            ),
            TableSpec(
                name="r_p",
                columns=("s", "o"),
                rows=[(i, (i * 5) % rows) for i in range(rows)],
                indexes=(("s",), ("o",), ("s", "o")),
            ),
        ]
    )


class TestRouting:
    def test_bound_query_touches_exactly_one_shard(self):
        backend = ShardedBackend(4)
        backend.load(_data())
        try:
            rows = backend.execute("SELECT o FROM r_p WHERE s = 6")
            assert rows == [(6 * 5 % 24,)]
            stats = backend.last_execution
            assert stats.route == "pruned"
            assert stats.shards_touched == (6 % 4,)
            assert stats.shard_count == 4
            assert len(stats.per_shard) == 1
        finally:
            backend.close()

    def test_unbound_query_scatters_to_all_shards(self):
        backend = ShardedBackend(4)
        backend.load(_data())
        try:
            rows = backend.execute("SELECT DISTINCT s FROM c_a")
            assert len(rows) == 24
            stats = backend.last_execution
            assert stats.route == "scatter"
            assert stats.shards_touched == (0, 1, 2, 3)
            assert [entry["shard"] for entry in stats.per_shard] == [0, 1, 2, 3]
        finally:
            backend.close()

    def test_non_copartitioned_join_gathers(self):
        backend = ShardedBackend(4)
        backend.load(_data())
        try:
            sql = "SELECT a.s AS x FROM r_p a, c_a b WHERE a.o = b.s"
            rows = backend.execute(sql)
            assert len(rows) == 24
            assert backend.last_execution.route == "gather"
            # The gathered coordinator copies are cached until a write.
            backend.execute(sql)
            backend.insert_rows("r_p", [(100, 3)])
            assert len(backend.execute(sql)) == 25
        finally:
            backend.close()

    def test_explain_shows_the_route(self):
        backend = ShardedBackend(4)
        backend.load(_data())
        try:
            bound = backend.explain_text("SELECT o FROM r_p WHERE s = 6")
            assert "Shard route: pruned -> shards [2] of 4" in bound
            unbound = backend.explain_text("SELECT DISTINCT s FROM c_a")
            assert "Shard route: scatter" in unbound
            gathered = backend.explain_text(
                "SELECT a.s AS x FROM r_p a, c_a b WHERE a.o = b.s"
            )
            assert "gather" in gathered and "coordinator" in gathered
            # EXPLAIN plans from merged statistics; it must not pay the
            # O(data) coordinator gather an execution would.
            assert backend._gathered == {}
        finally:
            backend.close()

    def test_route_counters_accumulate(self):
        backend = ShardedBackend(2)
        backend.load(_data())
        try:
            backend.execute("SELECT o FROM r_p WHERE s = 6")
            backend.execute("SELECT DISTINCT s FROM c_a")
            backend.execute("SELECT a.s AS x FROM r_p a, c_a b WHERE a.o = b.s")
            telemetry = backend.shard_telemetry()
            assert telemetry["executions"] == 3
            assert telemetry["pruned"] == 1
            assert telemetry["scatter"] == 1
            assert telemetry["gather"] == 1
            assert telemetry["shards"] == 2
        finally:
            backend.close()

    def test_gather_route_collects_tables_behind_unsafe_sources(self):
        """Regression: an unsafe subquery/CTE must not truncate the
        gather route's table list — the tables listed *after* it in the
        FROM clause still need coordinator copies, or they silently
        evaluate as empty."""
        backend = ShardedBackend(2)
        backend.load(_data(rows=6))
        try:
            inner = "SELECT p.s AS a FROM r_p p, r_p q WHERE p.o = q.s"
            for sql in (
                f"SELECT x.a AS y, b.s AS z FROM ({inner}) x, c_a b "
                "WHERE x.a = b.s",
                f"WITH f AS ({inner}) SELECT f.a AS y, b.s AS z "
                "FROM f f, c_a b WHERE f.a = b.s",
            ):
                route = backend.plan_route(sql)
                assert route.kind == "gather"
                assert set(route.tables) == {"r_p", "c_a"}
                rows = backend.execute(sql)
                assert sorted(rows) == sorted(
                    (s, s) for s in range(6)
                ), sql
        finally:
            backend.close()

    def test_deep_equality_chains_route_correctly(self):
        """Join chains longer than the union-find's path-halving step
        must still collapse into one class (regression: find() once
        returned the grandparent, degrading 3+-link chains to gather)."""
        backend = ShardedBackend(4)
        backend.load(_data())
        try:
            chain = (
                "SELECT a.s AS x FROM r_p a, r_p b, r_p c, r_p d "
                "WHERE a.s = b.s AND b.s = c.s AND c.s = d.s"
            )
            assert backend.plan_route(chain).kind == "scatter"
            bound = backend.plan_route(chain + " AND d.s = 6")
            assert bound.kind == "pruned"
            assert bound.shards == (2,)
            rows = backend.execute(chain + " AND d.s = 6")
            assert rows == [(6,)]
        finally:
            backend.close()

    def test_scatter_fan_out_priced_above_pruned_probe(self):
        backend = ShardedBackend(
            4, cost_parameters=ShardCostParameters(scatter_overhead_per_shard=50.0)
        )
        backend.load(_data())
        try:
            pruned = backend.estimated_cost("SELECT o FROM r_p WHERE s = 6")
            scatter = backend.estimated_cost("SELECT s, o FROM r_p")
            gather = backend.estimated_cost(
                "SELECT a.s AS x FROM r_p a, c_a b WHERE a.o = b.s"
            )
            assert pruned < scatter
            assert gather > 0
        finally:
            backend.close()


class TestSystemPruning:
    def test_bound_sat_query_prunes_at_the_system_level(
        self, example1_tbox, example1_abox
    ):
        with OBDASystem(
            example1_tbox, example1_abox, backend="memory", shards=4
        ) as system:
            bound = system.answer(
                "q(x) <- supervisedBy(Damian, x)", strategy="sat"
            )
            assert bound.answers == {("Ioana",), ("Francois",)}
            stats = system.backend.last_execution
            assert stats.route == "pruned"
            assert len(stats.shards_touched) == 1
            unbound = system.answer(
                "q(x, y) <- supervisedBy(x, y)", strategy="sat"
            )
            assert unbound.answers
            assert system.backend.last_execution.route == "scatter"
            assert len(system.backend.last_execution.shards_touched) == 4

    def test_batch_telemetry_reports_routes(self, example1_tbox, example1_abox):
        with OBDASystem(
            example1_tbox, example1_abox, backend="memory", shards=4
        ) as system:
            queries = [
                "q(x) <- supervisedBy(Damian, x)",
                "q(x, y) <- supervisedBy(x, y)",
            ] * 2
            system.answer_many(queries, strategy="sat", max_workers=2)
            shards = system.last_batch_stats["shards"]
            assert shards["shards"] == 4
            assert shards["executions"] == 4
            assert shards["pruned"] >= 1
            assert shards["scatter"] >= 1


class TestHintMatchesSQLAnalysis:
    """The translator's logical hint and the SQL-level AST analysis are
    two implementations of one routing function — they must agree."""

    QUERIES = (
        "q(x) <- PhDStudent(x)",
        "q(x) <- supervisedBy(Damian, x)",
        "q(x) <- PhDStudent(x), worksWith(y, x)",
        "q(x) <- PhDStudent(x), supervisedBy(x, y)",
        "q(x, y) <- worksWith(x, y), Researcher(y)",
        "q() <- supervisedBy(Damian, Ioana)",
    )

    @pytest.mark.parametrize("strategy", ("ucq", "croot", "gdl", "sat"))
    @pytest.mark.parametrize("layout", ("simple", "rdf"))
    def test_hint_route_equals_parsed_route(
        self, strategy, layout, example1_tbox, example1_abox
    ):
        if layout == "rdf" and strategy == "sat":
            pytest.skip("materialization requires the simple layout")
        with OBDASystem(
            example1_tbox,
            example1_abox,
            backend="memory",
            layout=layout,
            shards=4,
        ) as system:
            checked = 0
            for query in self.QUERIES:
                choice = system.reformulate(query, strategy=strategy)
                if choice.shard_route is None:
                    continue
                parsed = system.backend.plan_route(choice.sql)
                assert choice.shard_route == parsed, (strategy, layout, query)
                checked += 1
            assert checked > 0  # the hint must cover these dialects


TBOX_TEXT = """
role worksWith, supervisedBy
PhDStudent <= Researcher
exists worksWith <= Researcher
exists worksWith- <= Researcher
supervisedBy <= worksWith
exists supervisedBy <= PhDStudent
"""

CHURN_QUERIES = (
    "q(x) <- Researcher(x)",
    "q(x) <- PhDStudent(x), worksWith(y, x)",
    "q(x) <- supervisedBy(p3, x)",
    "q(x, y) <- worksWith(x, y)",
)


def _random_abox(rng):
    abox = ABox()
    people = [f"p{i}" for i in range(12)]
    for _ in range(14):
        abox.add_role("worksWith", rng.choice(people), rng.choice(people))
    for _ in range(8):
        abox.add_role("supervisedBy", rng.choice(people), rng.choice(people))
    for _ in range(6):
        abox.add_concept("PhDStudent", rng.choice(people))
    return abox


def _random_writes(rng):
    people = [f"p{i}" for i in range(12)] + [f"n{i}" for i in range(4)]
    inserts = []
    for _ in range(rng.randrange(0, 4)):
        if rng.random() < 0.5:
            inserts.append(("PhDStudent", rng.choice(people)))
        else:
            inserts.append(
                (
                    rng.choice(("worksWith", "supervisedBy")),
                    rng.choice(people),
                    rng.choice(people),
                )
            )
    deletes = list(inserts[: rng.randrange(0, len(inserts) + 1)])
    for _ in range(rng.randrange(0, 3)):
        deletes.append(
            ("worksWith", rng.choice(people), rng.choice(people))
        )
    return inserts, deletes


@pytest.mark.parametrize("strategy", ("gdl", "sat", "auto"))
@pytest.mark.parametrize("workers", (1, 4))
def test_sharded_equals_unsharded_oracle_under_churn(strategy, workers):
    """Property: at every epoch of random write churn, the sharded
    system's answers equal the unsharded oracle's, per strategy and
    serving worker count."""
    from backend_conformance import clone_abox
    from repro.dllite.parser import parse_tbox

    rng = random.Random(420 + workers)
    tbox = parse_tbox(TBOX_TEXT)
    seed_abox = _random_abox(rng)

    with OBDASystem(
        tbox, clone_abox(seed_abox), backend="memory"
    ) as oracle, (
        OBDASystem(tbox, clone_abox(seed_abox), backend="memory", shards=3)
    ) as sharded:
        for epoch in range(6):
            expected = [
                report.answers
                for report in oracle.answer_many(
                    CHURN_QUERIES, strategy=strategy
                )
            ]
            observed = [
                report.answers
                for report in sharded.answer_many(
                    CHURN_QUERIES, strategy=strategy, max_workers=workers
                )
            ]
            assert observed == expected, (strategy, workers, epoch)
            assert sharded.data_epoch == oracle.data_epoch
            inserts, deletes = _random_writes(rng)
            assert oracle.insert_facts(inserts) == sharded.insert_facts(
                inserts
            )
            assert oracle.delete_facts(deletes) == sharded.delete_facts(
                deletes
            )


class TestSystemWiring:
    def test_env_knob_shards_the_memory_backend(
        self, example1_tbox, example1_abox, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SHARDS", "3")
        with OBDASystem(example1_tbox, example1_abox) as system:
            assert isinstance(system.backend, ShardedBackend)
            assert system.backend.shards == 3

    def test_env_value_one_keeps_the_plain_backend(
        self, example1_tbox, example1_abox, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SHARDS", "1")
        with OBDASystem(example1_tbox, example1_abox) as system:
            assert not isinstance(system.backend, ShardedBackend)

    def test_explicit_shards_override_env(
        self, example1_tbox, example1_abox, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SHARDS", "8")
        with OBDASystem(
            example1_tbox, example1_abox, shards=2
        ) as system:
            assert system.backend.shards == 2

    def test_shards_with_backend_object_rejected(
        self, example1_tbox, example1_abox
    ):
        from repro.storage.memory_backend import MemoryBackend

        with pytest.raises(ValueError):
            OBDASystem(
                example1_tbox,
                example1_abox,
                backend=MemoryBackend(),
                shards=2,
            )

    def test_sharded_sqlite_backend(self, example1_tbox, example1_abox):
        with OBDASystem(
            example1_tbox, example1_abox, backend="sqlite", shards=2
        ) as system:
            assert system.backend.shards == 2
            report = system.answer("q(x) <- Researcher(x)", strategy="gdl")
            assert ("Ioana",) in report.answers

    def test_shard_workers_bound_the_fanout_pool(
        self, example1_tbox, example1_abox
    ):
        with OBDASystem(
            example1_tbox, example1_abox, shards=4, shard_workers=2
        ) as system:
            assert system.backend._parallel.workers == 2

    def test_statement_length_limit_enforced_before_routing(self):
        from repro.engine.errors import StatementTooLongError

        backend = ShardedBackend(2, max_statement_length=40)
        backend.load(_data())
        try:
            with pytest.raises(StatementTooLongError):
                backend.execute(
                    "SELECT DISTINCT s FROM c_a WHERE s = 1 AND s = 1 AND s = 1"
                )
        finally:
            backend.close()


class TestMergedStatistics:
    def test_coordinator_sees_whole_table_statistics(self):
        backend = ShardedBackend(4)
        backend.load(_data(rows=20))
        try:
            stats = backend.table_statistics("r_p")
            assert stats.cardinality == 20
            assert stats.distinct("s") == 20
            backend.insert_rows("r_p", [(100, 1), (101, 1)])
            assert backend.table_statistics("r_p").cardinality == 22
            backend.delete_rows("r_p", [(100, 1)])
            assert backend.table_statistics("r_p").cardinality == 21
        finally:
            backend.close()
