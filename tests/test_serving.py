"""Tests for the shared-work answering layer.

Covers the fragment-level :class:`ReformulationCache`, the plan-level
:class:`PlanCache`, ``OBDASystem.answer_many`` (sequential and threaded),
and backend teardown.
"""

import threading

import pytest

from repro.cost.cache import ReformulationCache
from repro.cost.estimators import ExternalCoverCost
from repro.cost.model import ExternalCostModel
from repro.cost.statistics import DataStatistics
from repro.covers.reformulate import (
    cover_based_reformulation,
    cover_based_uscq_reformulation,
)
from repro.covers.safety import root_cover
from repro.dllite.parser import parse_query
from repro.obda.system import OBDASystem
from repro.optimizer.gdl import gdl_search
from repro.queries.jucq import JUCQ, JUSCQ
from repro.serving.plan_cache import PlanCache
from repro.storage.sqlite_backend import SQLiteBackend

TBOX = """
role worksWith
role supervisedBy
PhDStudent <= Researcher
exists worksWith <= Researcher
exists worksWith- <= Researcher
worksWith <= worksWith-
supervisedBy <= worksWith
exists supervisedBy <= PhDStudent
PhDStudent <= not exists supervisedBy-
"""
ABOX = """
worksWith(Ioana, Francois)
supervisedBy(Damian, Ioana)
supervisedBy(Damian, Francois)
"""
QUERY = "q(x) <- PhDStudent(x), worksWith(y, x)"


@pytest.fixture
def system():
    instance = OBDASystem.from_text(TBOX, ABOX)
    yield instance
    instance.close()


class TestReformulationCache:
    def test_counts_hits_and_misses(self, example1_tbox):
        cache = ReformulationCache()
        query = parse_query(QUERY)
        cover = root_cover(query, example1_tbox)
        first = cover_based_reformulation(cover, example1_tbox, cache=cache)
        assert cache.misses == len(cover.fragments)
        assert cache.hits == 0
        second = cover_based_reformulation(cover, example1_tbox, cache=cache)
        assert cache.hits == len(cover.fragments)
        assert first.components == second.components

    def test_dialects_never_collide(self, example1_tbox):
        # The same fragments through both builders against one cache: the
        # USCQ keys carry a marker, so the JUCQ entries are not reused.
        cache = ReformulationCache()
        query = parse_query(QUERY)
        cover = root_cover(query, example1_tbox)
        jucq = cover_based_reformulation(cover, example1_tbox, cache=cache)
        juscq = cover_based_uscq_reformulation(
            cover, example1_tbox, cache=cache
        )
        assert isinstance(jucq, JUCQ)
        assert isinstance(juscq, JUSCQ)
        assert cache.hits == 0  # no cross-dialect reuse
        assert len(cache) == 2 * len(cover.fragments)

    def test_shared_across_estimators(self, example1_tbox, example1_abox):
        # Two estimators over one cache: the second search's fragments are
        # all warm, so PerfectRef runs strictly fewer times than cold.
        shared = ReformulationCache()
        model = ExternalCostModel(DataStatistics.from_abox(example1_abox))
        query = parse_query(QUERY)

        cold = ExternalCoverCost(
            example1_tbox, model, fragment_cache=shared
        )
        gdl_search(query, example1_tbox, cold)
        cold_misses = shared.misses

        warm = ExternalCoverCost(
            example1_tbox, model, fragment_cache=shared
        )
        gdl_search(query, example1_tbox, warm)
        assert shared.misses == cold_misses  # nothing recomputed
        assert shared.hits > 0

    def test_clear_resets(self):
        cache = ReformulationCache()
        cache[("k",)] = "v"
        assert ("k",) in cache and cache[("k",)] == "v"
        cache.clear()
        assert len(cache) == 0
        assert cache.stats() == {"entries": 0, "hits": 0, "misses": 0}

    def test_bounded_capacity_evicts_lru(self):
        cache = ReformulationCache(capacity=2)
        cache[("a",)] = 1
        cache[("b",)] = 2
        assert cache[("a",)] == 1  # refreshes "a"
        cache[("c",)] = 3  # evicts "b"
        assert ("b",) not in cache
        assert ("a",) in cache and ("c",) in cache
        with pytest.raises(ValueError):
            ReformulationCache(capacity=0)


class TestPlanCache:
    def test_lru_eviction(self):
        cache = PlanCache(capacity=2)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        assert cache.get(("a",)) == 1  # refreshes "a"
        cache.put(("c",), 3)  # evicts "b", the LRU entry
        assert ("b",) not in cache
        assert cache.get(("a",)) == 1
        assert cache.get(("c",)) == 3

    def test_counters_and_clear(self):
        cache = PlanCache(capacity=4)
        assert cache.get(("missing",)) is None
        cache.put(("k",), "plan")
        assert cache.get(("k",)) == "plan"
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["hits"] == 0

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)

    def test_thread_safety_under_contention(self):
        cache = PlanCache(capacity=8)
        errors = []

        def worker(seed: int) -> None:
            try:
                for i in range(200):
                    key = (f"k{(seed + i) % 16}",)
                    cache.put(key, i)
                    cache.get(key)
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(n,)) for n in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) <= 8


class TestPlanCacheInSystem:
    @pytest.mark.parametrize("strategy", ["ucq", "croot", "gdl", "edl"])
    def test_second_answer_hits_plan_cache(self, system, strategy):
        cold = system.answer(QUERY, strategy=strategy)
        warm = system.answer(QUERY, strategy=strategy)
        assert not cold.plan_cache_hit
        assert warm.plan_cache_hit
        assert warm.answers == cold.answers == {("Damian",)}
        assert warm.cache_stats["plan"]["hits"] >= 1

    def test_renamed_query_shares_the_plan(self, system):
        system.answer(QUERY, strategy="gdl")
        renamed = system.answer(
            "q(a) <- PhDStudent(a), worksWith(b, a)", strategy="gdl"
        )
        assert renamed.plan_cache_hit  # canonical keys match

    def test_flags_key_the_cache(self, system):
        baseline = system.answer(QUERY, strategy="croot")
        for kwargs in (
            {"strategy": "ucq"},
            {"strategy": "croot", "minimize": False},
            {"strategy": "croot", "use_uscq": True},
        ):
            report = system.answer(QUERY, **kwargs)
            assert not report.plan_cache_hit, kwargs
            assert report.answers == baseline.answers

    def test_time_budget_bypasses_the_cache(self, system):
        system.answer(QUERY, strategy="gdl")
        budgeted = system.answer(
            QUERY, strategy="gdl", time_budget_seconds=10.0
        )
        assert not budgeted.plan_cache_hit

    def test_opt_out(self, system):
        system.answer(QUERY, strategy="gdl")
        report = system.answer(QUERY, strategy="gdl", use_plan_cache=False)
        assert not report.plan_cache_hit

    def test_cached_plan_skips_perfectref(self, system):
        from repro.reformulation.perfectref import perfectref_invocations

        system.answer(QUERY, strategy="gdl")
        before = perfectref_invocations()
        system.answer(QUERY, strategy="gdl")
        assert perfectref_invocations() == before

    @pytest.mark.parametrize("strategy", ["ucq", "croot", "gdl", "edl"])
    def test_queries_with_constants_are_cacheable(self, system, strategy):
        # Regression: canonical_key (the plan-cache key) used to crash
        # sorting atoms that mix a Constant and a Variable at the same
        # argument position of one predicate.
        query = "q(x) <- worksWith(x, Francois), worksWith(x, y)"
        cold = system.answer(query, strategy=strategy)
        warm = system.answer(query, strategy=strategy)
        assert warm.plan_cache_hit
        assert warm.answers == cold.answers == {("Ioana",), ("Damian",)}


class TestAnswerMany:
    QUERIES = [
        QUERY,
        "q(x) <- Researcher(x)",
        QUERY,  # duplicate: exercised through the plan cache
        "q(x, y) <- supervisedBy(x, y)",
    ]

    @pytest.mark.parametrize("backend", ["memory", "sqlite"])
    def test_matches_sequential_answers(self, backend):
        with OBDASystem.from_text(TBOX, ABOX, backend=backend) as system:
            sequential = [
                system.answer(q, strategy="gdl", use_plan_cache=False)
                for q in self.QUERIES
            ]
            batched = system.answer_many(self.QUERIES, strategy="gdl")
            assert [r.answers for r in batched] == [
                r.answers for r in sequential
            ]

    def test_threaded_against_sqlite_matches_sequential(self):
        with OBDASystem.from_text(TBOX, ABOX, backend="sqlite") as system:
            expected = [
                system.answer(q, strategy="gdl", use_plan_cache=False).answers
                for q in self.QUERIES
            ]
            for _ in range(3):  # repeat to shake out races
                batched = system.answer_many(
                    self.QUERIES, strategy="gdl", max_workers=4
                )
                assert [r.answers for r in batched] == expected

    def test_duplicates_hit_the_plan_cache(self, system):
        reports = system.answer_many(self.QUERIES, strategy="gdl")
        assert not reports[0].plan_cache_hit
        assert reports[2].plan_cache_hit  # the duplicate of reports[0]

    def test_threaded_duplicates_are_single_flighted(self, system):
        # Concurrent requests for the same uncached plan must not race
        # duplicate searches: exactly one computes, the rest wait and hit.
        reports = system.answer_many([QUERY] * 6, strategy="gdl", max_workers=6)
        cold = [r for r in reports if not r.plan_cache_hit]
        assert len(cold) == 1
        assert len({frozenset(r.answers) for r in reports}) == 1

    def test_accepts_parsed_queries(self, system):
        parsed = [parse_query(q) for q in self.QUERIES]
        reports = system.answer_many(parsed, strategy="croot")
        assert reports[0].answers == {("Damian",)}


class TestLubmCacheCorrectness:
    """Cached and uncached reformulations answer identically on LUBM."""

    STRATEGIES = ("ucq", "croot", "gdl", "edl")

    @pytest.fixture(scope="class")
    def lubm_system(self):
        from repro.bench.generator import generate_abox
        from repro.bench.lubm import lubm_exists_tbox

        system = OBDASystem(lubm_exists_tbox(), generate_abox("tiny"))
        yield system
        system.close()

    @pytest.fixture(scope="class")
    def workload(self):
        from repro.bench.queries import query, star_queries

        picks = {"Q9": query("Q9"), "Q11": query("Q11")}
        picks["A3"] = star_queries()["A3"]
        return picks

    def test_cached_answers_match_uncached(self, lubm_system, workload):
        for name, cq in workload.items():
            for strategy in self.STRATEGIES:
                # Truly cold: bypass the plan cache and drop the shared
                # fragment cache so every reformulation is recomputed.
                lubm_system.reformulation_cache.clear()
                cold = lubm_system.answer(
                    cq, strategy=strategy, use_plan_cache=False
                )
                warm_fragments = lubm_system.answer(
                    cq, strategy=strategy, use_plan_cache=False
                )
                warm_plan = lubm_system.answer(cq, strategy=strategy)
                warm_plan_hit = lubm_system.answer(cq, strategy=strategy)
                assert warm_plan_hit.plan_cache_hit
                assert (
                    cold.answers
                    == warm_fragments.answers
                    == warm_plan.answers
                    == warm_plan_hit.answers
                ), (name, strategy)

    def test_strategies_agree_through_the_caches(self, lubm_system, workload):
        for name, cq in workload.items():
            reference = None
            for strategy in self.STRATEGIES:
                report = lubm_system.answer(cq, strategy=strategy)
                if reference is None:
                    reference = report.answers
                else:
                    assert report.answers == reference, (name, strategy)


class TestTeardown:
    def test_sqlite_backend_close_is_idempotent(self):
        backend = SQLiteBackend()
        backend.close()
        backend.close()
        with pytest.raises(RuntimeError):
            backend.execute("SELECT 1")

    def test_sqlite_backend_context_manager(self):
        from repro.storage.layouts import SimpleLayout
        from repro.dllite.parser import parse_abox

        abox = parse_abox(ABOX)
        with SQLiteBackend() as backend:
            backend.load(SimpleLayout().build(abox))
            assert backend.execute("SELECT 1") == [(1,)]
        with pytest.raises(RuntimeError):
            backend.execute("SELECT 1")

    def test_system_close_closes_backend(self):
        system = OBDASystem.from_text(TBOX, ABOX, backend="sqlite")
        system.answer(QUERY, strategy="croot")
        system.close()
        with pytest.raises(RuntimeError):
            system.backend.execute("SELECT 1")
        assert len(system.plan_cache) == 0

    def test_system_context_manager(self):
        with OBDASystem.from_text(TBOX, ABOX, backend="sqlite") as system:
            assert system.answer(QUERY, strategy="ucq").answers == {
                ("Damian",)
            }
        with pytest.raises(RuntimeError):
            system.backend.execute("SELECT 1")
