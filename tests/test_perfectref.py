"""PerfectRef reformulation tests, pinned to the paper's Examples 4 and 7."""

import pytest

from repro.dllite.parser import parse_query
from repro.queries.atoms import concept_atom, role_atom
from repro.queries.cq import CQ
from repro.queries.evaluate import evaluate_ucq
from repro.queries.terms import Variable
from repro.reformulation.perfectref import perfectref, reformulate_to_ucq

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


def keys(cqs):
    return {cq.canonical_key() for cq in cqs}


class TestExample4:
    """q(x) <- PhDStudent(x), worksWith(y, x) against the Example 1 TBox."""

    @pytest.fixture
    def query(self) -> CQ:
        return parse_query("q(x) <- PhDStudent(x), worksWith(y, x)")

    def test_ten_distinct_disjuncts(self, query, example1_tbox):
        result = perfectref(query, example1_tbox)
        assert len(result) == 10

    def test_table5_disjuncts_present(self, query, example1_tbox):
        result_keys = keys(perfectref(query, example1_tbox))
        expected = [
            "q(x) <- PhDStudent(x), worksWith(y, x)",    # q1
            "q(x) <- PhDStudent(x), worksWith(x, y)",    # q2
            "q(x) <- PhDStudent(x), supervisedBy(y, x)", # q3
            "q(x) <- PhDStudent(x), supervisedBy(x, y)", # q4
            "q(x) <- supervisedBy(x, z), worksWith(y, x)",    # q5
            "q(x) <- supervisedBy(x, z), worksWith(x, y)",    # q6
            "q(x) <- supervisedBy(x, z), supervisedBy(y, x)", # q7
            "q(x) <- supervisedBy(x, z), supervisedBy(x, y)", # q8
            "q(x) <- supervisedBy(x, x)",                # q9
            "q(x) <- supervisedBy(x, y)",                # q10
        ]
        for text in expected:
            assert parse_query(text).canonical_key() in result_keys, text

    def test_minimized_reformulation(self, query, example1_tbox):
        # Paper 2.3: the minimal UCQ is q1, q2, q3 and q10 (q4-q9 are
        # contained in q10).
        minimized = reformulate_to_ucq(query, example1_tbox, minimize=True)
        assert len(minimized) == 4
        assert parse_query("q(x) <- supervisedBy(x, y)").canonical_key() in keys(
            minimized.disjuncts
        )

    def test_example3_answer(self, query, example1_tbox, example1_abox):
        # ans(q, K) = {Damian}; plain evaluation of q yields nothing.
        from repro.queries.evaluate import evaluate_cq

        facts = example1_abox.fact_store()
        assert evaluate_cq(query, facts) == set()
        ucq = reformulate_to_ucq(query, example1_tbox)
        assert evaluate_ucq(ucq, facts) == {("Damian",)}


class TestExample7:
    """Running example of Section 4: 4-disjunct UCQ."""

    @pytest.fixture
    def query(self) -> CQ:
        return parse_query(
            "q(x) <- PhDStudent(x), worksWith(x, y), supervisedBy(z, y)"
        )

    def test_four_disjuncts(self, query, example7_tbox):
        result = perfectref(query, example7_tbox)
        assert len(result) == 4

    def test_expected_disjuncts(self, query, example7_tbox):
        result_keys = keys(perfectref(query, example7_tbox))
        expected = [
            "q(x) <- PhDStudent(x), worksWith(x, y), supervisedBy(z, y)",     # q1
            "q(x) <- PhDStudent(x), supervisedBy(x, y), supervisedBy(z, y)",  # q2
            "q(x) <- PhDStudent(x), supervisedBy(x, y)",                      # q3
            "q(x) <- PhDStudent(x), Graduate(x)",                             # q4
        ]
        for text in expected:
            assert parse_query(text).canonical_key() in result_keys, text

    def test_answer_is_damian(self, query, example7_tbox, example7_abox):
        ucq = reformulate_to_ucq(query, example7_tbox)
        assert evaluate_ucq(ucq, example7_abox.fact_store()) == {("Damian",)}

    def test_q4_requires_the_unification_chain(self, query, example7_tbox):
        # q4 = PhDStudent(x) AND Graduate(x) only arises after the mgu step
        # (q3) enables the backward application of Graduate <= exists
        # supervisedBy. Its presence certifies the reduce step works.
        result_keys = keys(perfectref(query, example7_tbox))
        q4 = parse_query("q(x) <- PhDStudent(x), Graduate(x)")
        assert q4.canonical_key() in result_keys


class TestReformulationGeneralities:
    def test_input_query_always_first(self, example1_tbox):
        query = parse_query("q(x) <- Researcher(x)")
        result = perfectref(query, example1_tbox)
        assert result[0].canonical_key() == query.canonical_key()

    def test_empty_tbox_is_identity(self):
        from repro.dllite.tbox import TBox

        query = parse_query("q(x) <- PhDStudent(x), worksWith(y, x)")
        result = perfectref(query, TBox())
        assert len(result) == 1

    def test_researcher_query_expansion(self, example1_tbox):
        # Researcher(x) expands through T1, T2, T3, then T5/T4 variants and
        # the T6 specialization of PhDStudent.
        query = parse_query("q(x) <- Researcher(x)")
        result = perfectref(query, example1_tbox)
        result_keys = keys(result)
        for text in [
            "q(x) <- Researcher(x)",
            "q(x) <- PhDStudent(x)",
            "q(x) <- worksWith(x, y)",
            "q(x) <- worksWith(y, x)",
            "q(x) <- supervisedBy(x, y)",
            "q(x) <- supervisedBy(y, x)",
        ]:
            assert parse_query(text).canonical_key() in result_keys, text

    def test_constants_survive_reformulation(self, example1_tbox):
        query = parse_query("q() <- PhDStudent(Damian)")
        result = perfectref(query, example1_tbox)
        specialized = [cq for cq in result if cq.atoms[0].predicate == "supervisedBy"]
        assert specialized, "expected backward application of T6 to a constant"

    def test_max_queries_bounds_fixpoint(self, example1_tbox):
        query = parse_query("q(x) <- Researcher(x)")
        bounded = perfectref(query, example1_tbox, max_queries=2)
        assert len(bounded) <= 2

    def test_soundness_over_abox(self, example1_tbox, example1_abox):
        # Every disjunct's answers are answers of the certain-answer set
        # computed by the chase oracle.
        from repro.dllite.kb import KnowledgeBase
        from repro.dllite.saturation import certain_answers
        from repro.queries.evaluate import evaluate_cq

        query = parse_query("q(x) <- Researcher(x)")
        kb = KnowledgeBase(example1_tbox, example1_abox)
        truth = certain_answers(query, kb)
        facts = example1_abox.fact_store()
        for disjunct in perfectref(query, example1_tbox):
            assert evaluate_cq(disjunct, facts) <= truth

    def test_completeness_matches_chase(self, example1_tbox, example1_abox):
        from repro.dllite.kb import KnowledgeBase
        from repro.dllite.saturation import certain_answers

        query = parse_query("q(x) <- Researcher(x)")
        kb = KnowledgeBase(example1_tbox, example1_abox)
        truth = certain_answers(query, kb)
        ucq = reformulate_to_ucq(query, example1_tbox)
        assert evaluate_ucq(ucq, example1_abox.fact_store()) == truth
        assert truth == {("Ioana",), ("Francois",), ("Damian",)}
