"""SQL translation + storage tests.

The central property is *differential*: for every dialect and every layout,
evaluating the translated SQL on both backends returns exactly the answers
the trusted naive evaluator computes.
"""

import pytest

from repro.dllite.parser import parse_query
from repro.queries.cq import CQ
from repro.queries.evaluate import evaluate
from repro.queries.jucq import JUCQ
from repro.queries.terms import Variable
from repro.queries.ucq import UCQ
from repro.reformulation.perfectref import reformulate_to_ucq
from repro.reformulation.uscq import factorize_ucq
from repro.sql.translator import SQLTranslator
from repro.storage.dictionary import Dictionary
from repro.storage.layouts import RDFLayout, SimpleLayout, TYPE_PREDICATE
from repro.storage.memory_backend import MemoryBackend
from repro.storage.sqlite_backend import SQLiteBackend

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


@pytest.fixture
def abox(example1_abox):
    example1_abox.add_concept("PhDStudent", "Damian")
    example1_abox.add_concept("Researcher", "Ioana")
    return example1_abox


def _decoded(rows, dictionary):
    return {dictionary.decode_row(row) for row in rows}


def _load(layout, abox, backend):
    data = layout.build(abox)
    backend.load(data)
    return backend


class TestDictionary:
    def test_roundtrip(self):
        d = Dictionary()
        code = d.encode("Damian")
        assert d.decode(code) == "Damian"
        assert d.encode("Damian") == code
        assert len(d) == 1

    def test_try_encode_unknown(self):
        d = Dictionary()
        assert d.try_encode("nope") is None

    def test_contains(self):
        d = Dictionary()
        d.encode("a")
        assert "a" in d and "b" not in d


class TestSimpleLayout:
    def test_tables_and_indexes(self, abox):
        layout = SimpleLayout()
        data = layout.build(abox)
        names = {spec.name for spec in data.tables}
        assert names == {
            "c_phdstudent",
            "c_researcher",
            "r_workswith",
            "r_supervisedby",
        }
        role_spec = [s for s in data.tables if s.name == "r_workswith"][0]
        assert role_spec.indexes == (("s",), ("o",), ("s", "o"))

    def test_encoding_is_consistent_across_tables(self, abox):
        layout = SimpleLayout()
        data = layout.build(abox)
        damian = layout.dictionary.try_encode("Damian")
        student_rows = [s for s in data.tables if s.name == "c_phdstudent"][0].rows
        supervised = [s for s in data.tables if s.name == "r_supervisedby"][0].rows
        assert (damian,) in student_rows
        assert any(row[0] == damian for row in supervised)

    def test_atom_branches_single(self, abox):
        layout = SimpleLayout()
        branches = layout.atom_branches(parse_query("q(x) <- PhDStudent(x)").atoms[0])
        assert len(branches) == 1
        assert branches[0].table == "c_phdstudent"


class TestRDFLayout:
    def test_single_wide_table(self, abox):
        layout = RDFLayout(width=4)
        data = layout.build(abox)
        assert len(data.tables) == 1
        spec = data.tables[0]
        assert spec.name == "dph"
        assert len(spec.columns) == 1 + 2 * 4

    def test_every_fact_is_stored(self, abox):
        layout = RDFLayout(width=4)
        data = layout.build(abox)
        spec = data.tables[0]
        # Count non-null (pred, value) pairs == number of assertions.
        pairs = 0
        for row in spec.rows:
            for i in range(4):
                if row[1 + 2 * i] is not None:
                    pairs += 1
        assert pairs == len(abox)

    def test_spill_rows_on_narrow_width(self, abox):
        layout = RDFLayout(width=1)
        data = layout.build(abox)
        spec = data.tables[0]
        damian = layout.dictionary.try_encode("Damian")
        damian_rows = [r for r in spec.rows if r[0] == damian]
        # Damian has 3 assertions but width 1 -> three spill rows.
        assert len(damian_rows) == 3

    def test_atom_branches_cover_all_columns(self, abox):
        layout = RDFLayout(width=4)
        layout.build(abox)
        atom = parse_query("q(x, y) <- worksWith(x, y)").atoms[0]
        branches = layout.atom_branches(atom)
        assert len(branches) == 4
        tables = {b.table for b in branches}
        assert tables == {"dph"}

    def test_concept_atoms_use_type_predicate(self, abox):
        layout = RDFLayout(width=2)
        layout.build(abox)
        atom = parse_query("q(x) <- PhDStudent(x)").atoms[0]
        branches = layout.atom_branches(atom)
        type_code = layout.dictionary.try_encode(TYPE_PREDICATE)
        for branch in branches:
            fixed = dict(branch.fixed)
            assert type_code in fixed.values()


from backend_conformance import (  # noqa: E402
    check_dialect_translations,
)


def _backends():
    return [SQLiteBackend(), MemoryBackend()]


class TestDifferentialCQ:
    """SQL on both backends == naive evaluation, on both layouts.

    Delegates to the reusable conformance suite, which runs the same
    checks over ShardedBackend too (test_backend_conformance.py).
    """

    @pytest.mark.parametrize("backend_factory", [SQLiteBackend, MemoryBackend])
    @pytest.mark.parametrize(
        "layout_factory", [SimpleLayout, lambda: RDFLayout(width=4)]
    )
    def test_cq_translation(
        self, abox, example1_tbox, backend_factory, layout_factory
    ):
        check_dialect_translations(
            backend_factory, layout_factory, abox, example1_tbox
        )


class TestDifferentialReformulations:
    """UCQ / JUCQ / JUSCQ reformulations agree across engines and layouts."""

    @pytest.fixture
    def query(self):
        return parse_query("q(x) <- PhDStudent(x), worksWith(y, x)")

    def test_ucq_reformulation_all_backends(
        self, abox, query, example1_tbox
    ):
        ucq = reformulate_to_ucq(query, example1_tbox)
        expected = evaluate(ucq, abox.fact_store())
        assert ("Damian",) in expected
        for layout in (SimpleLayout(), RDFLayout(width=4)):
            data = layout.build(abox)
            sql = SQLTranslator(layout).translate(ucq)
            for backend in _backends():
                backend.load(data)
                rows = backend.execute(sql)
                assert _decoded(rows, layout.dictionary) == expected, (
                    backend.name,
                    layout.name,
                )

    def test_jucq_reformulation_all_backends(self, abox, query, example1_tbox):
        from repro.covers.reformulate import cover_based_reformulation
        from repro.covers.safety import root_cover

        cover = root_cover(query, example1_tbox)
        jucq = cover_based_reformulation(cover, example1_tbox)
        expected = evaluate(jucq, abox.fact_store())
        for layout in (SimpleLayout(), RDFLayout(width=4)):
            data = layout.build(abox)
            sql = SQLTranslator(layout).translate(jucq)
            for backend in _backends():
                backend.load(data)
                rows = backend.execute(sql)
                assert _decoded(rows, layout.dictionary) == expected, (
                    backend.name,
                    layout.name,
                )

    def test_juscq_reformulation_all_backends(self, abox, query, example1_tbox):
        from repro.covers.reformulate import cover_based_uscq_reformulation
        from repro.covers.safety import root_cover

        cover = root_cover(query, example1_tbox)
        juscq = cover_based_uscq_reformulation(cover, example1_tbox)
        expected = evaluate(juscq, abox.fact_store())
        layout = SimpleLayout()
        data = layout.build(abox)
        sql = SQLTranslator(layout).translate(juscq)
        for backend in _backends():
            backend.load(data)
            rows = backend.execute(sql)
            assert _decoded(rows, layout.dictionary) == expected, backend.name

    def test_uscq_translation(self, abox, query, example1_tbox):
        ucq = reformulate_to_ucq(query, example1_tbox, minimize=True)
        uscq = factorize_ucq(ucq)
        expected = evaluate(ucq, abox.fact_store())
        layout = SimpleLayout()
        data = layout.build(abox)
        sql = SQLTranslator(layout).translate(uscq)
        for backend in _backends():
            backend.load(data)
            rows = backend.execute(sql)
            assert _decoded(rows, layout.dictionary) == expected, backend.name


class TestCostEstimates:
    def test_both_backends_expose_costs(self, abox):
        query = parse_query("q(x) <- PhDStudent(x), worksWith(y, x)")
        layout = SimpleLayout()
        data = layout.build(abox)
        sql = SQLTranslator(layout).translate(query)
        for backend in _backends():
            backend.load(data)
            assert backend.estimated_cost(sql) > 0

    def test_sqlite_shadow_tracks_scale(self, abox):
        # A bigger table must raise the estimated scan cost.
        layout = SimpleLayout()
        for i in range(200):
            abox.add_role("worksWith", f"p{i}", f"q{i}")
        data = layout.build(abox)
        backend = SQLiteBackend()
        backend.load(data)
        small = backend.estimated_cost("SELECT DISTINCT s FROM c_phdstudent")
        big = backend.estimated_cost("SELECT DISTINCT s FROM r_workswith")
        assert big > small

    def test_memory_backend_statement_limit(self, abox):
        layout = SimpleLayout()
        data = layout.build(abox)
        backend = MemoryBackend(max_statement_length=50)
        backend.load(data)
        from repro.engine.errors import StatementTooLongError

        with pytest.raises(StatementTooLongError):
            backend.execute(
                "SELECT DISTINCT s FROM c_phdstudent WHERE s = 1 AND s = 1 AND s = 1"
            )

    def test_explain_text_available(self, abox):
        layout = SimpleLayout()
        data = layout.build(abox)
        sql = "SELECT DISTINCT s FROM c_phdstudent"
        memory = MemoryBackend()
        memory.load(data)
        assert "Distinct" in memory.explain_text(sql)
        lite = SQLiteBackend()
        lite.load(data)
        assert lite.explain_text(sql)
