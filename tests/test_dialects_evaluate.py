"""Tests for UCQ/SCQ/USCQ/JUCQ dialects, expansion and the naive evaluator."""

import pytest

from repro.queries.atoms import concept_atom, role_atom
from repro.queries.cq import CQ
from repro.queries.evaluate import (
    evaluate,
    evaluate_cq,
    evaluate_jucq,
    evaluate_scq,
    evaluate_ucq,
    evaluate_uscq,
)
from repro.queries.jucq import JUCQ, JUSCQ
from repro.queries.scq import SCQ, AtomUnion, USCQ
from repro.queries.terms import Constant, Variable
from repro.queries.ucq import UCQ

X, Y, Z = Variable("x"), Variable("y"), Variable("z")

FACTS = {
    "PhDStudent": {("Damian",)},
    "Researcher": {("Ioana",), ("Francois",)},
    "worksWith": {("Ioana", "Francois"), ("Damian", "Ioana")},
    "supervisedBy": {("Damian", "Ioana"), ("Damian", "Francois")},
}


class TestEvaluateCQ:
    def test_single_atom(self):
        q = CQ(head=(X,), atoms=(concept_atom("PhDStudent", X),))
        assert evaluate_cq(q, FACTS) == {("Damian",)}

    def test_join(self):
        # worksWith(x, z) AND supervisedBy(y, z): Ioana works with Francois
        # who Damian is supervised by; Damian works with Ioana likewise.
        q = CQ(
            head=(X, Y),
            atoms=(role_atom("worksWith", X, Z), role_atom("supervisedBy", Y, Z)),
        )
        assert evaluate_cq(q, FACTS) == {("Ioana", "Damian"), ("Damian", "Damian")}

    def test_join_with_no_matches_is_empty(self):
        q = CQ(
            head=(X, Y),
            atoms=(role_atom("worksWith", X, Z), role_atom("supervisedBy", Z, Y)),
        )
        assert evaluate_cq(q, FACTS) == set()

    def test_constant_filter(self):
        q = CQ(head=(Y,), atoms=(role_atom("supervisedBy", Constant("Damian"), Y),))
        assert evaluate_cq(q, FACTS) == {("Ioana",), ("Francois",)}

    def test_boolean_query_true(self):
        q = CQ(head=(), atoms=(concept_atom("PhDStudent", X),))
        assert evaluate_cq(q, FACTS) == {()}

    def test_boolean_query_false(self):
        q = CQ(head=(), atoms=(concept_atom("Professor", X),))
        assert evaluate_cq(q, FACTS) == set()

    def test_repeated_variable_forces_equality(self):
        q = CQ(head=(X,), atoms=(role_atom("worksWith", X, X),))
        assert evaluate_cq(q, FACTS) == set()

    def test_missing_predicate_is_empty(self):
        q = CQ(head=(X,), atoms=(concept_atom("Unknown", X),))
        assert evaluate_cq(q, FACTS) == set()


class TestUCQ:
    def test_arity_mismatch_rejected(self):
        q1 = CQ(head=(X,), atoms=(concept_atom("A", X),))
        q2 = CQ(head=(X, Y), atoms=(role_atom("r", X, Y),))
        with pytest.raises(ValueError):
            UCQ((q1, q2))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            UCQ(())

    def test_union_evaluation(self):
        q1 = CQ(head=(X,), atoms=(concept_atom("PhDStudent", X),))
        q2 = CQ(head=(X,), atoms=(concept_atom("Researcher", X),))
        answers = evaluate_ucq(UCQ((q1, q2)), FACTS)
        assert answers == {("Damian",), ("Ioana",), ("Francois",)}

    def test_predicates(self):
        q1 = CQ(head=(X,), atoms=(concept_atom("A", X),))
        q2 = CQ(head=(X,), atoms=(role_atom("r", X, Y),))
        assert UCQ((q1, q2)).predicates() == {"A", "r"}


class TestJUCQ:
    def make_jucq(self) -> JUCQ:
        # Fragment 1 exports (x): PhDStudent(x) OR Researcher(x)
        # Fragment 2 exports (x): exists y worksWith(x, y)
        frag1 = UCQ(
            (
                CQ(head=(X,), atoms=(concept_atom("PhDStudent", X),)),
                CQ(head=(X,), atoms=(concept_atom("Researcher", X),)),
            )
        )
        frag2 = UCQ((CQ(head=(X,), atoms=(role_atom("worksWith", X, Y),)),))
        return JUCQ(head=(X,), components=(frag1, frag2))

    def test_join_on_shared_head_name(self):
        answers = evaluate_jucq(self.make_jucq(), FACTS)
        assert answers == {("Damian",), ("Ioana",)}

    def test_expand_equals_direct_evaluation(self):
        jucq = self.make_jucq()
        expanded = UCQ(tuple(jucq.expand()))
        assert evaluate_ucq(expanded, FACTS) == evaluate_jucq(jucq, FACTS)

    def test_expansion_count_is_product(self):
        assert len(self.make_jucq().expand()) == 2

    def test_empty_components_rejected(self):
        with pytest.raises(ValueError):
            JUCQ(head=(X,), components=())

    def test_expand_renames_apart(self):
        # Both components use the same existential variable name 'y'; the
        # expansion must not conflate them.
        frag1 = UCQ((CQ(head=(X,), atoms=(role_atom("worksWith", X, Y),)),))
        frag2 = UCQ((CQ(head=(X,), atoms=(role_atom("supervisedBy", X, Y),)),))
        jucq = JUCQ(head=(X,), components=(frag1, frag2))
        combined = jucq.expand()[0]
        works_with = [a for a in combined.atoms if a.predicate == "worksWith"][0]
        supervised = [a for a in combined.atoms if a.predicate == "supervisedBy"][0]
        assert works_with.args[1] != supervised.args[1]
        # Only Damian has both an outgoing worksWith and supervisedBy edge.
        assert evaluate_jucq(jucq, FACTS) == {("Damian",)}


class TestSCQ:
    def make_scq(self) -> SCQ:
        block1 = AtomUnion(
            (
                CQ(head=(X,), atoms=(concept_atom("PhDStudent", X),)),
                CQ(head=(X,), atoms=(concept_atom("Researcher", X),)),
            )
        )
        block2 = AtomUnion(
            (CQ(head=(X,), atoms=(role_atom("worksWith", X, Y),)),)
        )
        return SCQ(head=(X,), blocks=(block1, block2))

    def test_atom_union_rejects_multi_atom(self):
        multi = CQ(head=(X,), atoms=(concept_atom("A", X), concept_atom("B", X)))
        with pytest.raises(ValueError):
            AtomUnion((multi,))

    def test_scq_evaluation(self):
        assert evaluate_scq(self.make_scq(), FACTS) == {("Damian",), ("Ioana",)}

    def test_scq_expand_matches(self):
        scq = self.make_scq()
        expanded = UCQ(tuple(scq.expand()))
        assert evaluate_ucq(expanded, FACTS) == evaluate_scq(scq, FACTS)

    def test_uscq_union(self):
        scq = self.make_scq()
        other = SCQ(
            head=(X,),
            blocks=(
                AtomUnion(
                    (CQ(head=(X,), atoms=(role_atom("supervisedBy", Y, X),)),)
                ),
            ),
        )
        uscq = USCQ((scq, other))
        assert evaluate_uscq(uscq, FACTS) == {
            ("Damian",),
            ("Ioana",),
            ("Francois",),
        }

    def test_juscq_expand_and_evaluate(self):
        uscq1 = USCQ((self.make_scq(),))
        uscq2 = USCQ(
            (
                SCQ(
                    head=(X,),
                    blocks=(
                        AtomUnion(
                            (
                                CQ(
                                    head=(X,),
                                    atoms=(role_atom("supervisedBy", X, Y),),
                                ),
                            )
                        ),
                    ),
                ),
            )
        )
        juscq = JUSCQ(head=(X,), components=(uscq1, uscq2))
        direct = evaluate(juscq, FACTS)
        expanded = evaluate_ucq(UCQ(tuple(juscq.expand())), FACTS)
        assert direct == expanded == {("Damian",)}


class TestDispatch:
    def test_evaluate_dispatches_all_dialects(self):
        cq = CQ(head=(X,), atoms=(concept_atom("PhDStudent", X),))
        assert evaluate(cq, FACTS) == {("Damian",)}
        assert evaluate(UCQ((cq,)), FACTS) == {("Damian",)}

    def test_unknown_type_raises(self):
        with pytest.raises(TypeError):
            evaluate("not a query", FACTS)  # type: ignore[arg-type]
