"""The materialized-saturation subsystem and the write path.

Covers, roughly inside-out:

* the engine/storage write primitives (``Table.delete``,
  ``Backend.insert_rows`` / ``delete_rows`` on both backends);
* the :class:`~repro.materialize.saturator.Saturator` against the oracle
  chase, including incremental maintenance under mixed writes;
* the ``sat`` / ``auto`` strategies agreeing with ``gdl`` on the full
  LUBM query suite, before and after a sequence of inserts and deletes
  (the PR's acceptance criterion);
* epoch-based invalidation: a write makes exactly the data-dependent
  cache entries unreachable — and a no-op write invalidates nothing;
* the chase truncation flag and ``answer_many(on_error=...)``.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.generator import generate_abox
from repro.bench.lubm import lubm_exists_tbox
from repro.bench.queries import benchmark_queries
from repro.dllite.abox import ABox, ConceptAssertion, RoleAssertion
from repro.dllite.axioms import ConceptInclusion, RoleInclusion
from repro.dllite.kb import KnowledgeBase
from repro.dllite.saturation import (
    ChaseTruncatedError,
    certain_answers,
    chase,
    is_null,
)
from repro.dllite.parser import parse_query
from repro.dllite.tbox import TBox
from repro.dllite.vocabulary import AtomicConcept as C
from repro.dllite.vocabulary import Exists, Role
from repro.materialize.saturator import Saturator
from repro.obda.system import OBDASystem
from repro.queries.evaluate import evaluate_cq
from repro.storage.layouts import LayoutData, TableSpec
from repro.storage.memory_backend import MemoryBackend
from repro.storage.sqlite_backend import SQLiteBackend


@pytest.fixture(scope="module")
def lubm_tbox():
    return lubm_exists_tbox()


@pytest.fixture(scope="module")
def lubm_queries():
    return benchmark_queries()


def _oracle_answers(query, tbox, abox):
    return certain_answers(query, KnowledgeBase(tbox, abox), max_generations=4)


def _store_answers(query, store):
    rows = evaluate_cq(query, store)
    return {row for row in rows if not any(is_null(value) for value in row)}


# ---------------------------------------------------------------------------
# Storage write primitives
# ---------------------------------------------------------------------------


def _loaded_backend(backend):
    backend.load(
        LayoutData(
            tables=[
                TableSpec(
                    name="r_t",
                    columns=("s", "o"),
                    rows=[(1, 2), (3, 4)],
                    indexes=(("s",), ("o",)),
                )
            ]
        )
    )
    return backend


@pytest.mark.parametrize("backend_cls", [MemoryBackend, SQLiteBackend])
class TestBackendWrites:
    def test_insert_rows_is_set_semantics(self, backend_cls):
        backend = _loaded_backend(backend_cls())
        backend.insert_rows("r_t", [(5, 6), (1, 2), (5, 6)])
        rows = set(backend.execute("SELECT s, o FROM r_t"))
        assert rows == {(1, 2), (3, 4), (5, 6)}

    def test_delete_rows_counts_removals(self, backend_cls):
        backend = _loaded_backend(backend_cls())
        removed = backend.delete_rows("r_t", [(1, 2), (9, 9)])
        assert removed == 1
        assert set(backend.execute("SELECT s, o FROM r_t")) == {(3, 4)}

    def test_write_refreshes_cost_statistics(self, backend_cls):
        backend = _loaded_backend(backend_cls())
        cold = backend.estimated_cost("SELECT s FROM r_t")
        backend.insert_rows("r_t", [(i, i) for i in range(10, 400)])
        warm = backend.estimated_cost("SELECT s FROM r_t")
        assert warm > cold  # the estimator sees the larger table


# ---------------------------------------------------------------------------
# Saturator vs the oracle chase
# ---------------------------------------------------------------------------


class TestSaturator:
    def test_full_saturation_matches_oracle_answers(self, lubm_tbox, lubm_queries):
        abox = generate_abox("tiny", seed=11)
        saturator = Saturator(lubm_tbox, abox, max_generations=4)
        saturator.saturate()
        for query in lubm_queries.values():
            assert _store_answers(query, saturator.store) == _oracle_answers(
                query, lubm_tbox, abox
            )

    def test_insert_only_derives_consequences(self):
        tbox = TBox(
            [
                ConceptInclusion(C("A"), C("B")),
                ConceptInclusion(C("B"), C("D")),
            ]
        )
        abox = ABox()
        abox.add_concept("A", "x")
        saturator = Saturator(tbox, abox)
        saturator.saturate()
        assertion = ConceptAssertion("A", "y")
        abox.add(assertion)
        added, removed = saturator.insert([assertion])
        assert removed == set()
        assert added == {
            ("A", ("y",)),
            ("B", ("y",)),
            ("D", ("y",)),
        }

    def test_delete_keeps_facts_with_other_support(self):
        works_with = Role("worksWith")
        tbox = TBox(
            [
                ConceptInclusion(C("PhD"), C("Researcher")),
                ConceptInclusion(Exists(works_with), C("Researcher")),
            ]
        )
        abox = ABox()
        abox.add_concept("PhD", "ana")
        abox.add_role("worksWith", "ana", "bo")
        saturator = Saturator(tbox, abox)
        saturator.saturate()
        assertion = ConceptAssertion("PhD", "ana")
        abox.remove(assertion)
        added, removed = saturator.delete([assertion])
        # Researcher(ana) survives: still derived from worksWith(ana, bo).
        assert ("ana",) in saturator.store["Researcher"]
        assert ("PhD", ("ana",)) in removed
        assert ("Researcher", ("ana",)) not in removed

    def test_delete_refires_existential_for_lost_witness(self):
        advisor = Role("advisor")
        tbox = TBox([ConceptInclusion(C("Grad"), Exists(advisor))])
        abox = ABox()
        abox.add_concept("Grad", "zoe")
        abox.add_role("advisor", "zoe", "prof")
        saturator = Saturator(tbox, abox)
        saturator.saturate()
        # The real witness suppresses the null...
        assert not any(
            is_null(obj) for _, obj in saturator.store.get("advisor", ())
        )
        assertion = RoleAssertion("advisor", "zoe", "prof")
        abox.remove(assertion)
        added, removed = saturator.delete([assertion])
        # ...and deleting it re-fires the rule with a fresh null.
        assert ("advisor", ("zoe", "prof")) in removed
        nulls = [
            row
            for row in saturator.store["advisor"]
            if row[0] == "zoe" and is_null(row[1])
        ]
        assert len(nulls) == 1
        assert ("advisor", nulls[0]) in added

    def test_role_inclusion_cycle_deletes_cleanly(self):
        r, s = Role("r"), Role("s")
        tbox = TBox([RoleInclusion(r, s), RoleInclusion(s, r)])
        abox = ABox()
        abox.add_role("r", "a", "b")
        saturator = Saturator(tbox, abox)
        saturator.saturate()
        assert ("a", "b") in saturator.store["s"]
        assertion = RoleAssertion("r", "a", "b")
        abox.remove(assertion)
        _, removed = saturator.delete([assertion])
        # DRed: the mutually-supporting cycle must not resurrect itself.
        assert saturator.store.get("r", set()) == set()
        assert saturator.store.get("s", set()) == set()
        assert {("r", ("a", "b")), ("s", ("a", "b"))} <= removed

    def test_churn_cycle_does_not_leak_nulls(self):
        advisor = Role("advisor")
        tbox = TBox([ConceptInclusion(C("Grad"), Exists(advisor))])
        abox = ABox()
        abox.add_concept("Grad", "zoe")
        saturator = Saturator(tbox, abox)
        saturator.saturate()
        assertion = ConceptAssertion("Grad", "zoe")
        for _ in range(50):
            abox.remove(assertion)
            saturator.delete([assertion])
            abox.add(assertion)
            saturator.insert([assertion])
        # Dead nulls free their generation entries and their names are
        # recycled, so 50 delete/insert cycles allocate no new nulls.
        assert len(saturator._generation) == 1
        assert next(saturator._null_counter) <= 2

    def test_truncation_sets_flag(self):
        manages = Role("manages")
        tbox = TBox(
            [
                ConceptInclusion(C("Boss"), Exists(manages)),
                ConceptInclusion(Exists(manages.inverted()), C("Boss")),
            ]
        )
        abox = ABox()
        abox.add_concept("Boss", "root")
        saturator = Saturator(tbox, abox, max_generations=2)
        saturator.saturate()
        assert saturator.truncated

    def test_real_witness_insert_retracts_null_chain_and_untruncates(self):
        manages = Role("manages")
        tbox = TBox(
            [
                ConceptInclusion(C("Boss"), Exists(manages)),
                ConceptInclusion(Exists(manages.inverted()), C("Boss")),
            ]
        )
        abox = ABox()
        abox.add_concept("Boss", "root")
        saturator = Saturator(tbox, abox, max_generations=2)
        saturator.saturate()
        assert saturator.truncated  # null chain hits the bound
        # A real self-loop witnesses root — a fresh chase of the new ABox
        # would hold no nulls, so the stale chain must be retracted and
        # the truncation flag must clear.
        assertion = RoleAssertion("manages", "root", "root")
        abox.add(assertion)
        added, removed = saturator.insert([assertion])
        assert not saturator.truncated
        assert not any(
            is_null(value)
            for rows in saturator.store.values()
            for row in rows
            for value in row
        )
        assert ("manages", ("root", "root")) in added
        assert all(
            any(is_null(value) for value in row)
            for _, row in removed
        )


# ---------------------------------------------------------------------------
# sat / auto strategies vs gdl — the acceptance criterion
# ---------------------------------------------------------------------------


class TestSatAndAutoStrategies:
    @pytest.fixture(scope="class")
    def system(self, lubm_tbox):
        with OBDASystem(
            lubm_tbox, generate_abox("tiny", seed=5), backend="sqlite"
        ) as system:
            yield system

    def test_full_suite_agreement_before_and_after_writes(
        self, system, lubm_queries
    ):
        def check(stage):
            for name, query in lubm_queries.items():
                gdl = system.answer(query, strategy="gdl").answers
                sat = system.answer(query, strategy="sat").answers
                auto = system.answer(query, strategy="auto").answers
                assert sat == gdl, f"{name} sat != gdl {stage}"
                assert auto == gdl, f"{name} auto != gdl {stage}"

        check("before writes")
        inserted = system.insert_facts(
            [
                ("GraduateStudent", "NewGrad"),
                ("advisor", "NewGrad", "NewProf"),
                ("FullProfessor", "NewProf"),
                ("worksFor", "NewProf", "Dept0_0"),
                ("takesCourse", "NewGrad", "GradCourse0_0_0"),
            ]
        )
        assert inserted == 5
        deleted = system.delete_facts(
            [
                ("advisor", "NewGrad", "NewProf"),
                ("takesCourse", "NewGrad", "GradCourse0_0_0"),
                ("headOf", "missing", "nowhere"),  # absent: not counted
            ]
        )
        assert deleted == 2
        check("after writes")

    def test_sat_answers_equal_oracle(self, system, lubm_queries, lubm_tbox):
        for query in lubm_queries.values():
            expected = _oracle_answers(query, lubm_tbox, system.kb.abox)
            assert system.answer(query, strategy="sat").answers == expected

    def test_auto_reports_routing_decision(self, system):
        report = system.answer(
            "q(x) <- Professor(x), worksFor(x, y)", strategy="auto"
        )
        routing = report.choice.routing
        assert routing is not None
        assert routing.routed_to in ("sat", "gdl")
        assert routing.saturation_cost >= 0
        assert routing.reformulation_cost >= 0

    def test_sat_requires_simple_layout(self, lubm_tbox):
        system = OBDASystem(
            lubm_tbox, generate_abox("tiny", seed=5), layout="rdf"
        )
        with pytest.raises(ValueError, match="simple layout"):
            system.answer("q(x) <- Professor(x)", strategy="sat")


# ---------------------------------------------------------------------------
# Epoch-based invalidation: never a stale plan, never a full flush
# ---------------------------------------------------------------------------


class TestDataEpoch:
    @pytest.fixture
    def system(self, lubm_tbox):
        with OBDASystem(
            lubm_tbox, generate_abox("tiny", seed=9), materialize=True
        ) as system:
            yield system

    def test_write_invalidates_cost_based_plan(self, system):
        query = "q(x) <- Professor(x), worksFor(x, y), Department(y)"
        assert not system.answer(query, strategy="gdl").plan_cache_hit
        assert system.answer(query, strategy="gdl").plan_cache_hit
        before = system.plan_cache.stats()["stale"]
        system.insert_facts([("Professor", "Fresh")])
        report = system.answer(query, strategy="gdl")
        assert not report.plan_cache_hit  # the pre-write plan was dropped
        assert system.plan_cache.stats()["stale"] > before
        assert system.answer(query, strategy="gdl").plan_cache_hit

    def test_write_keeps_data_independent_plans(self, system):
        query = "q(x) <- GraduateStudent(x)"
        for strategy in ("ucq", "croot", "sat"):
            system.answer(query, strategy=strategy)
        system.insert_facts([("GraduateStudent", "Eve")])
        for strategy in ("ucq", "croot", "sat"):
            report = system.answer(query, strategy=strategy)
            assert report.plan_cache_hit, strategy
            assert ("Eve",) in report.answers  # reused plan, fresh data

    def test_noop_write_invalidates_nothing(self, system):
        query = "q(x) <- Professor(x), worksFor(x, y)"
        system.answer(query, strategy="gdl")
        epoch = system.data_epoch
        existing = next(iter(system.kb.abox.role_facts("worksFor")))
        assert system.insert_facts([("worksFor",) + existing]) == 0
        assert system.delete_facts([("Professor", "NoSuchPerson")]) == 0
        assert system.data_epoch == epoch
        assert system.answer(query, strategy="gdl").plan_cache_hit

    def test_churn_does_not_grow_the_dictionary(self, system):
        system.answer("q(x) <- GraduateStudent(x), advisor(x, y)", strategy="sat")
        system.insert_facts([("GraduateStudent", "churner")])
        system.delete_facts([("GraduateStudent", "churner")])
        baseline = len(system.layout.dictionary)
        for _ in range(25):
            system.insert_facts([("GraduateStudent", "churner")])
            system.delete_facts([("GraduateStudent", "churner")])
        # Null witnesses invented by re-inserts recycle retired names, so
        # the dictionary stays put across identical-state cycles.
        assert len(system.layout.dictionary) == baseline

    def test_concurrent_writes_and_reads_stay_consistent(self, system):
        # Readers and writers interleave; every observed answer set must
        # be one the sequential system could produce (never a torn scan).
        import threading

        query = "q(x) <- GraduateStudent(x), advisor(x, y)"
        errors = []

        def reader():
            try:
                for _ in range(30):
                    answers = system.answer(query, strategy="sat").answers
                    assert all(len(row) == 1 for row in answers)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def writer():
            try:
                for i in range(15):
                    system.insert_facts([("GraduateStudent", f"W{i}")])
                    system.delete_facts([("GraduateStudent", f"W{i}")])
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(3)]
        threads.append(threading.Thread(target=writer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []

    def test_consistency_checked_writes_roll_back(self, lubm_tbox):
        from repro.dllite.kb import InconsistentKBError

        system = OBDASystem(
            lubm_tbox,
            generate_abox("tiny", seed=4),
            check_consistency=True,
            materialize=True,
        )
        epoch = system.data_epoch
        # Person and Publication are disjoint in the LUBM∃ TBox.
        with pytest.raises(InconsistentKBError):
            system.insert_facts([("Person", "janus"), ("Publication", "janus")])
        assert system.data_epoch == epoch
        assert ("janus",) not in system.kb.abox.concept_facts("Person")
        assert system.kb.is_consistent()

    def test_duplicate_inputs_count_once(self, system):
        assert system.insert_facts(
            [("Professor", "dupe"), ("Professor", "dupe")]
        ) == 1
        assert system.delete_facts(
            [("Professor", "dupe"), ("Professor", "dupe")]
        ) == 1

    def test_write_refreshes_statistics(self, system):
        before = system.statistics.cardinality("Professor")
        system.insert_facts(
            [("Professor", f"Hire{i}") for i in range(7)]
        )
        assert system.statistics.cardinality("Professor") == before + 7
        system.delete_facts([("Professor", "Hire0")])
        assert system.statistics.cardinality("Professor") == before + 6

    def test_write_invalidates_cached_cover_costs(self, system):
        query = "q(x) <- Professor(x), worksFor(x, y), Department(y)"
        system.answer(query, strategy="gdl", use_plan_cache=False)
        system.insert_facts([("Department", "NewDept")])
        before = system.cost_cache.stats()["stale"]
        system.answer(query, strategy="gdl", use_plan_cache=False)
        assert system.cost_cache.stats()["stale"] > before

    def test_unknown_predicate_gets_a_table(self, system):
        assert system.insert_facts([("BrandNewConcept", "thing")]) == 1
        report = system.answer("q(x) <- BrandNewConcept(x)", strategy="ucq")
        assert report.answers == {("thing",)}

    @pytest.mark.parametrize("strategy", ["ucq", "croot", "sat"])
    def test_plan_over_unknown_constant_is_not_write_proof(
        self, system, strategy
    ):
        # "newprof" is not in the dictionary yet: the cached SQL froze it
        # as an impossible code, so the plan must NOT survive the write
        # that introduces the constant.
        query = 'q(x) <- advisor(x, "BrandNewProf")'
        assert system.answer(query, strategy=strategy).answers == set()
        system.insert_facts([("advisor", "someone", "BrandNewProf")])
        report = system.answer(query, strategy=strategy)
        assert report.answers == {("someone",)}, strategy

    def test_failed_write_mutates_nothing(self, lubm_tbox):
        system = OBDASystem(
            lubm_tbox, generate_abox("tiny", seed=9), layout="rdf"
        )
        epoch = system.data_epoch
        with pytest.raises(ValueError, match="simple layout"):
            system.insert_facts([("Professor", "ghost")])
        # The rejected write left no trace: the ABox, the epoch and a
        # retry all behave as if it never happened.
        assert ("ghost",) not in system.kb.abox.concept_facts("Professor")
        assert system.data_epoch == epoch
        with pytest.raises(ValueError, match="simple layout"):
            system.insert_facts([("Professor", "ghost")])


# ---------------------------------------------------------------------------
# answer_many error policy
# ---------------------------------------------------------------------------


class TestAnswerManyOnError:
    @pytest.fixture
    def system(self, lubm_tbox):
        with OBDASystem(lubm_tbox, generate_abox("tiny", seed=2)) as system:
            yield system

    def test_collect_isolates_the_failure(self, system):
        good = "q(x) <- Professor(x)"
        reports = system.answer_many(
            [good, good], strategy="gdl", on_error="collect"
        )
        assert all(not r.failed for r in reports)
        reports = system.answer_many(
            [good, "this is not a query", good],
            strategy="gdl",
            on_error="collect",
        )
        assert [r.failed for r in reports] == [False, True, False]
        assert reports[1].error is not None
        assert reports[1].answers == set()
        assert reports[0].answers == reports[2].answers != set()

    def test_collect_works_threaded(self, system):
        reports = system.answer_many(
            ["q(x) <- Professor(x)", "broken(", "q(x) <- Student(x)"],
            on_error="collect",
            max_workers=3,
        )
        assert [r.failed for r in reports] == [False, True, False]

    def test_raise_is_the_default(self, system):
        with pytest.raises(Exception):
            system.answer_many(["broken("])

    def test_rejects_unknown_policy(self, system):
        with pytest.raises(ValueError, match="on_error"):
            system.answer_many(["q(x) <- Professor(x)"], on_error="swallow")


# ---------------------------------------------------------------------------
# Chase truncation is loud
# ---------------------------------------------------------------------------


class TestChaseTruncation:
    def _cyclic_kb(self):
        manages = Role("manages")
        tbox = TBox(
            [
                ConceptInclusion(C("Boss"), Exists(manages)),
                ConceptInclusion(Exists(manages.inverted()), C("Boss")),
            ]
        )
        abox = ABox()
        abox.add_concept("Boss", "root")
        return KnowledgeBase(tbox, abox)

    def test_chase_reports_truncation(self):
        kb = self._cyclic_kb()
        store = chase(kb, max_generations=2)
        assert store.truncated

    def test_certain_answers_raises_on_truncation(self):
        kb = self._cyclic_kb()
        query_kb = kb
        from repro.dllite.parser import parse_query

        query = parse_query("q(x) <- Boss(x)")
        with pytest.raises(ChaseTruncatedError, match="max_generations=2"):
            certain_answers(query, query_kb, max_generations=2)
        # Opting in to the approximation still works.
        answers = certain_answers(
            query, query_kb, max_generations=2, on_truncation="ignore"
        )
        assert ("root",) in answers

    def test_acyclic_chase_is_not_truncated(self, lubm_tbox):
        kb = KnowledgeBase(lubm_tbox, generate_abox("tiny", seed=1))
        assert not chase(kb, max_generations=4).truncated

    def test_sat_refuses_truncated_saturation_and_auto_reroutes(self):
        kb = self._cyclic_kb()
        system = OBDASystem(
            kb.tbox, kb.abox, materialize=True, max_generations=1
        )
        assert system._saturator.truncated
        query = "q(x) <- Boss(x), manages(x, y)"
        # sat would under-approximate — it must refuse, like the oracle.
        with pytest.raises(ChaseTruncatedError):
            system.answer(query, strategy="sat")
        # auto must fall back to the (complete) reformulation side.
        report = system.answer(query, strategy="auto")
        assert report.choice.routing.routed_to == "gdl"
        assert report.answers == system.answer(query, strategy="gdl").answers
        assert report.answers == {("root",)}

    def test_cached_sat_plan_does_not_outlive_truncation(self):
        # A sat plan cached while the chase was complete must refuse to
        # run once a write makes the saturation truncated — the guard
        # sits on the execution path, not only at plan time.
        manages = Role("manages")
        tbox = TBox(
            [
                ConceptInclusion(C("Boss"), Exists(manages)),
                ConceptInclusion(Exists(manages.inverted()), C("Boss")),
            ]
        )
        system = OBDASystem(tbox, ABox(), materialize=True, max_generations=1)
        query = "q(x) <- Boss(x)"
        assert system.answer(query, strategy="sat").answers == set()
        system.insert_facts([("Boss", "root")])  # now truncated
        assert system._saturator.truncated
        with pytest.raises(ChaseTruncatedError):
            system.answer(query, strategy="sat")
        # ...and deleting the truncating fact un-truncates: the flag is
        # recomputed from live suppressions, never sticky.
        system.delete_facts([("Boss", "root")])
        assert not system._saturator.truncated
        assert system.answer(query, strategy="sat").answers == set()


# ---------------------------------------------------------------------------
# Randomized micro-KB property test: every strategy vs the oracle,
# including after a mixed insert/delete sequence
# ---------------------------------------------------------------------------

ALL_STRATEGIES = ("ucq", "croot", "gdl", "edl", "sat", "auto")

PROPERTY_QUERIES = [
    "q(x) <- GraduateStudent(x)",
    "q(x) <- Person(x), worksFor(x, y)",
    "q(x, y) <- advisor(x, y)",
    "q(x) <- Professor(x), teacherOf(x, y)",
    "q(x) <- Student(x), takesCourse(x, y), memberOf(x, d)",
]


class TestStrategyOracleProperty:
    @pytest.mark.parametrize("seed", [101, 202, 303])
    def test_all_strategies_match_oracle_under_churn(self, seed, lubm_tbox):
        rng = random.Random(seed)
        abox = generate_abox("tiny", seed=seed)
        with OBDASystem(lubm_tbox, abox, materialize=True) as system:

            def check(stage):
                for text in PROPERTY_QUERIES:
                    expected = _oracle_answers(
                        parse_query(text), lubm_tbox, system.kb.abox
                    )
                    for strategy in ALL_STRATEGIES:
                        got = system.answer(text, strategy=strategy).answers
                        assert got == expected, (
                            f"{strategy} diverged from oracle on {text!r} "
                            f"({stage}, seed={seed})"
                        )

            check("initial")
            pool = list(system.kb.abox.assertions())
            for step in range(12):
                action = rng.random()
                if action < 0.45 and len(pool) > 10:
                    victim = pool.pop(rng.randrange(len(pool)))
                    system.delete_facts([victim])
                elif action < 0.75:
                    fresh = RoleAssertion(
                        rng.choice(["advisor", "worksFor", "takesCourse"]),
                        f"Ind{seed}_{step}",
                        rng.choice(["Dept0_0", "NewTarget", "GradCourse0_0_1"]),
                    )
                    if system.insert_facts([fresh]):
                        pool.append(fresh)
                else:
                    fresh = ConceptAssertion(
                        rng.choice(
                            ["GraduateStudent", "Professor", "Lecturer"]
                        ),
                        f"Ind{seed}_{step}",
                    )
                    if system.insert_facts([fresh]):
                        pool.append(fresh)
            check("after mixed churn")
