"""The conformance matrix: every backend × layout × strategy.

Runs the shared suite in ``backend_conformance.py`` over both plain
backends and :class:`~repro.storage.sharded_backend.ShardedBackend` at
1, 2 and 8 shards (memory children) plus 2 sqlite-children shards. Each
backend is checked against an *independent* oracle implementation
(memory-family backends against SQLite and vice versa), and at the
system level every strategy must produce exactly the unsharded memory
system's answers.
"""

import pytest

from backend_conformance import (
    check_bulk_load_abort,
    check_bulk_load_equivalence,
    check_delete_count_semantics,
    check_dialect_translations,
    check_random_workloads,
    check_random_write_churn,
    check_replica_consistency,
    clone_abox,
)
from repro.engine.parallel import process_substrate_available
from repro.obda.system import OBDASystem
from repro.storage.layouts import RDFLayout, SimpleLayout
from repro.storage.memory_backend import MemoryBackend
from repro.storage.sharded_backend import ShardedBackend
from repro.storage.sqlite_backend import SQLiteBackend

#: name -> (backend factory, independent oracle factory).
BACKENDS = {
    "memory": (MemoryBackend, SQLiteBackend),
    "sqlite": (SQLiteBackend, MemoryBackend),
    "sharded-memory-1": (lambda: ShardedBackend(1), SQLiteBackend),
    "sharded-memory-2": (lambda: ShardedBackend(2), SQLiteBackend),
    "sharded-memory-8": (lambda: ShardedBackend(8), SQLiteBackend),
    "sharded-sqlite-2": (
        lambda: ShardedBackend(2, child="sqlite"),
        MemoryBackend,
    ),
}

if process_substrate_available():
    # Process-substrate legs: each shard lives in its own worker
    # process and answers return over shared-memory columnar exchange.
    BACKENDS["sharded-memory-2-process"] = (
        lambda: ShardedBackend(2, substrate="process"),
        SQLiteBackend,
    )
    BACKENDS["sharded-sqlite-2-process"] = (
        lambda: ShardedBackend(2, child="sqlite", substrate="process"),
        MemoryBackend,
    )

LAYOUTS = {
    "simple": SimpleLayout,
    "rdf": lambda: RDFLayout(width=4),
}

#: Strategies exercised at the system level (edl equals gdl's contract
#: and is much slower; it keeps its own dedicated tests).
STRATEGIES = ("ucq", "croot", "gdl", "sat", "auto")


@pytest.fixture
def example_abox(example1_abox):
    example1_abox.add_concept("PhDStudent", "Damian")
    example1_abox.add_concept("Researcher", "Ioana")
    return example1_abox


@pytest.mark.parametrize("backend_name", sorted(BACKENDS))
@pytest.mark.parametrize("seed", range(3))
def test_random_workloads(backend_name, seed):
    factory, oracle = BACKENDS[backend_name]
    check_random_workloads(factory, oracle, 1000 + seed)


@pytest.mark.parametrize("shards", (2, 8))
@pytest.mark.parametrize("batch_size", (1, 2))
def test_sharded_small_batches(shards, batch_size):
    """Batch boundaries inside sharded children never change answers
    (the sharded counterpart of test_differential_small_batches)."""
    from repro.engine.operators import CostParameters

    check_random_workloads(
        lambda: ShardedBackend(
            shards,
            child_factory=lambda: MemoryBackend(
                cost_parameters=CostParameters(batch_size=batch_size)
            ),
        ),
        SQLiteBackend,
        77,
    )


@pytest.mark.parametrize("backend_name", sorted(BACKENDS))
@pytest.mark.parametrize("seed", range(2))
def test_random_write_churn(backend_name, seed):
    factory, oracle = BACKENDS[backend_name]
    check_random_write_churn(factory, oracle, 2000 + seed)


@pytest.mark.parametrize("backend_name", sorted(BACKENDS))
@pytest.mark.parametrize("seed", range(2))
def test_bulk_load_equivalence(backend_name, seed):
    factory, oracle = BACKENDS[backend_name]
    check_bulk_load_equivalence(factory, oracle, 3000 + seed)


@pytest.mark.parametrize("backend_name", sorted(BACKENDS))
def test_bulk_load_abort_recovery(backend_name):
    factory, oracle = BACKENDS[backend_name]
    check_bulk_load_abort(factory, oracle, 4000)


@pytest.mark.parametrize("backend_name", sorted(BACKENDS))
def test_delete_count_semantics(backend_name):
    factory, _oracle = BACKENDS[backend_name]
    check_delete_count_semantics(factory)


@pytest.mark.parametrize("backend_name", sorted(BACKENDS))
@pytest.mark.parametrize("layout_name", sorted(LAYOUTS))
def test_dialect_translations(
    backend_name, layout_name, example_abox, example1_tbox
):
    factory, _oracle = BACKENDS[backend_name]
    check_dialect_translations(
        factory, LAYOUTS[layout_name], example_abox, example1_tbox
    )


@pytest.mark.parametrize("backend_name", sorted(BACKENDS))
@pytest.mark.parametrize("layout_name", sorted(LAYOUTS))
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_strategy_conformance(
    backend_name, layout_name, strategy, example1_tbox, example_abox
):
    """Every strategy over every backend equals the plain memory system."""
    if layout_name == "rdf" and strategy in ("sat", "auto"):
        pytest.skip("materialization requires the simple layout")
    factory, _oracle = BACKENDS[backend_name]
    queries = [
        "q(x) <- PhDStudent(x)",
        "q(x) <- PhDStudent(x), worksWith(y, x)",
        "q(x) <- supervisedBy(Damian, x)",
        "q(x, y) <- worksWith(x, y), Researcher(y)",
    ]
    with OBDASystem(
        example1_tbox, example_abox, backend="memory", layout=layout_name
    ) as oracle, OBDASystem(
        example1_tbox,
        example_abox,
        backend=factory(),
        layout=layout_name,
    ) as system:
        for query in queries:
            expected = oracle.answer(query, strategy=strategy).answers
            assert (
                system.answer(query, strategy=strategy).answers == expected
            ), (backend_name, layout_name, strategy, query)


# ---------------------------------------------------------------------------
# Replicated serving: the session-consistency oracle over the matrix
# ---------------------------------------------------------------------------
#: name -> OBDASystem kwargs for the replica oracle's system under test.
REPLICA_SUBSTRATES = {
    "memory": {"backend": "memory"},
}

if process_substrate_available():
    REPLICA_SUBSTRATES["sharded-process"] = {
        "backend": "memory",
        "shards": 2,
        "executor": "process",
    }


@pytest.mark.parametrize("substrate", sorted(REPLICA_SUBSTRATES))
@pytest.mark.parametrize("replicas", (1, 2, 4))
def test_replica_session_consistency(substrate, replicas):
    """Every answer observed with token t equals the sequential oracle
    at exactly its reported epoch >= t — across replica counts and
    execution substrates."""
    kwargs = REPLICA_SUBSTRATES[substrate]
    # Process legs fork 2 workers per replica per system; keep the
    # script short so the matrix stays tier-1 fast.
    writes = 6 if substrate == "sharded-process" else 10
    check_replica_consistency(
        lambda tbox, abox: OBDASystem(
            tbox, abox, replicas=replicas, **kwargs
        ),
        seed=5000 + replicas,
        writes=writes,
        readers=2 if substrate == "sharded-process" else 3,
    )


@pytest.mark.parametrize("replicas", (2, 4))
def test_replica_session_consistency_under_chaos(replicas, monkeypatch):
    """The oracle holds under seeded replica kills and injected lag:
    crashed replicas heal from the replication log and lagging replicas
    either catch up within the token wait or are routed around —
    answers never diverge and tokens are never violated."""
    monkeypatch.setenv(
        "REPRO_FAULTS",
        "seed=11,replica_kill_p=0.2,replica_lag_p=0.5,replica_lag_ms=20",
    )
    check_replica_consistency(
        lambda tbox, abox: OBDASystem(tbox, abox, replicas=replicas),
        seed=6000 + replicas,
        writes=8,
        readers=3,
    )


def test_strategy_conformance_survives_writes(example1_tbox, example_abox):
    """Sharded answers track the oracle through the system write path."""
    queries = [
        "q(x) <- Researcher(x)",
        "q(x) <- PhDStudent(x), worksWith(y, x)",
    ]
    with OBDASystem(
        example1_tbox, clone_abox(example_abox), backend="memory"
    ) as oracle, OBDASystem(
        example1_tbox, clone_abox(example_abox), backend="memory", shards=3
    ) as system:
        for strategy in ("gdl", "sat"):
            for query in queries:
                assert (
                    system.answer(query, strategy=strategy).answers
                    == oracle.answer(query, strategy=strategy).answers
                )
        writes = [
            ("worksWith", "Zed", "Ioana"),
            ("PhDStudent", "Zed"),
        ]
        assert oracle.insert_facts(writes) == system.insert_facts(writes)
        assert oracle.delete_facts([("PhDStudent", "Damian")]) == (
            system.delete_facts([("PhDStudent", "Damian")])
        )
        for strategy in ("gdl", "sat", "auto"):
            for query in queries:
                assert (
                    system.answer(query, strategy=strategy).answers
                    == oracle.answer(query, strategy=strategy).answers
                ), (strategy, query)
