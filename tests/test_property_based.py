"""Property-based tests (hypothesis) for the core invariants.

* Theorem 1/3: cover-based JUCQ reformulations answer exactly like the
  UCQ reformulation, for random KBs, queries and safe/generalized covers;
* PerfectRef soundness & completeness against the chase oracle on the
  chase-terminating fragment (no existential right-hand sides);
* USCQ factorization is answer-preserving;
* containment is reflexive and transitive; minimization preserves
  equivalence; canonical keys are renaming-invariant;
* SQL translation is differential-correct across both backends.
"""

from __future__ import annotations

import random as stdlib_random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.covers.lattice import enumerate_safe_covers
from repro.covers.generalized import enumerate_generalized_covers
from repro.covers.reformulate import cover_based_reformulation
from repro.dllite.abox import ABox
from repro.dllite.axioms import ConceptInclusion, RoleInclusion
from repro.dllite.kb import KnowledgeBase
from repro.dllite.saturation import certain_answers
from repro.dllite.tbox import TBox
from repro.dllite.vocabulary import AtomicConcept, Exists, Role
from repro.queries.atoms import Atom, concept_atom, role_atom
from repro.queries.cq import CQ
from repro.queries.evaluate import evaluate_cq, evaluate_jucq, evaluate_ucq, evaluate_uscq
from repro.queries.homomorphism import is_contained_in
from repro.queries.minimize import minimize_cq, minimize_ucq
from repro.queries.substitution import Substitution
from repro.queries.terms import Constant, Variable
from repro.reformulation.perfectref import reformulate_to_ucq
from repro.reformulation.uscq import factorize_ucq

CONCEPTS = [f"A{i}" for i in range(4)]
ROLES = [f"r{i}" for i in range(3)]
INDIVIDUALS = [f"c{i}" for i in range(6)]
VARIABLES = [Variable(n) for n in ("x", "y", "z", "w")]

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------


def _basic_concepts():
    atoms = [AtomicConcept(c) for c in CONCEPTS]
    exists = [Exists(Role(r, inv)) for r in ROLES for inv in (False, True)]
    return st.sampled_from(atoms + exists)


def _signed_roles():
    return st.sampled_from([Role(r, inv) for r in ROLES for inv in (False, True)])


@st.composite
def tboxes(draw, allow_existentials: bool = True):
    axioms = []
    for _ in range(draw(st.integers(0, 6))):
        kind = draw(st.integers(0, 2))
        if kind == 0:
            lhs = draw(_basic_concepts())
            rhs = draw(_basic_concepts())
            if not allow_existentials and isinstance(rhs, Exists):
                rhs = AtomicConcept(draw(st.sampled_from(CONCEPTS)))
            if lhs != rhs:
                axioms.append(ConceptInclusion(lhs, rhs))
        elif kind == 1:
            lhs = draw(_signed_roles())
            rhs = draw(_signed_roles())
            if lhs.name != rhs.name:
                axioms.append(RoleInclusion(lhs, rhs))
        else:
            lhs = AtomicConcept(draw(st.sampled_from(CONCEPTS)))
            rhs = Exists(draw(_signed_roles()))
            if allow_existentials:
                axioms.append(ConceptInclusion(lhs, rhs))
    return TBox(axioms)


@st.composite
def aboxes(draw):
    abox = ABox()
    for _ in range(draw(st.integers(1, 10))):
        if draw(st.booleans()):
            abox.add_concept(
                draw(st.sampled_from(CONCEPTS)), draw(st.sampled_from(INDIVIDUALS))
            )
        else:
            abox.add_role(
                draw(st.sampled_from(ROLES)),
                draw(st.sampled_from(INDIVIDUALS)),
                draw(st.sampled_from(INDIVIDUALS)),
            )
    return abox


@st.composite
def connected_cqs(draw, max_atoms: int = 3):
    """Small connected CQs over the shared vocabulary."""
    atom_count = draw(st.integers(1, max_atoms))
    atoms = []
    used_vars = [VARIABLES[0]]
    for index in range(atom_count):
        # Connect each new atom through an already-used variable.
        anchor = draw(st.sampled_from(used_vars))
        fresh_candidates = [v for v in VARIABLES if v not in used_vars]
        other = draw(
            st.sampled_from(used_vars + fresh_candidates[:1])
            if fresh_candidates
            else st.sampled_from(used_vars)
        )
        if draw(st.booleans()):
            atoms.append(concept_atom(draw(st.sampled_from(CONCEPTS)), anchor))
        else:
            pair = (anchor, other) if draw(st.booleans()) else (other, anchor)
            atoms.append(role_atom(draw(st.sampled_from(ROLES)), *pair))
            if other not in used_vars:
                used_vars.append(other)
    body_vars = sorted({v for a in atoms for v in a.variables()})
    head = (body_vars[0],) if body_vars else ()
    return CQ(head=head, atoms=tuple(atoms))


COMMON_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ---------------------------------------------------------------------------
# Theorem 1 and 3
# ---------------------------------------------------------------------------


class TestCoverTheorems:
    @COMMON_SETTINGS
    @given(tboxes(), aboxes(), connected_cqs())
    def test_theorem1_safe_covers_preserve_answers(self, tbox, abox, query):
        facts = abox.fact_store()
        reference = evaluate_ucq(reformulate_to_ucq(query, tbox), facts)
        for cover in enumerate_safe_covers(query, tbox):
            jucq = cover_based_reformulation(cover, tbox)
            assert evaluate_jucq(jucq, facts) == reference

    @COMMON_SETTINGS
    @given(tboxes(), aboxes(), connected_cqs())
    def test_theorem3_generalized_covers_preserve_answers(
        self, tbox, abox, query
    ):
        facts = abox.fact_store()
        reference = evaluate_ucq(reformulate_to_ucq(query, tbox), facts)
        for cover in enumerate_generalized_covers(query, tbox, limit=8):
            jucq = cover_based_reformulation(cover, tbox)
            assert evaluate_jucq(jucq, facts) == reference


# ---------------------------------------------------------------------------
# PerfectRef vs the chase (existential-free fragment: chase terminates)
# ---------------------------------------------------------------------------


class TestReformulationVsChase:
    @COMMON_SETTINGS
    @given(tboxes(allow_existentials=False), aboxes(), connected_cqs())
    def test_reformulation_equals_certain_answers(self, tbox, abox, query):
        kb = KnowledgeBase(tbox, abox)
        truth = certain_answers(query, kb, max_generations=6)
        ucq = reformulate_to_ucq(query, tbox)
        assert evaluate_ucq(ucq, abox.fact_store()) == truth

    @COMMON_SETTINGS
    @given(tboxes(), aboxes(), connected_cqs())
    def test_reformulation_sound_with_existentials(self, tbox, abox, query):
        # With existential axioms the bounded chase may under-approximate
        # (hence on_truncation="ignore"), but reformulation answers must
        # always be certain (soundness), so "<=" still has to hold.
        kb = KnowledgeBase(tbox, abox)
        truth = certain_answers(
            query, kb, max_generations=6, on_truncation="ignore"
        )
        ucq = reformulate_to_ucq(query, tbox)
        assert evaluate_ucq(ucq, abox.fact_store()) <= truth


# ---------------------------------------------------------------------------
# USCQ factorization
# ---------------------------------------------------------------------------


class TestUSCQFactorization:
    @COMMON_SETTINGS
    @given(tboxes(), aboxes(), connected_cqs())
    def test_factorization_preserves_answers(self, tbox, abox, query):
        facts = abox.fact_store()
        ucq = reformulate_to_ucq(query, tbox, minimize=True)
        uscq = factorize_ucq(ucq)
        assert evaluate_uscq(uscq, facts) == evaluate_ucq(ucq, facts)

    @COMMON_SETTINGS
    @given(tboxes(), connected_cqs())
    def test_factorization_expansion_equivalence(self, tbox, query):
        ucq = reformulate_to_ucq(query, tbox, minimize=True)
        uscq = factorize_ucq(ucq)
        expansion = uscq.expand()
        # Every expanded CQ is contained in some original disjunct and
        # vice versa (semantic equivalence of the two reformulations).
        for cq in expansion:
            assert any(is_contained_in(cq, d) for d in ucq.disjuncts)
        for disjunct in ucq.disjuncts:
            assert any(is_contained_in(disjunct, cq) for cq in expansion)


# ---------------------------------------------------------------------------
# Containment / minimization / canonicalization
# ---------------------------------------------------------------------------


class TestContainmentProperties:
    @COMMON_SETTINGS
    @given(connected_cqs())
    def test_containment_reflexive(self, query):
        assert is_contained_in(query, query)

    @COMMON_SETTINGS
    @given(connected_cqs(), connected_cqs(), connected_cqs())
    def test_containment_transitive(self, q1, q2, q3):
        if is_contained_in(q1, q2) and is_contained_in(q2, q3):
            assert is_contained_in(q1, q3)

    @COMMON_SETTINGS
    @given(connected_cqs(), aboxes())
    def test_minimize_cq_preserves_answers(self, query, abox):
        facts = abox.fact_store()
        assert evaluate_cq(minimize_cq(query), facts) == evaluate_cq(query, facts)

    @COMMON_SETTINGS
    @given(st.lists(connected_cqs(), min_size=1, max_size=4), aboxes())
    def test_minimize_ucq_preserves_answers(self, cqs, abox):
        arity = len(cqs[0].head)
        same_arity = [cq for cq in cqs if len(cq.head) == arity]
        facts = abox.fact_store()
        before = set()
        for cq in same_arity:
            before |= evaluate_cq(cq, facts)
        after = set()
        for cq in minimize_ucq(same_arity):
            after |= evaluate_cq(cq, facts)
        assert before == after

    @COMMON_SETTINGS
    @given(connected_cqs(), st.randoms(use_true_random=False))
    def test_canonical_key_invariant_under_renaming(self, query, rng):
        variables = sorted(query.variables())
        shuffled = list(variables)
        rng.shuffle(shuffled)
        fresh = [Variable(f"rn{i}") for i in range(len(variables))]
        renaming = Substitution(dict(zip(variables, fresh)))
        renamed = query.apply(renaming)
        assert renamed.canonical_key() == query.canonical_key()

    @COMMON_SETTINGS
    @given(connected_cqs(), st.permutations(range(6)))
    def test_canonical_key_invariant_under_atom_order(self, query, perm):
        indices = [i % len(query.atoms) for i in perm[: len(query.atoms)]]
        if sorted(set(indices)) != list(range(len(query.atoms))):
            indices = list(reversed(range(len(query.atoms))))
        reordered = query.with_atoms([query.atoms[i] for i in indices])
        assert reordered.canonical_key() == query.canonical_key()


# ---------------------------------------------------------------------------
# SQL differential correctness
# ---------------------------------------------------------------------------


class TestSQLDifferential:
    @COMMON_SETTINGS
    @given(tboxes(), aboxes(), connected_cqs(max_atoms=2))
    def test_backends_agree_with_reference(self, tbox, abox, query):
        from repro.sql.translator import SQLTranslator
        from repro.storage.layouts import SimpleLayout
        from repro.storage.memory_backend import MemoryBackend
        from repro.storage.sqlite_backend import SQLiteBackend

        facts = abox.fact_store()
        ucq = reformulate_to_ucq(query, tbox, minimize=True)
        reference = evaluate_ucq(ucq, facts)

        layout = SimpleLayout()
        data = layout.build(
            abox, tbox, extra_concepts=CONCEPTS, extra_roles=ROLES
        )
        sql = SQLTranslator(layout).translate(ucq)
        for backend in (SQLiteBackend(), MemoryBackend()):
            backend.load(data)
            rows = backend.execute(sql)
            decoded = {layout.dictionary.decode_row(r) for r in rows}
            if query.head:
                assert decoded == reference, backend.name
            else:
                assert bool(rows) == bool(reference), backend.name
