"""E9 — ablations of the design choices DESIGN.md calls out.

(a) UCQ minimization on/off — §2.3 argues minimization matters but is not
    sufficient; measured as translated-SQL size and evaluation time.
(b) Generalized covers on/off in GDL — §6.3 reports GDL picks a
    generalized cover always under the external model; disabling enlarge
    moves must never *improve* the chosen cover's estimated cost.
(c) Cost estimator: ext vs RDBMS — the two modes of Figures 2/3; both
    must produce correct (identical-answer) reformulations.
(d) JUCQ vs JUSCQ for the root cover — the [33]-style factorized dialect.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import ExperimentResult, evaluation_experiment
from repro.cost.estimators import ExternalCoverCost
from repro.cost.model import ExternalCostModel
from repro.cost.statistics import DataStatistics
from repro.obda.system import OBDASystem
from repro.optimizer.gdl import gdl_search

ABLATION_QUERIES = ("Q2", "Q9", "Q8", "Q12")


def test_ablation_minimization(benchmark, tbox, abox_15m, queries):
    """(a) minimization shrinks the SQL without changing answers.

    Also reproduces the paper's headline failure mode ("picking the wrong
    reformulation may cause the RDBMS simply to fail evaluating it"): the
    *unminimized* UCQ of Q3 has over 500 disjuncts, exceeding SQLite's
    compound-SELECT term limit — the engine refuses the statement outright,
    while the minimized equivalent runs fine.
    """
    system = OBDASystem(tbox, abox_15m, backend="sqlite")

    # The engine-failure reproduction (Q3: 505 raw disjuncts > SQLite's
    # 500-term compound SELECT limit).
    import sqlite3

    raw_q3 = system.reformulate(queries["Q3"], strategy="ucq", minimize=False)
    with pytest.raises(sqlite3.OperationalError, match="too many terms"):
        system.backend.execute(raw_q3.sql)
    minimized_q3 = system.reformulate(queries["Q3"], strategy="ucq", minimize=True)
    assert system.execute_choice(queries["Q3"], minimized_q3)

    def run():
        result = ExperimentResult("Ablation: UCQ minimization on/off")
        for name in ABLATION_QUERIES:
            query = queries[name]
            raw = system.reformulate(query, strategy="ucq", minimize=False)
            minimized = system.reformulate(query, strategy="ucq", minimize=True)
            raw_answers = system.execute_choice(query, raw)
            min_answers = system.execute_choice(query, minimized)
            assert raw_answers == min_answers, name
            result.rows.append(
                {
                    "query": name,
                    "raw_sql_chars": len(raw.sql),
                    "minimized_sql_chars": len(minimized.sql),
                    "shrink_factor": round(len(raw.sql) / len(minimized.sql), 1),
                }
            )
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(result.table())
    assert all(row["shrink_factor"] >= 1.0 for row in result.rows)
    assert any(row["shrink_factor"] >= 3.0 for row in result.rows)


def test_ablation_generalized_covers(benchmark, tbox, abox_15m, queries):
    """(b) the Gq space never hurts and usually helps the chosen cost."""
    statistics = DataStatistics.from_abox(abox_15m)
    model = ExternalCostModel(statistics)

    def run():
        result = ExperimentResult("Ablation: generalized covers on/off in GDL")
        for name, query in queries.items():
            with_gq = gdl_search(query, tbox, ExternalCoverCost(tbox, model))
            without_gq = gdl_search(
                query,
                tbox,
                ExternalCoverCost(tbox, model),
                enable_generalized=False,
            )
            result.rows.append(
                {
                    "query": name,
                    "cost_with_gq": round(with_gq.cost, 1),
                    "cost_without_gq": round(without_gq.cost, 1),
                    "picked_generalized": with_gq.picked_generalized(),
                }
            )
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(result.table())
    for row in result.rows:
        assert row["cost_with_gq"] <= row["cost_without_gq"] * 1.001, row
    picked = sum(1 for row in result.rows if row["picked_generalized"])
    # §6.3: the paper reports generalized covers chosen "always" under its
    # external model and "about half of the time" under the RDBMS one.
    # Our workload/model lands in the latter regime (3 of the 13 queries
    # have single-fragment root covers and are structurally plain; on
    # several others the union move is genuinely cheaper) — documented as
    # a deviation in EXPERIMENTS.md. Shape criterion: a meaningful share
    # of queries must pick a generalized cover.
    assert picked >= 4, f"GDL picked generalized covers on only {picked}/13"
    benchmark.extra_info["picked_generalized"] = picked


def test_ablation_cost_estimators(benchmark, tbox, abox_15m, queries):
    """(c) ext vs RDBMS estimators both yield correct reformulations."""
    system = OBDASystem(tbox, abox_15m, backend="memory")

    def run():
        result = ExperimentResult("Ablation: ext vs RDBMS cost estimation")
        for name in ABLATION_QUERIES:
            query = queries[name]
            # Drop the shared fragment cache between the two modes: this
            # ablation compares the *cold* optimization cost of each
            # estimator, so the rdbms run must not inherit the ext run's
            # reformulated fragments.
            system.reformulation_cache.clear()
            ext = system.answer(query, strategy="gdl", cost="ext")
            system.reformulation_cache.clear()
            rdbms = system.answer(query, strategy="gdl", cost="rdbms")
            assert ext.answers == rdbms.answers, name
            result.rows.append(
                {
                    "query": name,
                    "ext_eval_ms": round(ext.execution_seconds * 1000, 2),
                    "rdbms_eval_ms": round(rdbms.execution_seconds * 1000, 2),
                    "ext_opt_ms": round(ext.choice.reformulation_seconds * 1000, 1),
                    "rdbms_opt_ms": round(
                        rdbms.choice.reformulation_seconds * 1000, 1
                    ),
                }
            )
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(result.table())
    # The paper: RDBMS estimates cost more to obtain (JDBC round trips /
    # SQL planning); here too the rdbms path must not be cheaper to run.
    total_ext = sum(row["ext_opt_ms"] for row in result.rows)
    total_rdbms = sum(row["rdbms_opt_ms"] for row in result.rows)
    assert total_rdbms >= total_ext * 0.5


def test_ablation_juscq(benchmark, tbox, abox_15m, queries):
    """(d) JUSCQ (factorized) vs JUCQ reformulations of the root cover."""
    system = OBDASystem(tbox, abox_15m, backend="memory")

    def run():
        result = ExperimentResult("Ablation: JUCQ vs JUSCQ (root cover)")
        for name in ABLATION_QUERIES:
            query = queries[name]
            jucq = system.answer(query, strategy="croot", use_uscq=False)
            juscq = system.answer(query, strategy="croot", use_uscq=True)
            assert jucq.answers == juscq.answers, name
            result.rows.append(
                {
                    "query": name,
                    "jucq_sql_chars": len(jucq.choice.sql),
                    "juscq_sql_chars": len(juscq.choice.sql),
                    "jucq_eval_ms": round(jucq.execution_seconds * 1000, 2),
                    "juscq_eval_ms": round(juscq.execution_seconds * 1000, 2),
                }
            )
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(result.table())
    # Factorization only pays off when unions share structure; at minimum
    # it must preserve answers (asserted above) and produce valid SQL.
    assert all(row["juscq_sql_chars"] > 0 for row in result.rows)
