"""Replicated serving: read throughput at 1 vs 4 replicas under writes.

Serves the Fig 3 workload through the replica router (``replicas=N``
on :class:`~repro.obda.system.OBDASystem`) while a writer thread
trickles small fact batches through the primary — the mixed
serve-while-ingesting regime the serving tier exists for. Per-replica
admission is pinned to one in-flight query so the replica count *is*
the serving capacity, and reads run at ``min_epoch=0`` (throughput
mode: any replica, no token wait). Records into ``BENCH_engine.json``
(``extras.replica_serving``):

* batch wall clock at 1 vs 4 replicas (warm plans, min-of-N);
* router counters (executions, sheds) and post-quiesce replica lag.

Correctness is asserted unconditionally: both replicated systems must
return exactly the answers of an unreplicated reference — before the
trickle, and again after it with a read-your-writes token covering
every trickled fact. The >=2x wall-clock assertion is gated exactly
like the other thread benchmarks: at least 4 CPUs and a Python build
whose threads run in parallel (replica reads are GIL-bound on the
in-process memory backend); elsewhere the ratio is recorded for the
report and the assertion is skipped with an explanation.
"""

from __future__ import annotations

import os
import sys
import threading
import time

from conftest import SCALE_15M

from repro.bench.generator import generate_abox
from repro.obda.system import OBDASystem

#: Each workload query repeated this many times per batch.
REPEATS = 2

#: Timed repetitions per configuration; the minimum is reported.
TIMING_ROUNDS = 2

REPLICAS = 4

#: Facts trickled through the primary per timed round.
TRICKLE_WRITES = 8

#: Pause between trickled writes — small enough that every timed batch
#: overlaps replication traffic, large enough not to saturate the log.
TRICKLE_PAUSE_S = 0.002


def _gil_enabled() -> bool:
    probe = getattr(sys, "_is_gil_enabled", None)
    return True if probe is None else bool(probe())


def _true_thread_parallelism() -> bool:
    return (os.cpu_count() or 1) >= REPLICAS and not _gil_enabled()


def _batch(queries):
    return [query for query in queries.values() for _ in range(REPEATS)]


def _trickle_facts(tag, round_index):
    """A deterministic per-round write script of fresh facts (every
    insert effective, so both systems see identical epoch sequences)."""
    return [
        ("GraduateStudent", f"Trickle_{tag}_{round_index}_{i}")
        for i in range(TRICKLE_WRITES)
    ]


def _time_batch_under_trickle(system, batch, tag, round_index):
    """One timed ``answer_many`` with a concurrent write trickle;
    returns (elapsed, reports) with the writer joined before return."""
    facts = _trickle_facts(tag, round_index)

    def trickle():
        for fact in facts:
            system.insert_facts([fact])
            time.sleep(TRICKLE_PAUSE_S)

    writer = threading.Thread(target=trickle, name="repro-bench-trickle")
    started = time.perf_counter()
    writer.start()
    reports = system.answer_many(
        batch,
        strategy="gdl",
        cost="ext",
        max_workers=REPLICAS,
        min_epoch=0,
    )
    elapsed = time.perf_counter() - started
    writer.join()
    return elapsed, reports


def _best_of(system, batch, tag):
    best = None
    for round_index in range(TIMING_ROUNDS):
        elapsed, reports = _time_batch_under_trickle(
            system, batch, tag, round_index
        )
        assert all(report.error is None for report in reports)
        best = elapsed if best is None else min(best, elapsed)
    return best


def test_replica_read_throughput_under_write_trickle(
    tbox, queries, engine_report
):
    """4 serving replicas vs 1, identical answers, writes in flight."""
    batch = _batch(queries)
    # Private ABoxes: the trickle mutates them (the session fixtures
    # must stay pristine for the other benchmark files). The generator
    # is deterministic, so all three systems start from the same data.
    reference = OBDASystem(tbox, generate_abox(SCALE_15M), backend="memory")
    single = OBDASystem(
        tbox,
        generate_abox(SCALE_15M),
        backend="memory",
        replicas=1,
        replica_max_in_flight=1,
    )
    fleet = OBDASystem(
        tbox,
        generate_abox(SCALE_15M),
        backend="memory",
        replicas=REPLICAS,
        replica_max_in_flight=1,
    )
    try:
        # Warm every plan and check byte-identical serving before any
        # write traffic: replicas must be invisible in the answers.
        expected = [
            report.answers
            for report in reference.answer_many(
                batch, strategy="gdl", cost="ext"
            )
        ]
        for system in (single, fleet):
            warmed = system.answer_many(batch, strategy="gdl", cost="ext")
            assert [report.answers for report in warmed] == expected

        wall_1r = _best_of(single, batch, "single")
        wall_4r = _best_of(fleet, batch, "fleet")

        # Quiesce: replay both systems' trickle into the reference and
        # compare at a read-your-writes token — every trickled fact must
        # be visible and the answers byte-identical again.
        for round_index in range(TIMING_ROUNDS):
            reference.insert_facts(_trickle_facts("single", round_index))
        expected_single = [
            report.answers
            for report in reference.answer_many(
                batch, strategy="gdl", cost="ext"
            )
        ]
        token = single.epoch_token()
        final = single.answer_many(
            batch, strategy="gdl", cost="ext", min_epoch=token
        )
        assert [report.answers for report in final] == expected_single
        assert all(report.epoch >= token for report in final)
        for round_index in range(TIMING_ROUNDS):
            reference.insert_facts(_trickle_facts("fleet", round_index))
        expected_fleet = [
            report.answers
            for report in reference.answer_many(
                batch, strategy="gdl", cost="ext"
            )
        ]
        token = fleet.epoch_token()
        final = fleet.answer_many(
            batch, strategy="gdl", cost="ext", min_epoch=token
        )
        assert [report.answers for report in final] == expected_fleet
        assert all(report.epoch >= token for report in final)

        telemetry = fleet.replica_set.telemetry()
        assert all(entry["alive"] for entry in telemetry["per_replica"])
        executions = sum(
            entry["executions"] for entry in telemetry["per_replica"]
        )
        speedup = wall_1r / max(wall_4r, 1e-9)
        asserted = _true_thread_parallelism()
        engine_report.extra(
            "replica_serving",
            {
                "replicas": REPLICAS,
                "batch_queries": len(batch),
                "trickle_writes_per_round": TRICKLE_WRITES,
                "batch_wall_s_1r": round(wall_1r, 4),
                "batch_wall_s_4r": round(wall_4r, 4),
                "speedup_4r_vs_1r": round(speedup, 2),
                "fleet_executions": executions,
                "fleet_max_lag_after_quiesce": fleet.replica_set.max_lag(),
                "cpus": os.cpu_count(),
                "gil": _gil_enabled(),
                "scaling_asserted": asserted,
            },
        )
        print(
            f"\nreplica serving batch of {len(batch)} under trickle: "
            f"1r={wall_1r * 1000:.1f}ms {REPLICAS}r={wall_4r * 1000:.1f}ms "
            f"speedup={speedup:.2f}x"
        )
        if asserted:
            assert speedup >= 2.0, (
                f"expected >=2x read throughput at {REPLICAS} replicas "
                f"on parallel-capable hardware, measured {speedup:.2f}x"
            )
        else:
            print(
                "(scaling assertion skipped: "
                f"cpus={os.cpu_count()}, gil={_gil_enabled()} — replica "
                "reads are Python threads over in-process backends here; "
                "numbers recorded)"
            )
    finally:
        reference.close()
        single.close()
        fleet.close()
