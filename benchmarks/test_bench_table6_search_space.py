"""E2 / E8 — Table 6: search-space sizes and GDL exploration, A3–A6.

Paper (Table 6):

    query                      A3   A4   A5     A6
    |Lq|                        2    7   71     93
    |Gq|                        4   67  5674  >20000
    Lq covers explored by GDL   2    5   11     18
    Gq covers explored by GDL   4   12   27     59

Shape criteria reproduced here: |Lq| grows with the atom count; |Gq|
explodes (the A6 enumeration is cut at the same 20,000-cover cap the paper
used) — making EDL impractical — while GDL explores only tens of covers,
growing mildly with query size.
"""

from __future__ import annotations

from repro.bench.harness import search_space_experiment
from repro.cost.statistics import DataStatistics

GENERALIZED_CAP = 20_000


def test_table6_search_space(benchmark, tbox, stars, abox_15m):
    statistics = DataStatistics.from_abox(abox_15m)
    result = benchmark.pedantic(
        lambda: search_space_experiment(
            tbox, stars, statistics, generalized_limit=GENERALIZED_CAP
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.table())

    rows = {row["query"]: row for row in result.rows}
    lq = [rows[f"A{i}"]["lq_size"] for i in range(3, 7)]
    assert lq == sorted(lq), "|Lq| grows with the atom count"

    def gq_value(cell) -> int:
        return int(str(cell).lstrip(">= "))

    gq = [gq_value(rows[f"A{i}"]["gq_size"]) for i in range(3, 7)]
    assert gq == sorted(gq), "|Gq| grows with the atom count"
    assert gq[-1] >= GENERALIZED_CAP, "A6's generalized space exceeds the cap"
    assert gq[-1] >= 100 * lq[-1], "|Gq| dwarfs |Lq| (EDL impractical)"

    for i in range(3, 7):
        explored = (
            rows[f"A{i}"]["gdl_safe_explored"]
            + rows[f"A{i}"]["gdl_generalized_explored"]
        )
        assert explored <= 300, "GDL explores tens of covers, not thousands"

    benchmark.extra_info["table6"] = {
        name: {k: str(v) for k, v in row.items()} for name, row in rows.items()
    }
