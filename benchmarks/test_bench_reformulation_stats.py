"""E1 — §2.3 / §6.1 workload statistics.

Paper: 13 CQs of 2–10 atoms (average 5.77); UCQ reformulations of 35–667
CQs (average 290.2); the minimal UCQ of Q9 is 145 CQs and "runs in 5665 ms
on DB2" before optimization.

Ours: the table printed below — 2–10 atoms (average 5.0), raw UCQ sizes
50–585 (average ≈253), minimal sizes 1–240. Shape criterion: two orders of
magnitude of spread, with 2-atom queries among the largest reformulations.
"""

from __future__ import annotations

from repro.bench.harness import reformulation_statistics


def test_reformulation_statistics(benchmark, tbox, queries):
    result = benchmark.pedantic(
        lambda: reformulation_statistics(tbox, queries),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.table())

    sizes = [row["ucq_size"] for row in result.rows]
    atoms = [row["atoms"] for row in result.rows]
    # Paper-shape assertions.
    assert len(result.rows) == 13
    assert min(atoms) == 2 and max(atoms) == 10
    assert max(sizes) / min(sizes) >= 10, "size spread must span >= 1 order"
    assert max(sizes) >= 300, "largest reformulations are in the hundreds"
    two_atom_sizes = [r["ucq_size"] for r in result.rows if r["atoms"] == 2]
    assert max(two_atom_sizes) >= 300, (
        "a 2-atom query yields one of the largest reformulations (paper Q11)"
    )
    for row in result.rows:
        assert row["minimal_ucq_size"] <= row["ucq_size"]

    benchmark.extra_info["ucq_sizes"] = {
        row["query"]: row["ucq_size"] for row in result.rows
    }
