"""Capture an engine benchmark baseline (raw Fig 3 evaluation rows).

Runs the Figure 3 MiniRDBMS sims at the requested scales and writes the
raw per-query rows in the format ``EngineBenchReport`` expects of a
baseline file (``{run_name: [rows]}``). CI's regression gate compares
every later ``BENCH_engine.json`` against these rows, so re-capture a
baseline only deliberately — on the commit whose engine you want future
speedups measured against::

    # the tiny-scale baseline the CI smoke job diffs against
    REPRO_BENCH_PAPER15M=tiny REPRO_BENCH_PAPER100M=tiny \
        PYTHONPATH=src python benchmarks/capture_baseline.py \
        benchmarks/baseline_engine_tiny.json

    # the default-scale baseline used by the full benchmark job
    PYTHONPATH=src python benchmarks/capture_baseline.py \
        benchmarks/baseline_engine.json
"""

from __future__ import annotations

import json
import os
import sys

from repro.bench.generator import generate_abox
from repro.bench.harness import DEFAULT_VARIANTS, evaluation_experiment
from repro.bench.lubm import lubm_exists_tbox
from repro.bench.queries import benchmark_queries
from repro.obda.system import OBDASystem

#: Same warm min-of-N protocol as the Fig 2/3 sims.
EVAL_REPEAT = 3

#: Row fields stored in the baseline (must stay a superset of what
#: ``EngineBenchReport._baseline_eval`` matches on).
FIELDS = ("query", "variant", "sql_chars", "eval_ms", "answers", "status")


def capture(path: str) -> None:
    """Run the simple-layout Fig 3 sims and write the baseline rows."""
    scale_15m = os.environ.get("REPRO_BENCH_PAPER15M", "small")
    scale_100m = os.environ.get("REPRO_BENCH_PAPER100M", "medium")
    tbox = lubm_exists_tbox()
    queries = benchmark_queries()
    runs = {}
    for run, scale in (
        ("fig3_simple_15m", scale_15m),
        ("fig3_simple_100m", scale_100m),
    ):
        system = OBDASystem(
            tbox, generate_abox(scale), backend="memory", layout="simple"
        )
        result = evaluation_experiment(
            system,
            queries,
            DEFAULT_VARIANTS,
            title=f"baseline {run} ({scale})",
            repeat=EVAL_REPEAT,
        )
        runs[run] = [
            {field: row.get(field) for field in FIELDS if field in row}
            for row in result.rows
        ]
        print(result.table())
    with open(path, "w") as handle:
        json.dump(runs, handle, indent=1)
    print(f"baseline written to {path}")


if __name__ == "__main__":
    capture(sys.argv[1] if len(sys.argv) > 1 else "benchmarks/baseline_engine_tiny.json")
