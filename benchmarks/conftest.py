"""Shared fixtures for the benchmark harness.

Scale mapping (see DESIGN.md §3): the paper's LUBM∃ 15M- and 100M-fact
ABoxes become the generator's ``small`` and ``medium`` scales — laptop-size
stand-ins whose *relative* effects (which reformulation wins, where
failures appear) match the paper. Override with::

    REPRO_BENCH_PAPER15M=medium REPRO_BENCH_PAPER100M=large \
        pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench.generator import generate_abox
from repro.bench.lubm import lubm_exists_tbox
from repro.bench.queries import benchmark_queries, star_queries
from repro.bench.report import EngineBenchReport

SCALE_15M = os.environ.get("REPRO_BENCH_PAPER15M", "small")
SCALE_100M = os.environ.get("REPRO_BENCH_PAPER100M", "medium")

#: Where the machine-readable engine benchmark report lands (CI uploads
#: it as an artifact). Baselines are recorded per scale
#: (``capture_baseline.py``): the default scales diff against
#: ``baseline_engine.json``, the tiny smoke scale against
#: ``baseline_engine_tiny.json``; any other override runs without a
#: baseline. ``check_engine_regressions.py`` turns the diff into a CI
#: gate.
BENCH_JSON = os.environ.get("REPRO_BENCH_JSON", "BENCH_engine.json")
_AT_DEFAULT_SCALES = SCALE_15M == "small" and SCALE_100M == "medium"
_AT_TINY_SCALES = SCALE_15M == "tiny" and SCALE_100M == "tiny"
if _AT_DEFAULT_SCALES:
    BASELINE_JSON = Path(__file__).parent / "baseline_engine.json"
elif _AT_TINY_SCALES:
    BASELINE_JSON = Path(__file__).parent / "baseline_engine_tiny.json"
else:
    BASELINE_JSON = None


@pytest.fixture(scope="session")
def tbox():
    return lubm_exists_tbox()


@pytest.fixture(scope="session")
def abox_15m():
    """The stand-in for the paper's LUBM∃ 15M ABox."""
    return generate_abox(SCALE_15M)


@pytest.fixture(scope="session")
def abox_100m():
    """The stand-in for the paper's LUBM∃ 100M ABox."""
    return generate_abox(SCALE_100M)


@pytest.fixture(scope="session")
def queries():
    return benchmark_queries()


@pytest.fixture(scope="session")
def stars():
    return star_queries()


@pytest.fixture(scope="session")
def engine_report():
    """Session-wide collector for the Fig 2/3 evaluation rows; writes
    ``BENCH_engine.json`` (timings, batch counts, speedup vs the recorded
    pre-PR baseline) at teardown."""
    report = EngineBenchReport(baseline_path=BASELINE_JSON)
    yield report
    written = report.write(BENCH_JSON)
    if written is not None:
        print(f"\nengine benchmark report written to {written}")
