"""Shared fixtures for the benchmark harness.

Scale mapping (see DESIGN.md §3): the paper's LUBM∃ 15M- and 100M-fact
ABoxes become the generator's ``small`` and ``medium`` scales — laptop-size
stand-ins whose *relative* effects (which reformulation wins, where
failures appear) match the paper. Override with::

    REPRO_BENCH_PAPER15M=medium REPRO_BENCH_PAPER100M=large \
        pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os

import pytest

from repro.bench.generator import generate_abox
from repro.bench.lubm import lubm_exists_tbox
from repro.bench.queries import benchmark_queries, star_queries

SCALE_15M = os.environ.get("REPRO_BENCH_PAPER15M", "small")
SCALE_100M = os.environ.get("REPRO_BENCH_PAPER100M", "medium")


@pytest.fixture(scope="session")
def tbox():
    return lubm_exists_tbox()


@pytest.fixture(scope="session")
def abox_15m():
    """The stand-in for the paper's LUBM∃ 15M ABox."""
    return generate_abox(SCALE_15M)


@pytest.fixture(scope="session")
def abox_100m():
    """The stand-in for the paper's LUBM∃ 100M ABox."""
    return generate_abox(SCALE_100M)


@pytest.fixture(scope="session")
def queries():
    return benchmark_queries()


@pytest.fixture(scope="session")
def stars():
    return star_queries()
