"""CI gate: diff ``BENCH_engine.json`` speedups against the baseline.

Usage (after the benchmark run that wrote the report)::

    python benchmarks/check_engine_regressions.py [BENCH_engine.json]

Fails (exit 1) loudly when:

* the report is missing or contains no runs;
* any run that has baseline coverage shows a geometric-mean speedup
  below the floor (``REPRO_BENCH_REGRESSION_FLOOR``, default 0.5 — i.e.
  a 2x slowdown against the recorded engine baseline, far outside CI
  timing noise);
* a run recorded rows but every row failed;
* a ``parallel_*`` / ``process_*`` / ``replica_*`` scaling block whose
  benchmark ran on scaling-capable hardware (it recorded
  ``scaling_asserted: true``) reports a speedup (``speedup_4w_vs_1w``
  for worker scaling, ``speedup_4r_vs_1r`` for replica scaling) below
  the scaling floor (``REPRO_BENCH_SCALING_FLOOR``, default 2.0).
  Blocks measured on hardware that cannot scale (one CPU, or a
  GIL-bound thread benchmark) carry ``scaling_asserted: false`` and are
  informational only.

Baselines are per-scale (``baseline_engine.json`` at the default
scales, ``baseline_engine_tiny.json`` at the tiny smoke scale — see
``conftest.py``); rows with no baseline counterpart (new runs, expected
"too long" failures) are informational only.
"""

from __future__ import annotations

import json
import os
import sys


def check(path: str) -> int:
    """Validate the report at *path*; returns a process exit code."""
    floor = float(os.environ.get("REPRO_BENCH_REGRESSION_FLOOR", "0.5"))
    if not os.path.exists(path):
        print(f"FAIL: no benchmark report at {path}")
        return 1
    with open(path) as handle:
        report = json.load(handle)
    runs = report.get("runs", {})
    if not runs:
        print(f"FAIL: {path} contains no benchmark runs")
        return 1
    failures = []
    for name, run in sorted(runs.items()):
        rows = run.get("rows", [])
        ok_rows = [row for row in rows if row.get("status") == "ok"]
        if rows and not ok_rows:
            failures.append(f"{name}: every row failed")
            continue
        geomean = run.get("geomean_speedup")
        if geomean is None:
            print(f"  {name}: {len(ok_rows)}/{len(rows)} rows ok, no baseline coverage")
            continue
        marker = "ok" if geomean >= floor else "REGRESSION"
        print(
            f"  {name}: geomean speedup vs baseline {geomean:.2f}x "
            f"(floor {floor:.2f}) {marker}"
        )
        if geomean < floor:
            failures.append(
                f"{name}: geomean speedup {geomean:.2f}x below floor {floor:.2f}x"
            )
    scaling_floor = float(
        os.environ.get("REPRO_BENCH_SCALING_FLOOR", "2.0")
    )
    extras = report.get("extras", {})
    # Overhead contracts priced by the bench suite: extras block name ->
    # (fraction key, human label). Each asserted block must keep its
    # measured fraction under the recorded ceiling.
    overhead_gates = {
        "obs_overhead": (
            "disabled_overhead_fraction", "disabled-tracing overhead",
        ),
        "fault_tolerance": (
            "supervision_overhead_fraction", "supervision overhead",
        ),
    }
    for name, payload in sorted(extras.items()):
        print(f"  extras.{name}: {payload}")
        if (
            name in overhead_gates
            and isinstance(payload, dict)
            and payload.get("overhead_asserted")
        ):
            key, label = overhead_gates[name]
            fraction = payload.get(key, 0.0)
            ceiling = payload.get("ceiling", 0.05)
            marker = "ok" if fraction < ceiling else "REGRESSION"
            print(
                f"    {label}: {fraction:.1%} "
                f"(ceiling {ceiling:.0%}) {marker}"
            )
            if fraction >= ceiling:
                failures.append(
                    f"extras.{name}: {label} {fraction:.1%} "
                    f"at or above the {ceiling:.0%} ceiling"
                )
            continue
        if not name.startswith(("parallel_", "process_", "replica_")):
            continue
        if not isinstance(payload, dict):
            continue
        speedup_key = next(
            (
                key
                for key in ("speedup_4w_vs_1w", "speedup_4r_vs_1r")
                if key in payload
            ),
            None,
        )
        if speedup_key is None:
            continue
        unit = "replicas" if speedup_key.endswith("_1r") else "workers"
        speedup = payload[speedup_key]
        if payload.get("scaling_asserted"):
            marker = "ok" if speedup >= scaling_floor else "REGRESSION"
            print(
                f"    scaling: {speedup:.2f}x at 4 {unit} "
                f"(floor {scaling_floor:.2f}) {marker}"
            )
            if speedup < scaling_floor:
                failures.append(
                    f"extras.{name}: {speedup_key} {speedup:.2f}x below "
                    f"scaling floor {scaling_floor:.2f}x on hardware that "
                    "asserted scaling"
                )
        else:
            print(
                f"    scaling: {speedup:.2f}x at 4 {unit} "
                "(recorded, not asserted on this hardware)"
            )
    if failures:
        print("FAIL:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    overall = report.get("geomean_speedup_vs_baseline")
    if overall is not None:
        print(f"overall geomean speedup vs baseline: {overall:.2f}x")
    print("engine benchmark regression check passed")
    return 0


if __name__ == "__main__":
    sys.exit(check(sys.argv[1] if len(sys.argv) > 1 else "BENCH_engine.json"))
