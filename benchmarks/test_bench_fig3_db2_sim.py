"""E5 / E6 — Figure 3: evaluation time on the commercial system
(MiniRDBMS standing in for DB2), simple AND RDF layouts, both scales.

Paper (Figure 3): on the simple layout the shape matches Figure 2 (GDL
wins, up to 36x over the UCQ at 100M, 4.85x on average); on the DB2RDF
layout reformulations are 1–4 orders of magnitude slower, and several
(the UCQ of Q9; four variants of Q10) FAIL with "the statement is too long
or too complex. Current SQL statement size is 2,247,118" — leading the
authors to conclude the RDF layout is unsuitable for reformulated queries.

Shape criteria: simple-layout GDL beats UCQ overall; every RDF-layout
evaluation is slower than its simple-layout counterpart; at the 100M
stand-in, at least one RDF-layout reformulation exceeds DB2's 2,000,000
character statement limit and is reported as failed.
"""

from __future__ import annotations

import math

import pytest

from repro.bench.harness import DEFAULT_VARIANTS, evaluation_experiment
from repro.obda.system import OBDASystem

#: On the RDF layout the paper stops at the cost-unaware variants for the
#: large dataset ("we gave up GDL on the RDF layout").
RDF_VARIANTS_SMALL = (
    ("UCQ", "ucq", None),
    ("Croot", "croot", None),
    ("GDL/RDBMS", "gdl", "rdbms"),
)
RDF_VARIANTS_MEDIUM = (("UCQ", "ucq", None), ("Croot", "croot", None))

#: DB2RDF provisions column pairs from the data; the larger dataset hashes
#: into a wider table, which widens every per-atom disjunction (this is the
#: regime where the paper's Q9/Q10 statements exceed DB2's limit).
RDF_WIDTH_SMALL = 8
RDF_WIDTH_MEDIUM = 16


def _geomean(values):
    values = [max(v, 0.01) for v in values]
    return math.exp(sum(math.log(v) for v in values) / len(values))


#: Warm min-of-N evaluation (statement cache + batch caches populated);
#: the recorded baseline in ``baseline_engine.json`` uses the same
#: protocol on the pre-vectorization engine.
EVAL_REPEAT = 3


def test_fig3_small(benchmark, tbox, abox_15m, queries, engine_report):
    """Figure 3 (top): simple + RDF layouts at the 15M stand-in."""

    def run():
        simple = OBDASystem(tbox, abox_15m, backend="memory", layout="simple")
        simple_result = evaluation_experiment(
            simple,
            queries,
            DEFAULT_VARIANTS,
            title="Figure 3 (top): MiniRDBMS, simple layout, 15M stand-in",
            repeat=EVAL_REPEAT,
        )
        rdf = OBDASystem(
            tbox,
            abox_15m,
            backend="memory",
            layout="rdf",
            rdf_width=RDF_WIDTH_SMALL,
        )
        rdf_result = evaluation_experiment(
            rdf,
            queries,
            RDF_VARIANTS_SMALL,
            title="Figure 3 (top): MiniRDBMS, RDF layout, 15M stand-in",
            repeat=EVAL_REPEAT,
        )
        return simple_result, rdf_result

    simple_result, rdf_result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(simple_result.table())
    print()
    print(rdf_result.table())

    simple_ms = {}
    for row in simple_result.rows:
        assert row["status"] == "ok", row
        simple_ms.setdefault(row["variant"], {})[row["query"]] = row["eval_ms"]
    assert _geomean(simple_ms["GDL/ext"].values()) <= _geomean(
        simple_ms["UCQ"].values()
    ) * 1.10

    # RDF layout: strictly worse than the simple layout for the UCQ.
    rdf_ucq = {
        row["query"]: row
        for row in rdf_result.rows
        if row["variant"] == "UCQ"
    }
    slower = sum(
        1
        for q, row in rdf_ucq.items()
        if row["status"] != "ok" or row["eval_ms"] >= simple_ms["UCQ"][q]
    )
    assert slower >= 10, "the RDF layout must be slower on nearly every query"

    benchmark.extra_info["simple_eval_ms"] = simple_ms
    engine_report.record("fig3_simple_15m", simple_result.rows)
    engine_report.record("fig3_rdf_15m", rdf_result.rows)


def test_fig3_medium(benchmark, tbox, abox_100m, queries, engine_report):
    """Figure 3 (bottom): the 100M stand-in, with statement-length failures."""

    def run():
        simple = OBDASystem(tbox, abox_100m, backend="memory", layout="simple")
        simple_result = evaluation_experiment(
            simple,
            queries,
            DEFAULT_VARIANTS,
            title="Figure 3 (bottom): MiniRDBMS, simple layout, 100M stand-in",
            repeat=EVAL_REPEAT,
        )
        rdf = OBDASystem(
            tbox,
            abox_100m,
            backend="memory",
            layout="rdf",
            rdf_width=RDF_WIDTH_MEDIUM,
        )
        rdf_result = evaluation_experiment(
            rdf,
            queries,
            RDF_VARIANTS_MEDIUM,
            title="Figure 3 (bottom): MiniRDBMS, RDF layout, 100M stand-in",
            repeat=EVAL_REPEAT,
        )
        return simple_result, rdf_result

    simple_result, rdf_result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(simple_result.table())
    print()
    print(rdf_result.table())

    for row in simple_result.rows:
        assert row["status"] == "ok", row

    statuses = [row["status"] for row in rdf_result.rows]
    too_long = [s for s in statuses if s.startswith("too long")]
    assert too_long, (
        "at the large scale some RDF-layout reformulation must exceed "
        "DB2's 2,000,000-character statement limit (paper: Q9/Q10)"
    )
    benchmark.extra_info["rdf_failures"] = too_long
    engine_report.record("fig3_simple_100m", simple_result.rows)
    engine_report.record("fig3_rdf_100m", rdf_result.rows)
