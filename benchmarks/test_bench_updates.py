"""The update workload: incremental saturation maintenance and routing.

Not a paper experiment — the serving-grade claims of the materialization
subsystem (see ``repro/materialize``) under churn:

* **incremental beats re-saturation** — maintaining the saturated store
  through a stream of small write batches (the delta chase on insert,
  delete/re-derive on delete) must be at least 5x faster than chasing the
  whole ABox from scratch after every batch, while producing an
  answer-equivalent store;
* **auto matches the best fixed strategy** — on a warm plan cache, the
  cost-routed ``auto`` strategy's per-query answer times track
  ``min(sat, gdl)`` over the workload (modulo timing noise);
* **writes never serve stale state** — after every batch the epoch has
  advanced and a cost-based plan cached before the write is recomputed,
  with answers identical to a freshly built system's.
"""

from __future__ import annotations

import random
import time

from conftest import SCALE_15M

from repro.bench.generator import generate_abox
from repro.bench.harness import ExperimentResult
from repro.dllite.abox import ConceptAssertion, RoleAssertion
from repro.materialize.saturator import Saturator
from repro.obda.system import OBDASystem

#: Write batches per benchmark run; each batch is a handful of facts —
#: the "small delta" regime incremental maintenance is built for.
BATCHES = 12

#: Queries used for the routing comparison (a mix of reformulation-heavy
#: and saturation-friendly shapes).
ROUTED_QUERIES = ("Q1", "Q2", "Q5", "Q9")


def _write_batches(rng, abox):
    """A deterministic churn script: small insert and delete batches."""
    pool = list(abox.assertions())
    batches = []
    for step in range(BATCHES):
        batch = []
        if step % 3 == 2:  # every third batch deletes
            for _ in range(2):
                batch.append(("delete", pool.pop(rng.randrange(len(pool)))))
        else:
            for i in range(3):
                if rng.random() < 0.5:
                    fresh = RoleAssertion(
                        rng.choice(["advisor", "worksFor", "takesCourse"]),
                        f"Churn{step}_{i}",
                        rng.choice(["Dept0_0", "Dept0_1", "GradCourse0_0_0"]),
                    )
                else:
                    fresh = ConceptAssertion(
                        rng.choice(["GraduateStudent", "Professor"]),
                        f"Churn{step}_{i}",
                    )
                batch.append(("insert", fresh))
                pool.append(fresh)
        batches.append(batch)
    return batches


def test_incremental_maintenance_beats_resaturation(benchmark, tbox):
    def run():
        rng = random.Random(2016)
        # A private ABox: the churn script mutates it, and the session
        # fixtures must stay pristine for the other benchmark files.
        abox = generate_abox(SCALE_15M)
        batches = _write_batches(rng, abox)

        # --- incremental: one saturator maintained through the churn ---
        saturator = Saturator(tbox, abox)
        saturator.saturate()
        applied = []  # (op, assertion) actually applied, for replay/undo
        started = time.perf_counter()
        for batch in batches:
            for op, assertion in batch:
                if op == "insert":
                    if assertion not in abox:
                        abox.add(assertion)
                        saturator.insert([assertion])
                        applied.append(("insert", assertion))
                else:
                    if abox.remove(assertion):
                        saturator.delete([assertion])
                        applied.append(("delete", assertion))
        incremental_seconds = time.perf_counter() - started
        incremental_store = {
            predicate: set(rows) for predicate, rows in saturator.store.items()
        }

        # --- baseline: full re-saturation after every batch -------------
        # (The ABox is already in its post-churn state; re-applying the
        # batches against a replayed ABox would double-count churn, so the
        # baseline chases the *final* ABox once per batch — the cheapest
        # possible full-rechase schedule, i.e. a conservative baseline.)
        resat = Saturator(tbox, abox)
        started = time.perf_counter()
        for _ in batches:
            resat.saturate()
        resaturation_seconds = time.perf_counter() - started

        # Same final state (up to null names): compare null-free facts.
        from repro.dllite.saturation import is_null

        def null_free(store):
            return {
                (predicate, row)
                for predicate, rows in store.items()
                for row in rows
                if not any(is_null(value) for value in row)
            }

        assert null_free(incremental_store) == null_free(resat.store)
        return incremental_seconds, resaturation_seconds, len(applied)

    incremental_seconds, resaturation_seconds, writes = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    speedup = resaturation_seconds / max(incremental_seconds, 1e-9)
    print()
    result = ExperimentResult("Incremental maintenance vs full re-saturation")
    result.rows.append(
        {
            "writes": writes,
            "batches": BATCHES,
            "incremental_ms": round(incremental_seconds * 1000, 2),
            "resaturation_ms": round(resaturation_seconds * 1000, 2),
            "speedup": round(speedup, 1),
        }
    )
    print(result.table())
    # Acceptance: >=5x on the small-delta workload. Only asserted when the
    # timed section is long enough to mean something — at tiny (CI smoke)
    # scale a single scheduler hiccup inside a sub-millisecond window
    # would fail the ratio with no code defect; the store-equality check
    # above is the blocking assertion there.
    if resaturation_seconds >= 0.05:
        assert speedup >= 5.0, (
            f"incremental maintenance must be >=5x faster than "
            f"re-saturation, got {speedup:.1f}x"
        )
    benchmark.extra_info["speedup"] = round(speedup, 1)


def test_auto_matches_best_fixed_strategy(benchmark, tbox, abox_15m, queries):
    system = OBDASystem(tbox, abox_15m, backend="sqlite", materialize=True)

    def timed(name, strategy):
        query = queries[name]
        system.answer(query, strategy=strategy)  # warm the plan cache
        started = time.perf_counter()
        report = system.answer(query, strategy=strategy)
        return time.perf_counter() - started, report

    def run():
        result = ExperimentResult("auto vs fixed strategies (warm plans)")
        totals = {"sat": 0.0, "gdl": 0.0, "auto": 0.0}
        for name in ROUTED_QUERIES:
            row = {"query": name}
            answers = {}
            for strategy in ("sat", "gdl", "auto"):
                seconds, report = timed(name, strategy)
                totals[strategy] += seconds
                answers[strategy] = report.answers
                row[f"{strategy}_ms"] = round(seconds * 1000, 2)
            assert answers["sat"] == answers["gdl"] == answers["auto"]
            result.rows.append(row)
        return result, totals

    result, totals = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(result.table())
    print(f"totals: { {k: round(v * 1000, 2) for k, v in totals.items()} } ms")
    best_fixed = min(totals["sat"], totals["gdl"])
    # Acceptance: auto tracks the best fixed strategy (generous noise
    # margin — these are sub-millisecond executions on laptop scale).
    # Ratio asserted only when the totals are big enough to be signal;
    # the answer-agreement asserts inside run() always block.
    if best_fixed >= 0.005:
        assert totals["auto"] <= best_fixed * 2.0, (
            f"auto={totals['auto']:.4f}s should track best fixed "
            f"{best_fixed:.4f}s"
        )
    benchmark.extra_info["totals_ms"] = {
        k: round(v * 1000, 2) for k, v in totals.items()
    }
    system.close()


def test_writes_invalidate_without_serving_stale_answers(
    benchmark, tbox, queries
):
    # A private ABox: insert_facts mutates it (session fixtures stay clean).
    system = OBDASystem(tbox, generate_abox(SCALE_15M), materialize=True)
    probe = queries["Q2"]

    def run():
        system.answer(probe, strategy="gdl")
        epochs = [system.data_epoch]
        stale_before = system.plan_cache.stats()["stale"]
        for i in range(5):
            system.insert_facts(
                [("Professor", f"Stale{i}"), ("worksFor", f"Stale{i}", "Dept0_0")]
            )
            report = system.answer(probe, strategy="gdl")
            # The pre-write plan must have been dropped, and the new
            # professor must be visible immediately.
            assert not report.plan_cache_hit
            assert (f"Stale{i}",) in report.answers
            epochs.append(system.data_epoch)
        assert epochs == sorted(set(epochs))  # strictly increasing
        return system.plan_cache.stats()["stale"] - stale_before

    stale = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"stale plans dropped during churn: {stale}")
    print(f"plan cache: {system.plan_cache.stats()}")
    print(f"cost cache: {system.cost_cache.stats()}")
    assert stale >= 5
    system.close()
