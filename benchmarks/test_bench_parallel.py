"""Parallel execution + concurrent serving scaling measurements.

Measures two things on the Fig 3 workload and records both into
``BENCH_engine.json`` (``extras.parallel_serving`` / ``extras.
parallel_engine``):

* **Concurrent serving** — ``answer_many`` over the same multi-query
  batch at 1 worker vs 4 workers on the shared serving executor;
* **Morsel-driven engine** — the same statements evaluated by the
  MiniRDBMS at 1 engine worker vs 4.

Correctness invariants (identical answers at every worker count, clean
admission accounting, the 1-worker configuration running the exact
serial code path) are asserted unconditionally.

The *wall-clock* scaling targets — >=2x batch speedup at 4 workers, and
1-worker within 10% of serial — are asserted only where the hardware
can express them: at least 4 CPUs **and** a Python build whose threads
actually run in parallel (free-threaded, or a GIL-releasing backend).
On a stock-GIL CPython the measured speedup is recorded for the report
and the assertion is skipped with an explanation — asserting it there
would test the interpreter, not the engine.
"""

from __future__ import annotations

import os
import sys
import time

import pytest

from repro.obda.system import OBDASystem

#: Each workload query repeated this many times per batch — the serving
#: regime, where plan-cache hits dominate and execution is the cost.
REPEATS = 3

#: Timed repetitions; the minimum is reported (warm steady state).
TIMING_ROUNDS = 3

WORKERS = 4


def _gil_enabled() -> bool:
    probe = getattr(sys, "_is_gil_enabled", None)
    return True if probe is None else bool(probe())


def _true_thread_parallelism() -> bool:
    return (os.cpu_count() or 1) >= WORKERS and not _gil_enabled()


def _batch(queries):
    return [query for query in queries.values() for _ in range(REPEATS)]


def _time_batch(system, batch, max_workers):
    best = None
    reports = None
    for _ in range(TIMING_ROUNDS):
        started = time.perf_counter()
        reports = system.answer_many(
            batch, strategy="gdl", cost="ext", max_workers=max_workers
        )
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, reports


def test_parallel_serving_scaling(tbox, abox_15m, queries, engine_report):
    """answer_many batches: 4 serving workers vs 1, identical answers."""
    system = OBDASystem(tbox, abox_15m, backend="memory", layout="simple")
    batch = _batch(queries)
    # Warm every plan once so both configurations measure serving, not
    # one-off cover search.
    system.answer_many(batch, strategy="gdl", cost="ext")

    serial_s, serial_reports = _time_batch(system, batch, max_workers=1)
    parallel_s, parallel_reports = _time_batch(system, batch, max_workers=WORKERS)

    assert [r.answers for r in serial_reports] == [
        r.answers for r in parallel_reports
    ], "concurrent dispatch must return exactly the sequential answers"
    admission = system.last_batch_stats["admission"]
    assert admission["admitted"] == len(batch)
    assert admission["in_flight"] == 0

    speedup = serial_s / max(parallel_s, 1e-9)
    engine_report.extra(
        "parallel_serving",
        {
            "workers": WORKERS,
            "batch_queries": len(batch),
            "batch_wall_s_1w": round(serial_s, 4),
            "batch_wall_s_4w": round(parallel_s, 4),
            "speedup_4w_vs_1w": round(speedup, 2),
            "cpus": os.cpu_count(),
            "gil": _gil_enabled(),
            "scaling_asserted": _true_thread_parallelism(),
        },
    )
    print(
        f"\nanswer_many batch of {len(batch)}: 1w={serial_s * 1000:.1f}ms "
        f"{WORKERS}w={parallel_s * 1000:.1f}ms speedup={speedup:.2f}x"
    )
    if _true_thread_parallelism():
        assert speedup >= 2.0, (
            f"expected >=2x at {WORKERS} workers on parallel-capable "
            f"hardware, measured {speedup:.2f}x"
        )
    else:
        print(
            "(scaling assertion skipped: "
            f"cpus={os.cpu_count()}, gil={_gil_enabled()} — threads cannot "
            "run Python pipelines in parallel here; numbers recorded)"
        )
    system.close()


def test_parallel_engine_scaling(tbox, abox_15m, queries, engine_report):
    """Morsel-driven MiniRDBMS: 4 engine workers vs 1 on the workload."""
    serial = OBDASystem(tbox, abox_15m, backend="memory", layout="simple")
    parallel = OBDASystem(
        tbox, abox_15m, backend="memory", layout="simple",
        engine_workers=WORKERS,
    )
    assert serial.backend.db.workers == 1
    assert parallel.backend.db.workers == WORKERS

    rows = []
    serial_total = 0.0
    parallel_total = 0.0
    for name, query in queries.items():
        choice_s = serial.reformulate(query, strategy="gdl", cost="ext")
        choice_p = parallel.reformulate(query, strategy="gdl", cost="ext")

        def best_of(system, query, choice):
            answers = system.execute_choice(query, choice)
            elapsed = None
            for _ in range(TIMING_ROUNDS):
                started = time.perf_counter()
                again = system.execute_choice(query, choice)
                took = time.perf_counter() - started
                elapsed = took if elapsed is None else min(elapsed, took)
                assert again == answers
            return answers, elapsed

        answers_s, eval_s = best_of(serial, query, choice_s)
        answers_p, eval_p = best_of(parallel, query, choice_p)
        assert answers_p == answers_s, name
        execution = parallel.backend.last_execution
        assert execution.workers == WORKERS
        serial_total += eval_s
        parallel_total += eval_p
        rows.append(
            {
                "query": name,
                "variant": f"engine@{WORKERS}w",
                "eval_ms": round(eval_p * 1000, 3),
                "answers": len(answers_p),
                "batches": execution.batches,
                "status": "ok",
            }
        )
    engine_report.record("parallel_engine_4w", rows)
    speedup = serial_total / max(parallel_total, 1e-9)
    engine_report.extra(
        "parallel_engine",
        {
            "workers": WORKERS,
            "workload_wall_s_1w": round(serial_total, 4),
            "workload_wall_s_4w": round(parallel_total, 4),
            "speedup_4w_vs_1w": round(speedup, 2),
            "cpus": os.cpu_count(),
            "gil": _gil_enabled(),
            "scaling_asserted": _true_thread_parallelism(),
        },
    )
    print(
        f"\nengine workload: 1w={serial_total * 1000:.1f}ms "
        f"{WORKERS}w={parallel_total * 1000:.1f}ms speedup={speedup:.2f}x"
    )
    if _true_thread_parallelism():
        assert speedup >= 2.0
    serial.close()
    parallel.close()


def test_workers_1_is_the_serial_code_path(tbox, abox_15m, queries):
    """The no-sequential-regression guarantee, asserted structurally.

    A 1-worker engine takes the identical serial executor path as the
    pre-parallelism engine (same plans, same batch counts, no pool, no
    partitioning), so its per-query cost cannot regress beyond noise —
    the timing side of this is enforced by the baseline diff in
    ``check_engine_regressions.py``.
    """
    default = OBDASystem(tbox, abox_15m, backend="memory", layout="simple")
    explicit = OBDASystem(
        tbox, abox_15m, backend="memory", layout="simple", engine_workers=1
    )
    assert default.backend.db.workers == 1
    for name, query in list(queries.items())[:4]:
        report_a = default.answer(query, strategy="ucq")
        report_b = explicit.answer(query, strategy="ucq")
        assert report_a.answers == report_b.answers
        stats_a = default.backend.last_execution
        stats_b = explicit.backend.last_execution
        # Same serial path: identical batch/row/morsel accounting.
        assert (stats_a.batches, stats_a.rows, stats_a.morsels) == (
            stats_b.batches,
            stats_b.rows,
            stats_b.morsels,
        ), name
        assert stats_b.workers == 1 and stats_b.per_worker == []
    default.close()
    explicit.close()


@pytest.mark.skipif(
    not _true_thread_parallelism(),
    reason="needs >=4 CPUs and a free-threaded Python to measure "
    "wall-clock thread scaling",
)
def test_sequential_within_10pct_of_prior_engine(tbox, abox_15m, queries):
    """On parallel-capable hardware, also pin the 1-worker wall clock to
    the serial engine's (the structural guarantee, measured)."""
    system = OBDASystem(tbox, abox_15m, backend="memory", layout="simple")
    batch = _batch(queries)
    system.answer_many(batch, strategy="gdl", cost="ext")
    serial_s, _ = _time_batch(system, batch, max_workers=1)
    direct_started = time.perf_counter()
    for query in batch:
        system.answer(query, strategy="gdl", cost="ext")
    direct_s = time.perf_counter() - direct_started
    assert serial_s <= direct_s * 1.10
    system.close()
