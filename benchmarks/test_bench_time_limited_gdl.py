"""E7 — §6.4: time-limited GDL.

Paper: GDL's running time is dominated by cost estimation (search logic
<= 24 ms; estimation up to ~100 ms with the external model, up to tens of
seconds through JDBC). A GDL stopped after 20 ms finds covers whose
running times are "quite close" to the full run's — interesting covers are
found early, so time-limited GDL is a robust, modest-overhead optimizer.

Shape criteria: for every query, 20 ms-limited GDL returns a cover whose
*estimated* cost is within a small factor of the full GDL's; the full GDL
itself completes in well under a second per query with the external model.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult
from repro.cost.estimators import ExternalCoverCost
from repro.cost.model import ExternalCostModel
from repro.cost.statistics import DataStatistics
from repro.optimizer.gdl import gdl_search

#: The paper cuts GDL at 20 ms on its Java implementation; pure Python
#: pays roughly a 2-3x interpreter tax on the same search, so the
#: equivalent budget here is 50 ms (the shape criterion — near-full
#: quality at a fraction of the time — is budget-calibrated, not absolute).
TIME_BUDGET_SECONDS = 0.050


def test_time_limited_gdl(benchmark, tbox, abox_15m, queries):
    statistics = DataStatistics.from_abox(abox_15m)
    model = ExternalCostModel(statistics)

    def run():
        result = ExperimentResult("Time-limited GDL (20 ms) vs full GDL (§6.4)")
        for name, query in queries.items():
            full = gdl_search(
                query, tbox, ExternalCoverCost(tbox, model)
            )
            limited = gdl_search(
                query,
                tbox,
                ExternalCoverCost(tbox, model),
                time_budget_seconds=TIME_BUDGET_SECONDS,
            )
            result.rows.append(
                {
                    "query": name,
                    "full_cost": round(full.cost, 1),
                    "limited_cost": round(limited.cost, 1),
                    "cost_ratio": round(limited.cost / max(full.cost, 1e-9), 2),
                    "full_ms": round(full.elapsed_seconds * 1000, 1),
                    "limited_ms": round(limited.elapsed_seconds * 1000, 1),
                    "full_explored": full.total_covers_explored,
                    "limited_explored": limited.total_covers_explored,
                }
            )
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(result.table())

    ratios = [row["cost_ratio"] for row in result.rows]
    close = sum(1 for r in ratios if r <= 2.0)
    # How many queries finish their first greedy sweep inside the budget
    # depends on machine load; the robust invariants are: a majority of
    # near-full-quality covers, bounded worst-case degradation, and a
    # search that never explores more than the full run.
    assert close >= 7, (
        "time-limited GDL must find near-full-quality covers on most queries"
    )
    assert max(ratios) <= 12.0, "no catastrophic cover under the budget"
    for row in result.rows:
        assert row["limited_explored"] <= row["full_explored"]
    for row in result.rows:
        assert row["limited_cost"] >= 0
    benchmark.extra_info["cost_ratios"] = {
        row["query"]: row["cost_ratio"] for row in result.rows
    }
