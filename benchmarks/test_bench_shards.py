"""Sharded storage measurements: scatter scaling and pruned probes.

Loads the Fig 3 workload's ABox into an unsharded MemoryBackend, a
1-shard and a 4-shard :class:`~repro.storage.sharded_backend.
ShardedBackend`, and records into ``BENCH_engine.json``
(``extras.sharding``):

* **scatter latency** — an unbound co-partitioned statement at 1 vs 4
  shards (the 1-shard configuration prices pure routing overhead);
* **pruned-probe latency** — the same table probed with a bound shard
  key, which must touch exactly one shard;
* **gather latency** — a non-co-partitioned join (warm coordinator).

Answers are asserted identical across all configurations; route
correctness (pruned touches 1 shard, scatter touches all) is asserted
unconditionally. Wall-clock ratios are recorded, not asserted — on a
stock-GIL CPython the scatter pool cannot parallelize the pure-Python
children (same honesty rule as ``test_bench_parallel.py``).
"""

from __future__ import annotations

import time

from repro.storage.layouts import SimpleLayout
from repro.storage.memory_backend import MemoryBackend
from repro.storage.sharded_backend import ShardedBackend

TIMING_ROUNDS = 5


def _best_of(backend, sql):
    best = None
    rows = None
    for _ in range(TIMING_ROUNDS):
        started = time.perf_counter()
        rows = backend.execute(sql)
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, rows


def test_shard_scaling(tbox, abox_15m, engine_report):
    """1-shard vs 4-shard scatter, pruned probes, and the gather path."""
    layout = SimpleLayout()
    data = layout.build(abox_15m, tbox)
    role = max(
        (spec for spec in data.tables if spec.name.startswith("r_") and spec.rows),
        key=lambda spec: len(spec.rows),
    )
    bound_code = role.rows[len(role.rows) // 2][0]

    scatter_sql = (
        f"SELECT DISTINCT a.s AS x FROM {role.name} a, {role.name} b "
        "WHERE a.s = b.s"
    )
    pruned_sql = f"SELECT a.o AS x FROM {role.name} a WHERE a.s = {bound_code}"
    gather_sql = (
        f"SELECT DISTINCT a.s AS x FROM {role.name} a, {role.name} b "
        "WHERE a.o = b.s"
    )

    backends = {
        "unsharded": MemoryBackend(),
        "shards1": ShardedBackend(1),
        "shards4": ShardedBackend(4),
    }
    timings = {}
    try:
        reference = {}
        for name, backend in backends.items():
            backend.load(data)
            for kind, sql in (
                ("scatter", scatter_sql),
                ("pruned", pruned_sql),
                ("gather", gather_sql),
            ):
                backend.execute(sql)  # warm (plan caches, gather copies)
                elapsed, rows = _best_of(backend, sql)
                timings[f"{kind}_{name}_ms"] = round(elapsed * 1000, 3)
                key = (kind, sql)
                if key not in reference:
                    reference[key] = sorted(rows)
                else:
                    assert sorted(rows) == reference[key], (name, kind)

        sharded = backends["shards4"]
        sharded.execute(pruned_sql)
        assert sharded.last_execution.route == "pruned"
        assert len(sharded.last_execution.shards_touched) == 1
        sharded.execute(scatter_sql)
        assert sharded.last_execution.route == "scatter"
        assert len(sharded.last_execution.shards_touched) == 4
        sharded.execute(gather_sql)
        assert sharded.last_execution.route == "gather"

        engine_report.extra(
            "sharding",
            {
                "table": role.name,
                "table_rows": len(role.rows),
                "shard_workers": sharded._parallel.workers,
                **timings,
                "pruned_speedup_vs_scatter_4sh": round(
                    timings["scatter_shards4_ms"]
                    / max(timings["pruned_shards4_ms"], 1e-6),
                    2,
                ),
            },
        )
        print(f"\nsharding timings on {role.name}: {timings}")
    finally:
        for backend in backends.values():
            backend.close()
