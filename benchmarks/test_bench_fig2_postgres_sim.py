"""E3 / E4 — Figure 2: evaluation time on the open-source system (SQLite
standing in for Postgres), simple layout, both dataset scales.

Paper (Figure 2): the plain UCQ reformulation is slow (up to an order of
magnitude worse than the best); the fixed Croot JUCQ is sometimes far
worse than the UCQ; GDL-selected covers are the fastest or tied for nearly
every query (up to 6.6x over the UCQ at 100M); on Postgres the external
("ext") cost model picks better covers than the RDBMS estimator for the
heaviest queries (Q9–Q11).

Shape criteria asserted: every variant returns identical answers; the
GDL/ext geometric-mean evaluation time beats the UCQ's; on the heaviest
queries GDL wins by a clear factor.
"""

from __future__ import annotations

import math

import pytest

from repro.bench.harness import DEFAULT_VARIANTS, evaluation_experiment
from repro.obda.system import OBDASystem

HEAVY_QUERIES = ("Q8", "Q10", "Q13")


def _geomean(values):
    values = [max(v, 0.01) for v in values]
    return math.exp(sum(math.log(v) for v in values) / len(values))


#: Warm min-of-N evaluation, matching the Fig 3 sims (the SQLite page
#: cache plays the role MiniRDBMS's statement/batch caches play there).
EVAL_REPEAT = 3


def _run_figure2(tbox, abox, queries, title):
    system = OBDASystem(tbox, abox, backend="sqlite", layout="simple")
    return evaluation_experiment(
        system, queries, DEFAULT_VARIANTS, title=title, repeat=EVAL_REPEAT
    )


def _check_shape(result):
    by_variant = {}
    for row in result.rows:
        assert row["status"] == "ok", row
        by_variant.setdefault(row["variant"], {})[row["query"]] = row["eval_ms"]

    ucq = by_variant["UCQ"]
    gdl_ext = by_variant["GDL/ext"]
    assert _geomean(gdl_ext.values()) <= _geomean(ucq.values()) * 1.10, (
        "GDL-selected reformulations must not lose to the UCQ overall"
    )
    heavy_wins = sum(
        1 for q in HEAVY_QUERIES if gdl_ext[q] <= ucq[q] * 1.05
    )
    assert heavy_wins >= 2, "GDL must win on the heavy queries"
    return by_variant


def test_fig2_small(benchmark, tbox, abox_15m, queries, engine_report):
    """Figure 2 (top): LUBM∃ 15M stand-in."""
    result = benchmark.pedantic(
        lambda: _run_figure2(
            tbox, abox_15m, queries, "Figure 2 (top): SQLite, simple, 15M stand-in"
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.table())
    by_variant = _check_shape(result)
    benchmark.extra_info["eval_ms"] = by_variant
    engine_report.record("fig2_sqlite_15m", result.rows)


def test_fig2_medium(benchmark, tbox, abox_100m, queries, engine_report):
    """Figure 2 (bottom): LUBM∃ 100M stand-in."""
    result = benchmark.pedantic(
        lambda: _run_figure2(
            tbox,
            abox_100m,
            queries,
            "Figure 2 (bottom): SQLite, simple, 100M stand-in",
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.table())
    by_variant = _check_shape(result)
    benchmark.extra_info["eval_ms"] = by_variant
    engine_report.record("fig2_sqlite_100m", result.rows)
