"""Tracing overhead: the disabled path must cost under 5% per query.

The observability contract (docs/OBSERVABILITY.md) is that **disabled**
tracing — the production default — adds under 5% to query latency. The
stack is instrumented unconditionally, so the off path is a fixed set
of :data:`~repro.obs.trace.NO_SPAN` operations per answer: contextvar
reads, no-op ``child``/``set`` calls, ``enabled`` guards and no-op
``activate`` context managers.

This benchmark prices that contract from two directions:

* **enabled vs. disabled wall clock** (warm min-of-3 over a 40-answer
  batch): the same workload answered with ``trace=True`` and
  ``trace=False``. The ratio is the cost of *enabled* tracing —
  recorded for information (building a span tree is allowed to cost
  real time; it is opt-in).
* **disabled instrumentation microbenchmark**: the off path cannot be
  compared against an uninstrumented build, so its cost is measured
  directly — time a generous overcount of the per-answer NO_SPAN
  operations and express it as a fraction of the measured untraced
  per-answer latency. This is the number the <5% contract (and the
  ``check_engine_regressions.py`` gate) applies to.

Both land in ``BENCH_engine.json`` under ``extras.obs_overhead``.
"""

from __future__ import annotations

import time

from repro.obda.system import OBDASystem
from repro.obs.trace import NO_SPAN, activate, current_span

TIMING_ROUNDS = 3

#: Answers per timed round — one answer is ~100µs; a batch keeps the
#: measurement comfortably above timer resolution.
ANSWERS_PER_ROUND = 40

#: Ceiling on the disabled-path overhead fraction (0.05 = the 5%
#: contract). Asserted here and re-checked by the regression gate.
DISABLED_OVERHEAD_CEILING = 0.05

#: Per-answer NO_SPAN operation budget priced by the microbenchmark. A
#: traced answer opens ~12 spans; the disabled path touches roughly one
#: contextvar read plus one no-op call per span site. 40 is a generous
#: overcount (sharded scatter adds one site per shard).
NOOP_OPS_PER_ANSWER = 40

#: Instrumentation points exercised by one microbenchmark loop body:
#: a contextvar read, a no-op ``child``, an ``enabled`` guard and an
#: ``activate`` enter/exit.
OPS_PER_LOOP_BODY = 5


def _time_answers(system, queries):
    best = None
    for _ in range(TIMING_ROUNDS):
        started = time.perf_counter()
        for query in queries:
            system.answer(query)
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best


def _noop_op_seconds(iterations: int = 200_000) -> float:
    """Measured cost of one disabled instrumentation point (min-of-3).

    The loop body exercises :data:`OPS_PER_LOOP_BODY` points; the
    per-point cost is the per-iteration time divided by that.
    """
    best = None
    for _ in range(TIMING_ROUNDS):
        started = time.perf_counter()
        for _ in range(iterations):
            span = current_span()
            child = span.child("x")
            if child.enabled:  # pragma: no cover - disabled path
                child.set(rows=1)
            with activate(child):
                pass
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    assert current_span() is NO_SPAN
    return best / iterations / OPS_PER_LOOP_BODY


def test_tracing_overhead(tbox, abox_15m, engine_report):
    """Price the disabled instrumentation path against the 5% contract
    and record the enabled-tracing ratio for information."""
    queries = [
        "q(x) <- worksFor(x, y)",
        "q(x) <- Professor(x)",
        "q(x, y) <- advisor(x, y)",
        "q(x) <- teacherOf(x, y)",
    ] * (ANSWERS_PER_ROUND // 4)

    def build(trace):
        system = OBDASystem(tbox, abox_15m, trace=trace)
        for query in queries[:4]:
            system.answer(query)  # warm plan cache + engine
        return system

    with build(trace=False) as off, build(trace=True) as on:
        off_wall = _time_answers(off, queries)
        on_wall = _time_answers(on, queries)
        assert off.answer(queries[0]).trace is None
        assert on.answer(queries[0]).trace is not None

    per_answer_untraced = off_wall / len(queries)
    disabled_cost = _noop_op_seconds() * NOOP_OPS_PER_ANSWER
    disabled_overhead = disabled_cost / max(per_answer_untraced, 1e-12)
    enabled_ratio = on_wall / max(off_wall, 1e-9)
    engine_report.extra(
        "obs_overhead",
        {
            "answers_per_round": len(queries),
            "timing_rounds": TIMING_ROUNDS,
            "wall_s_untraced": round(off_wall, 5),
            "wall_s_traced": round(on_wall, 5),
            "per_answer_untraced_us": round(per_answer_untraced * 1e6, 2),
            "disabled_cost_us": round(disabled_cost * 1e6, 3),
            "disabled_overhead_fraction": round(disabled_overhead, 5),
            "enabled_overhead_ratio": round(enabled_ratio, 4),
            "ceiling": DISABLED_OVERHEAD_CEILING,
            "overhead_asserted": True,
        },
    )
    assert disabled_overhead < DISABLED_OVERHEAD_CEILING, (
        f"disabled instrumentation costs {disabled_overhead:.1%} of an "
        f"untraced answer (ceiling {DISABLED_OVERHEAD_CEILING:.0%})"
    )
