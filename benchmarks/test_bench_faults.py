"""Supervision overhead: the no-faults path must cost under 5%.

The robustness contract (docs/ROBUSTNESS.md) is that worker
supervision — on by default for the process substrate — adds under 5%
to statement latency when nothing fails. On the healthy path the
:class:`~repro.storage.supervisor.SupervisedShardWorker` wrapper adds a
fixed set of operations per shard RPC: an RLock acquire, a liveness
check, deadline arithmetic and a ``try``/``except`` frame; no state is
copied and no extra process hops occur.

This benchmark prices that contract from two directions:

* **supervised vs. raw wall clock** (warm min-of-N over a scatter
  batch): the same 4-shard process-substrate workload behind supervised
  workers and behind bare :class:`~repro.storage.process_workers.
  ProcessShardWorker` children (``REPRO_SUPERVISE=0``). The ratio is
  recorded for information — at millisecond statement latencies it is
  dominated by scheduler noise, not by the wrapper.
* **supervision microbenchmark**: the healthy-path wrapper cost is
  measured directly — time a no-op pass through the retry/deadline
  wrapper, charge a generous overcount of wrapper passes per statement
  and express it as a fraction of the measured per-statement scatter
  latency. This is the number the <5% contract (and the
  ``check_engine_regressions.py`` gate) applies to.

Answers are asserted identical between the supervised and raw backends
unconditionally — supervision must never change results. Both numbers
land in ``BENCH_engine.json`` under ``extras.fault_tolerance``.
"""

from __future__ import annotations

import time

import pytest

from repro.engine.parallel import process_substrate_available
from repro.storage.layouts import SimpleLayout
from repro.storage.memory_backend import MemoryBackend
from repro.storage.sharded_backend import ShardedBackend
from repro.storage.supervisor import SUPERVISE_ENV, SupervisedShardWorker

TIMING_ROUNDS = 3

SHARDS = 4

#: Statements per timed round — a scatter statement is ~1ms on the
#: process substrate; a batch keeps the wall measurement comfortably
#: above timer resolution.
STATEMENTS_PER_ROUND = 10

#: Ceiling on the healthy-path supervision overhead fraction (0.05 =
#: the 5% contract). Asserted here and re-checked by the gate.
SUPERVISION_OVERHEAD_CEILING = 0.05

#: Wrapper passes charged per statement by the microbenchmark. A
#: scatter statement crosses the supervision wrapper once per shard
#: (4); 2x is a generous overcount covering the coordinator's deadline
#: capture and ``supports_deadline`` dispatch per leg.
WRAPPER_PASSES_PER_STATEMENT = SHARDS * 2


def _time_batch(backend, sql):
    best = None
    for _ in range(TIMING_ROUNDS):
        started = time.perf_counter()
        for _ in range(STATEMENTS_PER_ROUND):
            backend.execute(sql)
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best


def _wrapper_pass_seconds(child: SupervisedShardWorker,
                          iterations: int = 20_000) -> float:
    """Measured cost of one healthy-path pass through the supervision
    wrapper (min-of-3): lock, liveness check, deadline arithmetic and
    the retry frame — with the RPC itself replaced by a no-op."""
    best = None
    for _ in range(TIMING_ROUNDS):
        started = time.perf_counter()
        for _ in range(iterations):
            child._read(lambda worker, _timeout: None,
                        lambda backend: None)
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best / iterations


@pytest.mark.skipif(
    not process_substrate_available(),
    reason="fork start method unavailable",
)
def test_supervision_overhead(tbox, abox_15m, engine_report, monkeypatch):
    """Price the healthy-path supervision wrapper against the 5%
    contract and record the supervised/raw wall ratio for information."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    layout = SimpleLayout()
    data = layout.build(abox_15m, tbox)
    role = max(
        (spec for spec in data.tables if spec.name.startswith("r_") and spec.rows),
        key=lambda spec: len(spec.rows),
    )
    scatter_sql = (
        f"SELECT DISTINCT a.s AS x FROM {role.name} a, {role.name} b "
        "WHERE a.s = b.s"
    )

    oracle = MemoryBackend()
    monkeypatch.setenv(SUPERVISE_ENV, "0")
    raw = ShardedBackend(SHARDS, substrate="process", workers=SHARDS)
    monkeypatch.setenv(SUPERVISE_ENV, "1")
    supervised = ShardedBackend(SHARDS, substrate="process", workers=SHARDS)
    assert all(
        isinstance(child, SupervisedShardWorker)
        for child in supervised.children
    )
    assert not any(
        isinstance(child, SupervisedShardWorker) for child in raw.children
    )
    try:
        for backend in (oracle, raw, supervised):
            backend.load(data)
            backend.execute(scatter_sql)  # warm plans + worker pipes

        expected = oracle.execute(scatter_sql)
        assert sorted(raw.execute(scatter_sql)) == sorted(expected)
        assert sorted(supervised.execute(scatter_sql)) == sorted(expected)

        raw_wall = _time_batch(raw, scatter_sql)
        supervised_wall = _time_batch(supervised, scatter_sql)
        per_statement = supervised_wall / STATEMENTS_PER_ROUND
        wrapper_cost = (
            _wrapper_pass_seconds(supervised.children[0])
            * WRAPPER_PASSES_PER_STATEMENT
        )
        overhead = wrapper_cost / max(per_statement, 1e-12)
        wall_ratio = supervised_wall / max(raw_wall, 1e-9)

        telemetry = supervised.shard_telemetry()
        assert telemetry.get("worker.restarts", 0) == 0
        assert telemetry.get("worker.degraded.executions", 0) == 0

        engine_report.extra(
            "fault_tolerance",
            {
                "shards": SHARDS,
                "table": role.name,
                "table_rows": len(role.rows),
                "statements_per_round": STATEMENTS_PER_ROUND,
                "timing_rounds": TIMING_ROUNDS,
                "wall_s_raw": round(raw_wall, 5),
                "wall_s_supervised": round(supervised_wall, 5),
                "wall_ratio_supervised_vs_raw": round(wall_ratio, 4),
                "per_statement_us": round(per_statement * 1e6, 2),
                "supervision_cost_us": round(wrapper_cost * 1e6, 3),
                "supervision_overhead_fraction": round(overhead, 5),
                "ceiling": SUPERVISION_OVERHEAD_CEILING,
                "overhead_asserted": True,
            },
        )
        print(
            f"\nsupervision on {role.name}: raw={raw_wall * 1000:.1f}ms "
            f"supervised={supervised_wall * 1000:.1f}ms "
            f"ratio={wall_ratio:.3f} wrapper={wrapper_cost * 1e6:.1f}us "
            f"({overhead:.2%} of a {per_statement * 1e6:.0f}us statement)"
        )
        assert overhead < SUPERVISION_OVERHEAD_CEILING, (
            f"healthy-path supervision costs {overhead:.1%} of a scatter "
            f"statement (ceiling {SUPERVISION_OVERHEAD_CEILING:.0%})"
        )
    finally:
        oracle.close()
        raw.close()
        supervised.close()
