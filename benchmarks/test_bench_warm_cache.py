"""Warm-cache serving: plan-cache speedups and shared PerfectRef work.

Not a paper experiment — a serving-grade claim about the shared-work
answering layer (see ``repro/serving``):

* **cold vs warm answering** — the second ``answer()`` of the same query
  comes out of the plan cache, skipping cover search, fragment
  reformulation and SQL translation; it must be at least an order of
  magnitude faster than the cold call on queries whose cold time is
  dominated by reformulation;
* **shared fragment reformulation** — GDL over one shared
  :class:`~repro.cost.cache.ReformulationCache` runs the PerfectRef
  fixpoint strictly fewer times on the star queries A3-A6 than the seed
  behaviour (a fresh per-search cache), because the A_i are prefixes of
  one another and their covers share fragments.
"""

from __future__ import annotations

import time

from repro.bench.harness import ExperimentResult
from repro.cost.cache import ReformulationCache
from repro.cost.estimators import ExternalCoverCost
from repro.cost.model import ExternalCostModel
from repro.cost.statistics import DataStatistics
from repro.obda.system import OBDASystem
from repro.optimizer.gdl import gdl_search
from repro.reformulation.perfectref import perfectref_invocations

#: Queries whose cold answer is reformulation-heavy (the plan-cache claim
#: is about skipping that work; trivial queries would just measure noise).
WARM_QUERIES = ("Q2", "Q5", "Q9", "Q12")


def test_warm_plan_cache_speedup(benchmark, tbox, abox_15m, queries):
    system = OBDASystem(tbox, abox_15m)

    def run():
        result = ExperimentResult("Cold vs warm answer() via the plan cache")
        for name in WARM_QUERIES:
            query = queries[name]
            started = time.perf_counter()
            cold = system.answer(query, strategy="gdl")
            cold_seconds = time.perf_counter() - started
            started = time.perf_counter()
            warm = system.answer(query, strategy="gdl")
            warm_seconds = time.perf_counter() - started
            assert not cold.plan_cache_hit
            assert warm.plan_cache_hit
            assert warm.answers == cold.answers
            result.rows.append(
                {
                    "query": name,
                    "cold_ms": round(cold_seconds * 1000, 2),
                    "warm_ms": round(warm_seconds * 1000, 2),
                    "speedup": round(cold_seconds / max(warm_seconds, 1e-9), 1),
                    "cold_reformulation_ms": round(
                        cold.choice.reformulation_seconds * 1000, 2
                    ),
                    "warm_reformulation_ms": round(
                        warm.choice.reformulation_seconds * 1000, 2
                    ),
                }
            )
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(result.table())
    print(f"plan cache: {system.plan_cache.stats()}")
    print(f"fragment cache: {system.reformulation_cache.stats()}")

    # Acceptance: a warm answer of the same query is >= 10x faster than
    # the cold one on every reformulation-heavy query. Only asserted for
    # queries whose cold time is large enough to be signal — in the
    # blocking CI smoke job (tiny scale) a sub-millisecond warm window
    # plus one scheduler hiccup would fail the ratio with no code defect.
    speedups = [
        row["speedup"] for row in result.rows if row["cold_ms"] >= 5.0
    ]
    if speedups:
        assert min(speedups) >= 10.0, (
            f"warm answers must be >=10x faster than cold, got {speedups}"
        )
    benchmark.extra_info["speedups"] = {
        row["query"]: row["speedup"] for row in result.rows
    }
    system.close()


def test_shared_cache_cuts_perfectref_invocations(
    benchmark, tbox, abox_15m, stars
):
    statistics = DataStatistics.from_abox(abox_15m)
    model = ExternalCostModel(statistics)

    def count_invocations(shared_cache):
        """PerfectRef runs for GDL over A3-A6, optionally sharing a cache."""
        before = perfectref_invocations()
        for query in stars.values():
            cache = (
                shared_cache if shared_cache is not None else ReformulationCache()
            )
            estimator = ExternalCoverCost(tbox, model, fragment_cache=cache)
            gdl_search(query, tbox, estimator)
        return perfectref_invocations() - before

    def run():
        # Seed behaviour: every search starts with an empty fragment cache.
        per_search = count_invocations(None)
        # Shared-work behaviour: one cache across all four star searches,
        # as OBDASystem wires it.
        shared = count_invocations(ReformulationCache())
        return per_search, shared

    per_search, shared = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("== PerfectRef invocations, GDL over the star queries A3-A6 ==")
    print(f"per-search caches (seed behaviour): {per_search}")
    print(f"shared ReformulationCache:          {shared}")
    print(f"saved: {per_search - shared} "
          f"({100 * (per_search - shared) / per_search:.0f}%)")

    # Acceptance: strictly fewer PerfectRef runs with the shared cache.
    assert shared < per_search
    benchmark.extra_info["perfectref_invocations"] = {
        "per_search": per_search,
        "shared": shared,
    }
