"""Scale-tiered benchmarks: generator, ingest, queries and shards at
1k / 100k / 1M facts.

The streaming generator (:mod:`repro.bench.datagen`) decouples dataset
size from memory, so the Fig 2-style evaluation and the shard benchmarks
re-run at three orders of magnitude. Per scale tier this records into
``BENCH_engine.json`` under ``extras.scale_<facts>``:

* generator throughput (facts/s, streamed without loading);
* ingest timings — ``bulk_load`` vs incremental ``insert_rows`` on the
  in-process engine, plus ``bulk_load`` on a 4-shard backend;
* Fig 2-style query evaluation — UCQ vs cover-based JUCQ reformulations
  of superclass queries, translated over the simple layout and run on
  the bulk-loaded engine (answers must agree between variants);
* shard scatter vs single-shard-routed point lookups on the 4-shard
  backend;
* the measured cost-model recalibration
  (:func:`repro.bench.calibrate.calibrate_cost_parameters`).

``REPRO_BENCH_MAX_SCALE`` caps the tiers (the CI smoke leg caps at
100k; the default runs all three).
"""

from __future__ import annotations

import os
from dataclasses import asdict
from time import perf_counter

import pytest

from repro.bench.calibrate import calibrate_cost_parameters
from repro.bench.datagen import (
    exact_fact_count,
    load_generated,
    stream_facts,
)
from repro.bench.lubm import lubm_exists_tbox
from repro.covers.reformulate import cover_based_reformulation
from repro.covers.safety import root_cover
from repro.dllite.parser import parse_query
from repro.engine.parallel import process_substrate_available
from repro.reformulation.perfectref import reformulate_to_ucq
from repro.sql.translator import SQLTranslator
from repro.storage.layouts import SimpleLayout
from repro.storage.memory_backend import MemoryBackend
from repro.storage.sharded_backend import ShardedBackend

SCALES = (1_000, 100_000, 1_000_000)
MAX_SCALE = int(os.environ.get("REPRO_BENCH_MAX_SCALE", str(SCALES[-1])))
RUN_SCALES = [scale for scale in SCALES if scale <= MAX_SCALE]

#: Superclass queries whose PerfectRef reformulations fan out over the
#: generator's concrete predicates (Fig 2's UCQ-vs-JUCQ shape).
SCALE_QUERIES = {
    "S1": "q(x) <- Student(x), takesCourse(x, y)",
    "S2": "q(x) <- Professor(x), worksFor(x, y)",
    "S3": "q(x, y) <- Article(x), publicationAuthor(x, y)",
}

#: Warm min-of-N evaluation, matching the Fig 2/3 sims.
EVAL_REPEAT = 3


def _timed(fn, repeats=EVAL_REPEAT):
    best, result = float("inf"), None
    for _ in range(repeats):
        started = perf_counter()
        result = fn()
        best = min(best, perf_counter() - started)
    return best * 1000.0, result


def _generator_throughput(scale: int) -> dict:
    started = perf_counter()
    total = sum(1 for _ in stream_facts(scale))
    elapsed = perf_counter() - started
    assert total == exact_fact_count(scale)
    return {
        "facts": total,
        "generate_s": round(elapsed, 4),
        "facts_per_s": round(total / max(elapsed, 1e-9)),
    }


def _query_rows(backend, dictionary, tbox) -> dict:
    layout = SimpleLayout(dictionary=dictionary)
    translator = SQLTranslator(layout)
    rows = {}
    for name, text in SCALE_QUERIES.items():
        query = parse_query(text)
        ucq = reformulate_to_ucq(query, tbox)
        jucq = cover_based_reformulation(root_cover(query, tbox), tbox)
        ucq_ms, ucq_rows = _timed(
            lambda sql=translator.translate(ucq): backend.execute(sql)
        )
        jucq_ms, jucq_rows = _timed(
            lambda sql=translator.translate(jucq): backend.execute(sql)
        )
        assert sorted(set(ucq_rows)) == sorted(set(jucq_rows)), name
        rows[name] = {
            "disjuncts": len(ucq.disjuncts),
            "answers": len(set(ucq_rows)),
            "ucq_ms": round(ucq_ms, 3),
            "jucq_ms": round(jucq_ms, 3),
        }
    return rows


def _shard_timings(scale: int, tbox) -> dict:
    substrate = "process" if process_substrate_available() else None
    backend = ShardedBackend(4, substrate=substrate)
    try:
        started = perf_counter()
        total, dictionary = load_generated(backend, scale, tbox=tbox)
        bulk_s = perf_counter() - started
        scatter_sql = (
            "SELECT DISTINCT t0.s FROM r_takesCourse t0, r_teacherOf t1 "
            "WHERE t0.o = t1.o"
        )
        scatter_ms, scatter_rows = _timed(
            lambda: backend.execute(scatter_sql)
        )
        key = backend.execute("SELECT s FROM c_GraduateStudent")[0][0]
        point_sql = f"SELECT o FROM r_takesCourse WHERE s = {key}"
        point_ms, point_rows = _timed(lambda: backend.execute(point_sql))
        assert scatter_rows and point_rows
        return {
            "shards": 4,
            "substrate": backend.substrate,
            "bulk_load_s": round(bulk_s, 3),
            "bulk_rows_per_s": round(total / max(bulk_s, 1e-9)),
            "scatter_ms": round(scatter_ms, 3),
            "point_lookup_ms": round(point_ms, 3),
        }
    finally:
        backend.close()


@pytest.mark.parametrize("scale", RUN_SCALES)
def test_scale_tier(scale, engine_report):
    """One full tier: generate, ingest both ways, query, calibrate."""
    tbox = lubm_exists_tbox()
    payload = {"scale": scale, "generator": _generator_throughput(scale)}

    backend = MemoryBackend()
    try:
        started = perf_counter()
        total, dictionary = load_generated(backend, scale, tbox=tbox)
        bulk_s = perf_counter() - started
        assert total == exact_fact_count(scale)
        payload["ingest"] = {
            "facts": total,
            "memory_bulk_s": round(bulk_s, 3),
            "memory_bulk_rows_per_s": round(total / max(bulk_s, 1e-9)),
        }
        payload["queries"] = _query_rows(backend, dictionary, tbox)
        parameters, measurements = calibrate_cost_parameters(backend)
        payload["calibration"] = {
            "parameters": asdict(parameters),
            "measurements": measurements,
        }
    finally:
        backend.close()

    incremental = MemoryBackend()
    try:
        started = perf_counter()
        total, _dictionary = load_generated(
            incremental, scale, tbox=tbox, incremental=True
        )
        payload["ingest"]["memory_incremental_s"] = round(
            perf_counter() - started, 3
        )
    finally:
        incremental.close()

    payload["sharded"] = _shard_timings(scale, tbox)
    engine_report.extra(f"scale_{scale}", payload)

    # Shape: the bulk path must never lose to incremental ingestion,
    # and every variant pair agreed on answers (asserted above).
    assert payload["ingest"]["memory_bulk_s"] <= (
        payload["ingest"]["memory_incremental_s"] * 1.25
    )
    assert any(row["answers"] for row in payload["queries"].values())
