"""Process-substrate scaling: forked shard workers vs serial dispatch.

Loads the Fig 3 workload into 4-shard :class:`~repro.storage.
sharded_backend.ShardedBackend` instances on the ``process`` substrate
and times a scatter statement with a 1-thread dispatch pool (shard
workers drained one at a time) against the full 4-thread pool (all four
forked workers evaluating simultaneously). Records into
``BENCH_engine.json`` (``extras.process_engine``):

* scatter wall clock at 1 vs 4 dispatch workers (warm, min-of-N);
* the shared-memory exchange's transport mix (segments vs inline) and
  bytes moved.

Answers are asserted identical to an unsharded serial oracle
unconditionally — transport and substrate must never change results.
The >=2x wall-clock assertion is gated on >=4 CPUs only: unlike the
thread benchmarks there is **no** GIL gate, because worker processes
each own an interpreter and parallelize regardless of the coordinator's
GIL. On fewer CPUs the measured ratio is recorded for the report and
the assertion is skipped with an explanation.
"""

from __future__ import annotations

import os
import sys
import time

import pytest

from repro.engine.parallel import process_substrate_available
from repro.storage.layouts import SimpleLayout
from repro.storage.memory_backend import MemoryBackend
from repro.storage.sharded_backend import ShardedBackend

TIMING_ROUNDS = 3

SHARDS = 4


def _gil_enabled() -> bool:
    probe = getattr(sys, "_is_gil_enabled", None)
    return True if probe is None else bool(probe())


def _enough_cpus() -> bool:
    return (os.cpu_count() or 1) >= SHARDS


def _best_of(backend, sql):
    best = None
    rows = None
    for _ in range(TIMING_ROUNDS):
        started = time.perf_counter()
        rows = backend.execute(sql)
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, rows


@pytest.mark.skipif(
    not process_substrate_available(),
    reason="fork start method unavailable",
)
def test_process_scatter_scaling(tbox, abox_15m, engine_report, monkeypatch):
    """4 forked shard workers vs serialized dispatch over the same 4."""
    # Force the columnar segments into play even for modest result
    # sets — this bench prices the shm exchange, not the pipe-pickle
    # fallback (workers read the knob once, at fork).
    monkeypatch.setenv("REPRO_SHM_MIN_CELLS", "16")
    layout = SimpleLayout()
    data = layout.build(abox_15m, tbox)
    role = max(
        (spec for spec in data.tables if spec.name.startswith("r_") and spec.rows),
        key=lambda spec: len(spec.rows),
    )
    scatter_sql = (
        f"SELECT DISTINCT a.s AS x FROM {role.name} a, {role.name} b "
        "WHERE a.s = b.s"
    )

    oracle = MemoryBackend()
    serialized = ShardedBackend(SHARDS, substrate="process", workers=1)
    scattered = ShardedBackend(SHARDS, substrate="process", workers=SHARDS)
    assert serialized.substrate == "process"
    assert scattered.substrate == "process"
    try:
        for backend in (oracle, serialized, scattered):
            backend.load(data)
            backend.execute(scatter_sql)  # warm plans + worker pipes

        _, expected = _best_of(oracle, scatter_sql)
        wall_1w, rows_1w = _best_of(serialized, scatter_sql)
        wall_4w, rows_4w = _best_of(scattered, scatter_sql)
        assert sorted(rows_1w) == sorted(expected)
        assert sorted(rows_4w) == sorted(expected)
        assert scattered.last_execution.route == "scatter"
        assert len(scattered.last_execution.shards_touched) == SHARDS

        telemetry = scattered.shard_telemetry()
        speedup = wall_1w / max(wall_4w, 1e-9)
        asserted = _enough_cpus()
        engine_report.extra(
            "process_engine",
            {
                "shards": SHARDS,
                "table": role.name,
                "table_rows": len(role.rows),
                "scatter_wall_s_1w": round(wall_1w, 4),
                "scatter_wall_s_4w": round(wall_4w, 4),
                "speedup_4w_vs_1w": round(speedup, 2),
                "shm_results": telemetry.get("shm_results", 0),
                "shm_bytes": telemetry.get("shm_bytes", 0),
                "inline_results": telemetry.get("inline_results", 0),
                "cpus": os.cpu_count(),
                "gil": _gil_enabled(),
                "scaling_asserted": asserted,
            },
        )
        print(
            f"\nprocess scatter on {role.name}: 1w={wall_1w * 1000:.1f}ms "
            f"{SHARDS}w={wall_4w * 1000:.1f}ms speedup={speedup:.2f}x "
            f"(shm={telemetry.get('shm_results', 0)} segments, "
            f"{telemetry.get('shm_bytes', 0)} bytes)"
        )
        if asserted:
            assert speedup >= 2.0, (
                f"expected >=2x scatter speedup at {SHARDS} process "
                f"workers on >=4 CPUs, measured {speedup:.2f}x"
            )
        else:
            print(
                f"(scaling assertion skipped: cpus={os.cpu_count()} < "
                f"{SHARDS} — worker processes cannot run simultaneously; "
                "numbers recorded)"
            )
    finally:
        oracle.close()
        serialized.close()
        scattered.close()


@pytest.mark.skipif(
    not process_substrate_available(),
    reason="fork start method unavailable",
)
def test_process_answers_match_thread_substrate(tbox, abox_15m, queries):
    """Substrate independence on the real workload: process-shard
    answers are byte-identical to the in-process thread shards'."""
    layout = SimpleLayout()
    data = layout.build(abox_15m, tbox)
    thread = ShardedBackend(2, substrate="thread")
    process = ShardedBackend(2, substrate="process")
    try:
        thread.load(data)
        process.load(data)
        role = next(
            spec for spec in data.tables
            if spec.name.startswith("r_") and spec.rows
        )
        bound = role.rows[0][0]
        probes = [
            f"SELECT DISTINCT a.s AS x FROM {role.name} a",
            f"SELECT a.o AS x FROM {role.name} a WHERE a.s = {bound}",
            (
                f"SELECT DISTINCT a.s AS x FROM {role.name} a, "
                f"{role.name} b WHERE a.o = b.s"
            ),
        ]
        for sql in probes:
            assert process.execute(sql) == thread.execute(sql), sql
    finally:
        thread.close()
        process.close()
