"""Observability: end-to-end query tracing plus a unified metrics registry.

Two subsystems, both threaded through the whole OBDA stack:

* :mod:`repro.obs.trace` — a lightweight span API. A
  :class:`~repro.obs.trace.Tracer` builds one structured
  :class:`~repro.obs.trace.QueryTrace` per answered query: parse,
  reformulation (per strategy, with PerfectRef / cover-search counters
  and cache hit/miss deltas), cost estimation, SQL translation, engine
  execution (operator wall time and row/batch counts folded out of
  :class:`~repro.engine.executor.ExecutionStats`) and — on a
  :class:`~repro.storage.sharded_backend.ShardedBackend` — per-shard
  child spans, including spans shipped back over the pipe RPC from
  forked :class:`~repro.storage.process_workers.ProcessShardWorker`
  processes and merged into the coordinator trace with worker
  attribution. Tracing is **off by default** and costs <5% when
  disabled (the disabled path is a handful of no-op singleton calls per
  query; guarded by ``benchmarks/test_bench_obs.py``).

* :mod:`repro.obs.metrics` — a process-wide
  :class:`~repro.obs.metrics.MetricsRegistry` of counters, gauges and
  bounded histograms (p50/p95/p99) behind the stable metric names
  catalogued in ``docs/OBSERVABILITY.md``. It absorbs the counters
  historically scattered across ``ExecutionStats``,
  ``last_batch_stats`` and ``shard_telemetry()``, aggregates across
  process shard workers over the same RPC batching as
  ``statistics_many``, and exports as a JSON snapshot
  (:meth:`~repro.obs.metrics.MetricsRegistry.snapshot`) or a
  plain-text Prometheus dump
  (:meth:`~repro.obs.metrics.MetricsRegistry.render_prometheus`).

Surfaces: ``AnswerReport.trace``, :meth:`repro.obda.system.OBDASystem.
metrics`, the slow-query log (``REPRO_SLOW_QUERY_MS``) and the
``EXPLAIN ANALYZE``-style rendering (``explain_text(analyze=True)``).
"""

from repro.obs.metrics import (
    MetricsRegistry,
    get_registry,
    reset_registry,
)
from repro.obs.trace import (
    NO_SPAN,
    QueryTrace,
    Span,
    Tracer,
    activate,
    current_span,
    trace_enabled_default,
)

__all__ = [
    "MetricsRegistry",
    "get_registry",
    "reset_registry",
    "NO_SPAN",
    "QueryTrace",
    "Span",
    "Tracer",
    "activate",
    "current_span",
    "trace_enabled_default",
]
