"""A lightweight, thread- and fork-safe span API for per-query traces.

Design constraints, in order:

1. **Disabled tracing must be near-free.** The stack is instrumented
   unconditionally, so the off path has to cost next to nothing: every
   instrumentation point is either guarded by ``span.enabled`` (a plain
   attribute read on a singleton) or funnels through :data:`NO_SPAN`,
   whose methods are no-ops returning itself. No timestamps are taken,
   no dicts built, no context variables written when tracing is off —
   the contextvar simply keeps its :data:`NO_SPAN` default.
2. **One coherent tree per query.** A :class:`Tracer` is created per
   answered query; its root :class:`Span` owns the whole tree. Span ids
   are tracer-local integers, parents link children, and every span
   records start/end offsets on one monotonic clock (the tracer's
   ``perf_counter`` origin), so parent-child containment is checkable.
3. **Cross-thread and cross-process composition.** Work fanned out to
   pool threads (serving workers, shard scatter legs) attaches to the
   trace by *explicit parent hand-off* — the dispatching thread captures
   its span and workers call ``parent.child(...)`` — because context
   variables do not flow into pool threads. Spans are append-locked, so
   concurrent children are safe. Work done in a forked shard worker is
   traced by a worker-local tracer and shipped home as a plain dict
   (:meth:`Span.graft`), marked ``clock: "worker"`` since a child
   process's monotonic clock is not comparable to the coordinator's.

The contextvar (:func:`current_span` / :func:`activate`) exists so
deep layers — the sharded backend, notably — can attach child spans
without every intermediate signature growing a ``span`` parameter.
"""

from __future__ import annotations

import contextvars
import itertools
import os
import threading
import time
from typing import Dict, Iterator, List, Optional

#: Environment knob: ``REPRO_TRACE=1`` turns tracing on for every
#: :class:`~repro.obda.system.OBDASystem` not given an explicit
#: ``trace=`` argument. Off by default.
TRACE_ENV = "REPRO_TRACE"

_TRUTHY = {"1", "true", "yes", "on"}


def trace_enabled_default() -> bool:
    """Whether ``REPRO_TRACE`` asks for tracing (unset/garbage = off)."""
    return os.environ.get(TRACE_ENV, "").strip().lower() in _TRUTHY


class _NoopSpan:
    """The disabled-path singleton: every operation is a no-op.

    ``enabled`` is ``False`` so instrumentation points that need more
    than a method call (timestamps, attribute dicts) can skip the work
    entirely with one attribute read.
    """

    __slots__ = ()

    enabled = False
    name = "noop"

    def child(self, name: str, **attributes) -> "_NoopSpan":
        """Return the no-op span itself (children of nothing are nothing)."""
        return self

    def set(self, **attributes) -> None:
        """Discard attributes."""

    def graft(self, subtree: Optional[Dict]) -> None:
        """Discard a shipped subtree."""

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        return None

    def to_dict(self) -> Dict:
        """An empty dict (the no-op span has nothing to report)."""
        return {}


#: The singleton every disabled instrumentation point sees.
NO_SPAN = _NoopSpan()

#: The active span of the current logical context. Defaults to
#: :data:`NO_SPAN`, so un-instrumented entry points cost readers one
#: contextvar get returning the no-op singleton.
_CURRENT: "contextvars.ContextVar[object]" = contextvars.ContextVar(
    "repro_obs_span", default=NO_SPAN
)


def current_span():
    """The span active in this context (:data:`NO_SPAN` when tracing is
    off or nothing activated one)."""
    return _CURRENT.get()


class activate:
    """Context manager making *span* the :func:`current_span`.

    With a disabled span this is a no-op that never touches the
    contextvar — the cheap off path.
    """

    __slots__ = ("_span", "_token")

    def __init__(self, span) -> None:
        self._span = span
        self._token = None

    def __enter__(self):
        if self._span.enabled:
            self._token = _CURRENT.set(self._span)
        return self._span

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None


class Span:
    """One timed section of a query trace.

    Use as a context manager (``with parent.child("translate") as s:``)
    or start/stop explicitly via :meth:`finish`. ``set`` attaches
    attributes; ``graft`` attaches a pre-built child subtree shipped
    from a worker process. All mutation is tracer-locked, so spans may
    gain children from several threads concurrently.
    """

    __slots__ = (
        "tracer",
        "name",
        "span_id",
        "parent_id",
        "start",
        "end",
        "attributes",
        "children",
        "error",
    )

    enabled = True

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: Optional[int],
        attributes: Optional[Dict] = None,
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        #: Offsets in seconds relative to the tracer's clock origin.
        self.start = tracer.clock() - tracer.origin
        self.end: Optional[float] = None
        self.attributes: Dict = dict(attributes) if attributes else {}
        self.children: List[object] = []
        self.error: Optional[str] = None

    # ------------------------------------------------------------------
    def child(self, name: str, **attributes) -> "Span":
        """Open a child span (started now; close it to record its end)."""
        return self.tracer._span(name, parent=self, attributes=attributes)

    def set(self, **attributes) -> None:
        """Attach (or overwrite) attributes on this span."""
        self.attributes.update(attributes)

    def graft(self, subtree: Optional[Dict]) -> None:
        """Attach a span dict shipped from a forked worker as a child.

        The dict is **rehydrated** into real :class:`Span` objects with
        fresh tracer-local ids, so ``walk``/``spans``/``find`` stay
        uniform for consumers. Time offsets are kept as shipped — they
        are on the worker's clock (the worker marks its root
        ``clock: "worker"``), so durations are meaningful but start
        offsets are not comparable with coordinator spans. ``None`` /
        empty subtrees are ignored.
        """
        if subtree:
            with self.tracer._lock:
                self.children.append(self._rehydrate_locked(subtree, self))

    def _rehydrate_locked(self, node: Dict, parent: "Span") -> "Span":
        """Rebuild one shipped span dict (tracer lock held by caller)."""
        span = Span.__new__(Span)
        span.tracer = self.tracer
        span.name = node.get("name", "?")
        span.span_id = next(self.tracer._ids)
        span.parent_id = parent.span_id
        span.start = node.get("start_s", 0.0)
        span.end = span.start + node.get("duration_s", 0.0)
        span.attributes = dict(node.get("attributes") or {})
        span.error = node.get("error")
        span.children = [
            self._rehydrate_locked(child, span)
            for child in node.get("children") or []
        ]
        return span

    def finish(self) -> None:
        """Record the span's end time (idempotent)."""
        if self.end is None:
            self.end = self.tracer.clock() - self.tracer.origin

    @property
    def duration_seconds(self) -> float:
        """Elapsed seconds (to now, for a still-open span)."""
        end = self.end
        if end is None:
            end = self.tracer.clock() - self.tracer.origin
        return end - self.start

    # ------------------------------------------------------------------
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        if exc_type is not None:
            self.error = f"{exc_type.__name__}: {exc_value}"
        self.finish()

    def to_dict(self) -> Dict:
        """This span and its subtree as plain JSON-able dicts."""
        out: Dict = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": round(self.start, 6),
            "duration_s": round(self.duration_seconds, 6),
        }
        if self.attributes:
            out["attributes"] = dict(self.attributes)
        if self.error is not None:
            out["error"] = self.error
        if self.children:
            out["children"] = [
                child if isinstance(child, dict) else child.to_dict()
                for child in self.children
            ]
        return out

    def walk(self) -> Iterator[object]:
        """Yield this span and every descendant (grafted dicts included)."""
        yield self
        for child in list(self.children):
            if isinstance(child, dict):
                yield child
            else:
                yield from child.walk()


class Tracer:
    """Builds one query's span tree on a single monotonic clock.

    A tracer is cheap (one lock, one counter) and single-use: create one
    per traced query, open the root with :meth:`root`, and read the
    finished tree through :class:`QueryTrace`. Thread-safe; fork-safe by
    construction (a forked worker builds its *own* tracer and ships the
    dict — tracers never cross process boundaries).
    """

    clock = staticmethod(time.perf_counter)

    def __init__(self) -> None:
        self.origin = self.clock()
        #: Wall-clock epoch seconds at the origin (for log correlation).
        self.started_at = time.time()
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self.root_span: Optional[Span] = None

    def _span(
        self, name: str, parent: Optional[Span], attributes: Optional[Dict]
    ) -> Span:
        with self._lock:
            span = Span(
                self,
                name,
                span_id=next(self._ids),
                parent_id=parent.span_id if parent is not None else None,
                attributes=attributes,
            )
            if parent is not None:
                parent.children.append(span)
        return span

    def root(self, name: str, **attributes) -> Span:
        """Open the trace's root span."""
        span = self._span(name, parent=None, attributes=attributes)
        self.root_span = span
        return span

    def trace(self) -> "QueryTrace":
        """The finished trace (call after the root span closed)."""
        return QueryTrace(self)


class QueryTrace:
    """One query's finished span tree, ready for reports and logs."""

    def __init__(self, tracer: Tracer) -> None:
        self._tracer = tracer
        #: Wall-clock epoch seconds when the trace began.
        self.started_at = tracer.started_at

    @property
    def root(self) -> Optional[Span]:
        """The root span (``None`` for a tracer that never opened one)."""
        return self._tracer.root_span

    @property
    def duration_seconds(self) -> float:
        """The root span's elapsed seconds (0.0 with no root)."""
        root = self.root
        return root.duration_seconds if root is not None else 0.0

    def spans(self) -> List[object]:
        """Every span in the tree, depth-first (grafted dicts included)."""
        root = self.root
        return list(root.walk()) if root is not None else []

    def find(self, name: str) -> List[object]:
        """All spans named *name* (live spans and grafted dicts alike)."""
        out = []
        for span in self.spans():
            span_name = span["name"] if isinstance(span, dict) else span.name
            if span_name == name:
                out.append(span)
        return out

    def to_dict(self) -> Dict:
        """The whole trace as one JSON-able dict."""
        root = self.root
        return {
            "started_at": self.started_at,
            "duration_s": round(self.duration_seconds, 6),
            "root": root.to_dict() if root is not None else None,
        }

    def render(self, indent: int = 2) -> str:
        """A human-readable indented rendering of the span tree."""
        lines: List[str] = []

        def visit(node, depth: int) -> None:
            if isinstance(node, dict):
                name = node.get("name", "?")
                duration = node.get("duration_s", 0.0)
                attributes = node.get("attributes", {})
                children = node.get("children", [])
            else:
                name = node.name
                duration = node.duration_seconds
                attributes = node.attributes
                children = node.children
            detail = ""
            if attributes:
                parts = ", ".join(
                    f"{key}={value}" for key, value in sorted(attributes.items())
                )
                detail = f"  [{parts}]"
            lines.append(
                f"{' ' * (indent * depth)}{name}  "
                f"({duration * 1000:.3f} ms){detail}"
            )
            for child in children:
                visit(child, depth + 1)

        root = self.root
        if root is not None:
            visit(root, 0)
        return "\n".join(lines)
