"""A process-wide registry of counters, gauges and bounded histograms.

The registry is the single home for the telemetry counters historically
scattered across ``ExecutionStats``, ``last_batch_stats`` and
``shard_telemetry()`` — each recorded under one **stable metric name**
(the catalog lives in ``docs/OBSERVABILITY.md``). Names are dotted
(``repro.query.seconds``); the Prometheus dump rewrites dots to
underscores per the exposition format.

Three instrument kinds:

* **Counter** — a monotone float/int (``inc``).
* **Gauge** — a last-value-wins float (``set``).
* **Histogram** — a *bounded* histogram: observations land in a fixed
  set of cumulative-style buckets (so memory per histogram is constant
  regardless of traffic) while count/sum/min/max are exact;
  p50/p95/p99 are estimated from the bucket counts by linear
  interpolation. Default bucket bounds suit second-valued latencies and
  can be overridden per process with ``REPRO_HIST_BOUNDS`` (a
  comma-separated ascending list of upper bounds).

Aggregation: :meth:`MetricsRegistry.merge_snapshot` folds another
registry's :meth:`~MetricsRegistry.snapshot` in — counters and
histogram buckets add, gauges take the incoming value — which is how
the coordinator absorbs forked shard workers' registries (fetched over
the same one-RPC-per-child batching as ``statistics_many``).

Everything is thread-safe behind one lock; recording is a few dict
operations, cheap enough to stay **always on** (per query/statement,
never per row).
"""

from __future__ import annotations

import os
import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

#: Environment knob: comma-separated ascending histogram bucket upper
#: bounds (seconds), overriding :data:`DEFAULT_BUCKET_BOUNDS` for every
#: histogram created afterwards in this process.
HIST_BOUNDS_ENV = "REPRO_HIST_BOUNDS"

#: Default histogram bucket upper bounds (seconds): microseconds to a
#: minute, roughly logarithmic. Observations above the last bound land
#: in the implicit +Inf bucket.
DEFAULT_BUCKET_BOUNDS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
)


def histogram_bounds() -> Tuple[float, ...]:
    """The configured bucket bounds (``REPRO_HIST_BOUNDS`` or default)."""
    raw = os.environ.get(HIST_BOUNDS_ENV)
    if not raw:
        return DEFAULT_BUCKET_BOUNDS
    try:
        bounds = tuple(float(part) for part in raw.split(",") if part.strip())
    except ValueError:
        return DEFAULT_BUCKET_BOUNDS
    if not bounds or list(bounds) != sorted(bounds):
        return DEFAULT_BUCKET_BOUNDS
    return bounds


class Histogram:
    """A bounded histogram: fixed buckets, exact count/sum/min/max.

    Not thread-safe on its own — the owning registry's lock serializes
    access (one lock for the whole registry keeps the hot path at a
    single acquire).
    """

    __slots__ = ("bounds", "buckets", "count", "total", "min", "max")

    def __init__(self, bounds: Optional[Sequence[float]] = None) -> None:
        self.bounds: Tuple[float, ...] = tuple(
            bounds if bounds is not None else histogram_bounds()
        )
        #: ``buckets[i]`` counts observations ``<= bounds[i]``-exclusive
        #: of earlier buckets; ``buckets[-1]`` is the +Inf bucket.
        self.buckets: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.buckets[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the *q*-quantile (0..1) from the bucket counts.

        Linear interpolation within the target bucket, clamped by the
        exact min/max; ``None`` with no observations. The +Inf bucket
        reports the exact max (the best bounded information available).
        """
        if not self.count:
            return None
        target = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self.buckets):
            if not bucket_count:
                continue
            if seen + bucket_count >= target:
                if index >= len(self.bounds):
                    return self.max
                hi = self.bounds[index]
                lo = self.bounds[index - 1] if index else 0.0
                fraction = (target - seen) / bucket_count
                estimate = lo + (hi - lo) * fraction
                if self.min is not None:
                    estimate = max(estimate, self.min)
                if self.max is not None:
                    estimate = min(estimate, self.max)
                return estimate
            seen += bucket_count
        return self.max  # pragma: no cover - arithmetic guard

    def to_dict(self) -> Dict:
        """JSON-able snapshot with estimated p50/p95/p99."""
        out: Dict = {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
        }
        for name, q in (("p50", 0.5), ("p95", 0.95), ("p99", 0.99)):
            estimate = self.quantile(q)
            out[name] = None if estimate is None else round(estimate, 6)
        return out

    def merge_dict(self, other: Dict) -> None:
        """Fold a snapshot produced by :meth:`to_dict` into this one.

        Bucket-compatible snapshots add bucket-wise; snapshots with
        different bounds degrade gracefully — their observations are
        re-observed at their estimated p50 (count-weighted), keeping
        count/sum exact and quantiles approximate.
        """
        if not other.get("count"):
            return
        if list(other.get("bounds", [])) == list(self.bounds):
            for index, bucket_count in enumerate(other["buckets"]):
                self.buckets[index] += bucket_count
        else:  # incompatible bounds: approximate placement
            midpoint = other.get("p50") or 0.0
            self.buckets[bisect_left(self.bounds, midpoint)] += other["count"]
        self.count += other["count"]
        self.total += other.get("sum", 0.0)
        for value in (other.get("min"), other.get("max")):
            if value is None:
                continue
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value


class MetricsRegistry:
    """Thread-safe named counters, gauges and histograms.

    One process-wide instance (:func:`get_registry`) backs the whole
    stack; forked shard workers each get their own (created post-fork,
    so nothing is double-counted) and ship snapshots home for
    :meth:`merge_snapshot`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: float = 1.0) -> None:
        """Add *amount* to counter *name* (created at zero on first use)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge *name* to *value* (last write wins)."""
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record *value* into histogram *name* (created on first use)."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram()
            histogram.observe(value)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def counter_value(self, name: str) -> float:
        """Current value of counter *name* (0.0 when never incremented)."""
        with self._lock:
            return self._counters.get(name, 0.0)

    def snapshot(self) -> Dict:
        """A JSON-able snapshot: counters, gauges, histogram summaries."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: histogram.to_dict()
                    for name, histogram in self._histograms.items()
                },
            }

    def merge_snapshot(self, snapshot: Optional[Dict]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters and histograms add; gauges take the incoming value.
        ``None`` / empty snapshots are ignored (backends without a
        registry opt out by returning ``None``).
        """
        if not snapshot:
            return
        with self._lock:
            for name, value in snapshot.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0.0) + value
            for name, value in snapshot.get("gauges", {}).items():
                self._gauges[name] = value
            for name, data in snapshot.get("histograms", {}).items():
                histogram = self._histograms.get(name)
                if histogram is None:
                    histogram = self._histograms[name] = Histogram(
                        bounds=data.get("bounds")
                    )
                histogram.merge_dict(data)

    def render_prometheus(self) -> str:
        """The registry as Prometheus text exposition format.

        Dots in metric names become underscores; histograms render as
        the conventional ``_bucket``/``_sum``/``_count`` series with
        cumulative ``le`` labels.
        """
        lines: List[str] = []
        snapshot = self.snapshot()
        for name in sorted(snapshot["counters"]):
            flat = _prometheus_name(name)
            lines.append(f"# TYPE {flat} counter")
            lines.append(f"{flat} {_format_value(snapshot['counters'][name])}")
        for name in sorted(snapshot["gauges"]):
            flat = _prometheus_name(name)
            lines.append(f"# TYPE {flat} gauge")
            lines.append(f"{flat} {_format_value(snapshot['gauges'][name])}")
        for name in sorted(snapshot["histograms"]):
            data = snapshot["histograms"][name]
            flat = _prometheus_name(name)
            lines.append(f"# TYPE {flat} histogram")
            cumulative = 0
            for bound, bucket_count in zip(data["bounds"], data["buckets"]):
                cumulative += bucket_count
                lines.append(
                    f'{flat}_bucket{{le="{_format_value(bound)}"}} {cumulative}'
                )
            lines.append(f'{flat}_bucket{{le="+Inf"}} {data["count"]}')
            lines.append(f"{flat}_sum {_format_value(data['sum'])}")
            lines.append(f"{flat}_count {data['count']}")
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        """Drop every instrument (tests and benchmark isolation)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


def _prometheus_name(name: str) -> str:
    return name.replace(".", "_").replace("-", "_")


def _format_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


#: The process-wide registry every component records into by default.
_REGISTRY = MetricsRegistry()
_REGISTRY_LOCK = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide :class:`MetricsRegistry`."""
    return _REGISTRY


def reset_registry() -> MetricsRegistry:
    """Replace the process-wide registry with a fresh one (tests).

    Components hold no reference to the old instance — they call
    :func:`get_registry` at each recording site — so a reset takes
    effect everywhere immediately.
    """
    global _REGISTRY
    with _REGISTRY_LOCK:
        _REGISTRY = MetricsRegistry()
    return _REGISTRY
