"""Translate FOL queries (CQ/UCQ/SCQ/USCQ/JUCQ/JUSCQ) to SQL.

The translation follows Section 3 of the paper:

* a CQ becomes a ``SELECT [DISTINCT]`` block — one FROM source per atom
  (a table on the simple layout; an inline union of column probes on the
  RDF layout), join predicates from repeated variables, and constant
  predicates from dictionary-encoded constants;
* a UCQ becomes a ``UNION`` of CQ blocks with positionally aligned output
  aliases;
* a JUCQ becomes::

      WITH f0 AS (<UCQ of fragment 0>), ..., fn AS (...)
      SELECT DISTINCT <head> FROM f0, ..., fn WHERE <joins on shared vars>

  materializing each reformulated fragment once (footnote 2: fragment
  subqueries deduplicate with DISTINCT to shrink intermediate results);
* SCQs join inline union blocks; USCQs union them; JUSCQs put USCQ
  components in CTEs.

Query constants missing from the dictionary translate to an impossible
code, making the predicate unsatisfiable (correct: the constant appears in
no fact).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from repro.queries.atoms import Atom
from repro.queries.cq import CQ
from repro.queries.jucq import JUCQ, JUSCQ, component_head
from repro.queries.scq import SCQ, USCQ
from repro.queries.terms import Constant, Term, Variable, is_variable
from repro.queries.ucq import UCQ
from repro.storage.layouts import IMPOSSIBLE_CODE, AtomBranch

AnyQuery = Union[CQ, UCQ, SCQ, USCQ, JUCQ, JUSCQ]


@dataclass(frozen=True)
class ShardHint:
    """Logical-level shard routing for a reformulation.

    Computed from the *query objects* (shared variables and constants)
    rather than by parsing the emitted SQL, so a sharded backend can
    route a plan-cached statement without re-tokenizing megabyte-scale
    reformulations. The hint mirrors the conservative AST analysis in
    :func:`repro.engine.planner.analyze_shard_route` exactly — the
    conformance suite cross-checks the two on translated queries.
    """

    #: Every disjunct joins all its atoms on the shard key (first
    #: argument), so per-shard evaluation partitions the answer.
    co_partitioned: bool
    #: Dictionary codes binding the shard key, one per disjunct; ``None``
    #: when some disjunct leaves the key unbound (all shards needed).
    key_codes: Optional[FrozenSet[int]]
    #: Tables the translated SQL reads (for the gather fallback).
    tables: FrozenSet[str]
    #: Translator output always deduplicates at the root.
    dedup_root: bool = True


def _var_column(variable: Variable) -> str:
    """The SQL output column name carrying a variable's bindings."""
    return f"v_{variable.name}"


class SQLTranslator:
    """Renders queries to SQL against a given layout (and its dictionary)."""

    def __init__(self, layout) -> None:
        self.layout = layout

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def translate(self, query: AnyQuery) -> str:
        """Dispatch on the query dialect."""
        if isinstance(query, CQ):
            return self.cq_to_sql(query)
        if isinstance(query, SCQ):
            return self.scq_to_sql(query)
        if isinstance(query, USCQ):
            return self.uscq_to_sql(query)
        if isinstance(query, UCQ):
            return self.ucq_to_sql(query)
        if isinstance(query, JUCQ):
            return self.jucq_to_sql(query)
        if isinstance(query, JUSCQ):
            return self.juscq_to_sql(query)
        raise TypeError(f"unsupported query dialect: {type(query).__name__}")

    def cq_to_sql(
        self,
        query: CQ,
        out_names: Optional[Sequence[str]] = None,
        distinct: bool = True,
    ) -> str:
        """One SELECT block for a CQ."""
        names = list(out_names) if out_names else self._default_names(query.head)
        return self._cq_select(query, names, distinct)

    def ucq_to_sql(
        self, query: UCQ, out_names: Optional[Sequence[str]] = None
    ) -> str:
        """UNION of the disjuncts' SELECT blocks."""
        names = (
            list(out_names)
            if out_names
            else self._default_names(query.disjuncts[0].head)
        )
        blocks = [
            # Single disjunct: DISTINCT does the set semantics; multiple
            # disjuncts: UNION deduplicates across (and within) blocks.
            self._cq_select(cq, names, distinct=len(query.disjuncts) == 1)
            for cq in query.disjuncts
        ]
        return " UNION ".join(blocks)

    def jucq_to_sql(self, query: JUCQ) -> str:
        """The WITH-based fragment-join SQL of Section 3."""
        ctes: List[str] = []
        fragment_names: List[str] = []
        heads: List[Tuple[Term, ...]] = []
        for position, component in enumerate(query.components):
            name = f"f{position}"
            head = component_head(component)
            out = [self._head_name(term, i) for i, term in enumerate(head)]
            ctes.append(f"{name} AS ({self.ucq_to_sql(component, out)})")
            fragment_names.append(name)
            heads.append(head)
        return self._join_of_components(
            query.head, fragment_names, heads, with_clauses=ctes
        )

    def scq_to_sql(
        self, query: SCQ, out_names: Optional[Sequence[str]] = None
    ) -> str:
        """Join of inline union blocks."""
        sources: List[str] = []
        names: List[str] = []
        heads: List[Tuple[Term, ...]] = []
        for position, block in enumerate(query.blocks):
            name = f"b{position}"
            out = [self._head_name(t, i) for i, t in enumerate(block.disjuncts[0].head)]
            sources.append(f"({self.ucq_to_sql(block, out)}) {name}")
            names.append(name)
            heads.append(block.disjuncts[0].head)
        return self._join_of_components(
            query.head,
            names,
            heads,
            inline_sources=sources,
            out_names=out_names,
        )

    def uscq_to_sql(self, query: USCQ) -> str:
        """UNION of SCQ blocks with positionally aligned output aliases."""
        names = [f"ans{i}" for i in range(query.arity)] or ["ans0"]
        return " UNION ".join(
            self.scq_to_sql(scq, out_names=names) for scq in query.scqs
        )

    def juscq_to_sql(self, query: JUSCQ) -> str:
        """WITH-based join of USCQ components."""
        ctes: List[str] = []
        fragment_names: List[str] = []
        heads: List[Tuple[Term, ...]] = []
        for position, component in enumerate(query.components):
            name = f"f{position}"
            head = component.scqs[0].head
            out = [self._head_name(t, i) for i, t in enumerate(head)]
            body = " UNION ".join(
                self.scq_to_sql(scq, out_names=out) for scq in component.scqs
            )
            ctes.append(f"{name} AS ({body})")
            fragment_names.append(name)
            heads.append(head)
        return self._join_of_components(
            query.head, fragment_names, heads, with_clauses=ctes
        )

    # ------------------------------------------------------------------
    # Shard routing hints
    # ------------------------------------------------------------------
    def shard_hint(self, query: AnyQuery) -> Optional[ShardHint]:
        """The logical shard route of *query*, or ``None`` if unanalyzed.

        Covers the dialects the answer path actually produces (CQ, UCQ,
        JUCQ); the SCQ family returns ``None`` and the sharded backend
        falls back to its SQL-level analysis. A disjunct is shard-key
        co-partitioned exactly when all its atoms share one first
        argument (the same variable, or constants with one dictionary
        code) — the only way the emitted SQL ever joins shard keys.
        """
        if isinstance(query, CQ):
            disjunct = self._disjunct_hint(query)
            if disjunct is None:
                return self._gather_hint(query.atoms)
            key, tables = disjunct
            codes = frozenset([key[1]]) if key[0] == "const" else None
            return ShardHint(True, codes, frozenset(tables))
        if isinstance(query, UCQ):
            return self._ucq_hint(query)[0]
        if isinstance(query, JUCQ):
            hints = []
            aligned_sets = []
            for component in query.components:
                hint, aligned = self._ucq_hint(component)
                hints.append(hint)
                aligned_sets.append(aligned)
            tables = frozenset().union(*(h.tables for h in hints))
            if not all(h.co_partitioned for h in hints):
                return ShardHint(False, None, tables)
            shared = aligned_sets[0]
            for aligned in aligned_sets[1:]:
                shared = shared & aligned
            # The fragment join is co-partitioned when some head variable
            # is shard-aligned in every component; fragment-internal
            # constants never reach the outer join, so the join itself is
            # never constant-bound (matching the SQL-level analysis).
            return ShardHint(bool(shared), None, tables)
        return None

    def _gather_hint(self, atoms: Sequence[Atom]) -> ShardHint:
        return ShardHint(False, None, frozenset(self._atom_tables(atoms)))

    def _atom_tables(self, atoms: Sequence[Atom]) -> List[str]:
        return [
            branch.table
            for atom in atoms
            for branch in self.layout.atom_branches(atom)
        ]

    def _disjunct_hint(self, cq: CQ):
        """``(key node, tables)`` when *cq* is co-partitioned, else None.

        The key node is ``("var", variable)`` or ``("const", code)``.
        """
        nodes = set()
        for atom in cq.atoms:
            term = atom.args[0]
            if is_variable(term):
                nodes.add(("var", term))
            else:
                nodes.add(("const", self._encode(term)))
        if len(nodes) != 1:
            return None
        return next(iter(nodes)), self._atom_tables(cq.atoms)

    def _ucq_hint(self, ucq: UCQ):
        """A UCQ's hint plus its shard-aligned exported variables."""
        tables: set = set()
        keys = []
        for disjunct in ucq.disjuncts:
            entry = self._disjunct_hint(disjunct)
            if entry is None:
                for other in ucq.disjuncts:
                    tables.update(self._atom_tables(other.atoms))
                return ShardHint(False, None, frozenset(tables)), frozenset()
            key, disjunct_tables = entry
            keys.append(key)
            tables.update(disjunct_tables)
        codes: Optional[FrozenSet[int]] = frozenset(
            key[1] for key in keys
        ) if all(key[0] == "const" for key in keys) else None
        # A head position is aligned when every disjunct exports its own
        # shard key there; the outer fragment join uses the variables.
        aligned: set = set()
        arity = len(ucq.disjuncts[0].head)
        for position in range(arity):
            ok = True
            for disjunct, key in zip(ucq.disjuncts, keys):
                term = disjunct.head[position]
                node = (
                    ("var", term)
                    if is_variable(term)
                    else ("const", self._encode(term))
                )
                if node != key:
                    ok = False
                    break
            if ok:
                term = ucq.disjuncts[0].head[position]
                if is_variable(term):
                    aligned.add(term)
        return ShardHint(True, codes, frozenset(tables)), frozenset(aligned)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _default_names(self, head: Tuple[Term, ...]) -> List[str]:
        if not head:
            return ["ans0"]
        return [f"ans{i}" for i in range(len(head))]

    def _head_name(self, term: Term, position: int) -> str:
        if is_variable(term):
            return _var_column(term)
        return f"c{position}"

    def _encode(self, constant: Constant) -> int:
        code = self.layout.dictionary.try_encode(str(constant.value))
        return IMPOSSIBLE_CODE if code is None else code

    def _atom_source(
        self, atom: Atom, alias: str
    ) -> Tuple[str, Tuple[str, ...], List[str]]:
        """FROM text, argument column names, and fixed-filter conditions."""
        branches = self.layout.atom_branches(atom)
        if len(branches) == 1:
            branch = branches[0]
            conditions = [
                f"{alias}.{column} = {value}" for column, value in branch.fixed
            ]
            return (f"{branch.table} {alias}", branch.arg_columns, conditions)
        inner: List[str] = []
        out_columns = tuple(f"c{i}" for i in range(atom.arity))
        for branch in branches:
            selects = ", ".join(
                f"{source} AS {target}"
                for source, target in zip(branch.arg_columns, out_columns)
            )
            where = " AND ".join(
                f"{column} = {value}" for column, value in branch.fixed
            )
            block = f"SELECT {selects} FROM {branch.table}"
            if where:
                block += f" WHERE {where}"
            inner.append(block)
        return (f"({' UNION ALL '.join(inner)}) {alias}", out_columns, [])

    def _cq_select(
        self, query: CQ, out_names: Sequence[str], distinct: bool
    ) -> str:
        sources: List[str] = []
        conditions: List[str] = []
        variable_expr: Dict[Variable, str] = {}
        for position, atom in enumerate(query.atoms):
            alias = f"a{position}"
            source, columns, fixed = self._atom_source(atom, alias)
            sources.append(source)
            conditions.extend(fixed)
            for arg_position, term in enumerate(atom.args):
                expr = f"{alias}.{columns[arg_position]}"
                if is_variable(term):
                    bound = variable_expr.get(term)
                    if bound is None:
                        variable_expr[term] = expr
                    else:
                        conditions.append(f"{bound} = {expr}")
                else:
                    conditions.append(f"{expr} = {self._encode(term)}")

        select_items: List[str] = []
        for name, term in zip(out_names, query.head):
            if is_variable(term):
                select_items.append(f"{variable_expr[term]} AS {name}")
            else:
                select_items.append(f"{self._encode(term)} AS {name}")
        if not query.head:
            select_items = [f"1 AS {out_names[0]}"]

        sql = "SELECT "
        if distinct:
            sql += "DISTINCT "
        sql += ", ".join(select_items)
        sql += " FROM " + ", ".join(sources)
        if conditions:
            sql += " WHERE " + " AND ".join(conditions)
        return sql

    def _join_of_components(
        self,
        head: Tuple[Term, ...],
        names: List[str],
        heads: List[Tuple[Term, ...]],
        with_clauses: Optional[List[str]] = None,
        inline_sources: Optional[List[str]] = None,
        out_names: Optional[Sequence[str]] = None,
    ) -> str:
        """SELECT DISTINCT over joined components (CTEs or inline blocks)."""
        exported: Dict[Variable, str] = {}
        conditions: List[str] = []
        for name, component_head_terms in zip(names, heads):
            for term in component_head_terms:
                if not is_variable(term):
                    continue
                expr = f"{name}.{_var_column(term)}"
                bound = exported.get(term)
                if bound is None:
                    exported[term] = expr
                else:
                    conditions.append(f"{bound} = {expr}")

        out = list(out_names) if out_names else self._default_names(head)
        select_items: List[str] = []
        for label, term in zip(out, head):
            if is_variable(term):
                select_items.append(f"{exported[term]} AS {label}")
            else:
                select_items.append(f"{self._encode(term)} AS {label}")
        if not head:
            select_items = [f"1 AS {out[0]}"]

        if inline_sources is not None:
            from_clause = ", ".join(inline_sources)
        else:
            from_clause = ", ".join(f"{name} {name}" for name in names)

        sql = ""
        if with_clauses:
            sql += "WITH " + ", ".join(with_clauses) + " "
        sql += "SELECT DISTINCT " + ", ".join(select_items)
        sql += " FROM " + from_clause
        if conditions:
            sql += " WHERE " + " AND ".join(conditions)
        return sql
