"""FOL-to-SQL translation against a storage layout.

:class:`~repro.sql.translator.SQLTranslator` renders every dialect of
Table 4 into the SQL subset both backends evaluate; JUCQ/JUSCQ use the
paper's ``WITH ... SELECT DISTINCT`` shape (§3), materializing one CTE per
reformulated fragment.
"""

from repro.sql.translator import SQLTranslator

__all__ = ["SQLTranslator"]
