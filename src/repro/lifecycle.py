"""Interpreter-shutdown detection for fork-happy subsystems.

The process substrate forks shard workers and the replica healer
rebuilds whole backends from daemon threads. Both are safe while the
program runs, but lethal during interpreter exit: a worker forked from
a daemon thread while atexit callbacks drain inherits a dying runtime
and exits immediately, its supervisor respawns it, and
``multiprocessing.util._exit_function`` — which joins live children
with **no timeout** — never sees the process table drain. The result is
an interpreter that prints its final line and then hangs forever in
``waitpid`` while daemon threads churn fresh processes underneath it.

The cure is a single process-wide latch. The atexit backstops that
close leaked workers and replica sets (registered lazily at first use,
so LIFO ordering runs them *before* ``multiprocessing``'s own exit
hook) flip it as their first action; every code path that would fork a
new process or rebuild a replica checks it and refuses instead of
forking. Supervisors then fail their respawn attempts fast, circuit
breakers trip, healers go quiet, and exit completes.
"""

from __future__ import annotations

import sys
import threading

_exiting = False


def mark_interpreter_exiting() -> None:
    """Latch shutdown: called by the atexit backstops before teardown."""
    global _exiting
    _exiting = True


def interpreter_exiting() -> bool:
    """Whether forking a new process now would outlive the interpreter.

    True once any teardown backstop has run, once CPython finalization
    has begun, or once the main thread has finished — from that point a
    daemon thread must shut down rather than spawn replacement work.
    """
    return (
        _exiting
        or sys.is_finalizing()
        or not threading.main_thread().is_alive()
    )
