"""repro — cost-based cover reformulation for ontology-based data access.

A from-scratch Python reproduction of:

    Damian Bursztyn, François Goasdoué, Ioana Manolescu.
    "Teaching an RDBMS about ontological constraints." VLDB 2016.

The package implements DL-LiteR knowledge bases, the PerfectRef CQ-to-UCQ
reformulation, the paper's cover framework (safe covers, the root cover,
the Lq lattice, generalized covers Gq), the EDL/GDL cost-based search
algorithms, SQL translation over two storage layouts, two runnable RDBMS
backends (SQLite and a from-scratch in-memory engine with a cost-based
optimizer), and the LUBM∃-style benchmark used by the paper's evaluation.

Quickstart
----------
>>> from repro import obda
>>> system = obda.OBDASystem.from_text(tbox_text, abox_text)
>>> answers = system.answer("q(x) <- PhDStudent(x), worksWith(y, x)")

See ``examples/quickstart.py`` for a complete walk-through.
"""

__version__ = "1.0.0"

__all__ = [
    "dllite",
    "queries",
    "reformulation",
    "covers",
    "cost",
    "optimizer",
    "sql",
    "engine",
    "storage",
    "serving",
    "obda",
    "bench",
]
