"""End-to-end OBDA query answering (the system of Figure 1).

:class:`~repro.obda.system.OBDASystem` wires everything together: a
DL-LiteR KB, a storage layout loaded into a backend, reformulation
strategies (plain UCQ, root-cover JUCQ, EDL, GDL with either cost
estimator), SQL translation and answer decoding.
"""

from repro.obda.system import AnswerReport, OBDASystem, ReformulationChoice

__all__ = ["AnswerReport", "OBDASystem", "ReformulationChoice"]
