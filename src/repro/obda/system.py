"""The OBDA facade: load a KB once, answer queries many ways.

The pipeline per query (Figure 1 of the paper):

1. choose a *strategy* — how to pick the FOL reformulation:
   ``"ucq"`` (the classical single UCQ), ``"croot"`` (the fixed root-cover
   JUCQ), ``"gdl"`` / ``"edl"`` (cost-driven search over Lq ∪ Gq);
2. choose a *cost estimator* for the search — ``"ext"`` (the external
   model) or ``"rdbms"`` (the backend's EXPLAIN);
3. translate the chosen reformulation to SQL over the loaded layout;
4. evaluate on the backend; decode the dictionary-encoded answers.

Every step is timed; :class:`AnswerReport` carries the numbers the
benchmark harness prints.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple, Union

from repro.covers.reformulate import (
    cover_based_reformulation,
    cover_based_uscq_reformulation,
)
from repro.covers.safety import root_cover, single_fragment_cover
from repro.cost.estimators import (
    CoverCostEstimator,
    ExternalCoverCost,
    RDBMSCoverCost,
)
from repro.cost.model import ExternalCostModel
from repro.cost.statistics import DataStatistics
from repro.dllite.abox import ABox
from repro.dllite.kb import KnowledgeBase
from repro.dllite.parser import parse_abox, parse_query, parse_tbox
from repro.dllite.tbox import TBox
from repro.optimizer.edl import edl_search
from repro.optimizer.gdl import gdl_search
from repro.optimizer.result import SearchResult
from repro.queries.cq import CQ
from repro.reformulation.perfectref import reformulate_to_ucq
from repro.sql.translator import SQLTranslator
from repro.storage.layouts import RDFLayout, SimpleLayout
from repro.storage.memory_backend import MemoryBackend
from repro.storage.sqlite_backend import SQLiteBackend

STRATEGIES = ("ucq", "croot", "gdl", "edl")
COST_MODES = ("ext", "rdbms")


@dataclass
class ReformulationChoice:
    """The reformulation a strategy picked for a query."""

    strategy: str
    reformulation: object
    sql: str
    search: Optional[SearchResult] = None
    reformulation_seconds: float = 0.0


@dataclass
class AnswerReport:
    """Answers plus per-stage timings."""

    query: CQ
    choice: ReformulationChoice
    answers: Set[Tuple]
    execution_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.choice.reformulation_seconds + self.execution_seconds


class OBDASystem:
    """A loaded OBDA instance: KB + layout + backend + estimators."""

    def __init__(
        self,
        tbox: TBox,
        abox: ABox,
        backend: Union[str, object] = "memory",
        layout: Union[str, object] = "simple",
        rdf_width: int = 8,
        check_consistency: bool = False,
    ) -> None:
        self.kb = KnowledgeBase(tbox, abox)
        if check_consistency:
            self.kb.check_consistency()

        if isinstance(layout, str):
            if layout == "simple":
                self.layout = SimpleLayout()
            elif layout == "rdf":
                self.layout = RDFLayout(width=rdf_width)
            else:
                raise ValueError(f"unknown layout {layout!r}")
        else:
            self.layout = layout

        if isinstance(backend, str):
            if backend == "memory":
                self.backend = MemoryBackend()
            elif backend == "sqlite":
                self.backend = SQLiteBackend()
            else:
                raise ValueError(f"unknown backend {backend!r}")
        else:
            self.backend = backend

        self.backend.load(self.layout.build(abox, tbox))
        self.translator = SQLTranslator(self.layout)
        self.statistics = DataStatistics.from_abox(abox)
        self.cost_model = ExternalCostModel(self.statistics)

    # ------------------------------------------------------------------
    @classmethod
    def from_text(
        cls, tbox_text: str, abox_text: str, **kwargs
    ) -> "OBDASystem":
        """Build a system from the textual KB syntax."""
        return cls(parse_tbox(tbox_text), parse_abox(abox_text), **kwargs)

    # ------------------------------------------------------------------
    def _estimator(
        self, cost: str, minimize: bool, use_uscq: bool
    ) -> CoverCostEstimator:
        if cost == "ext":
            return ExternalCoverCost(
                self.kb.tbox, self.cost_model, minimize=minimize, use_uscq=use_uscq
            )
        if cost == "rdbms":
            return RDBMSCoverCost(
                self.kb.tbox,
                self.backend,
                self.translator,
                minimize=minimize,
                use_uscq=use_uscq,
            )
        raise ValueError(f"unknown cost mode {cost!r}; expected one of {COST_MODES}")

    def reformulate(
        self,
        query: Union[str, CQ],
        strategy: str = "gdl",
        cost: str = "ext",
        minimize: bool = True,
        use_uscq: bool = False,
        time_budget_seconds: Optional[float] = None,
        generalized_limit: Optional[int] = 20_000,
    ) -> ReformulationChoice:
        """Pick a FOL reformulation for *query* and translate it to SQL."""
        if isinstance(query, str):
            query = parse_query(query)
        started = time.perf_counter()
        search: Optional[SearchResult] = None

        if strategy == "ucq":
            reformulation = reformulate_to_ucq(query, self.kb.tbox, minimize=minimize)
        elif strategy == "croot":
            cover = root_cover(query, self.kb.tbox)
            builder = (
                cover_based_uscq_reformulation if use_uscq else cover_based_reformulation
            )
            reformulation = builder(cover, self.kb.tbox, minimize=minimize)
        elif strategy in ("gdl", "edl"):
            estimator = self._estimator(cost, minimize, use_uscq)
            if strategy == "gdl":
                search = gdl_search(
                    query,
                    self.kb.tbox,
                    estimator,
                    time_budget_seconds=time_budget_seconds,
                )
            else:
                search = edl_search(
                    query,
                    self.kb.tbox,
                    estimator,
                    generalized_limit=generalized_limit,
                )
            reformulation = estimator.reformulate(search.cover)
        else:
            raise ValueError(
                f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
            )

        sql = self.translator.translate(reformulation)
        elapsed = time.perf_counter() - started
        return ReformulationChoice(
            strategy=strategy,
            reformulation=reformulation,
            sql=sql,
            search=search,
            reformulation_seconds=elapsed,
        )

    # ------------------------------------------------------------------
    def answer(
        self,
        query: Union[str, CQ],
        strategy: str = "gdl",
        cost: str = "ext",
        minimize: bool = True,
        use_uscq: bool = False,
        time_budget_seconds: Optional[float] = None,
    ) -> AnswerReport:
        """Answer *query*: reformulate, translate, evaluate, decode."""
        if isinstance(query, str):
            query = parse_query(query)
        choice = self.reformulate(
            query,
            strategy=strategy,
            cost=cost,
            minimize=minimize,
            use_uscq=use_uscq,
            time_budget_seconds=time_budget_seconds,
        )
        started = time.perf_counter()
        rows = self.backend.execute(choice.sql)
        execution = time.perf_counter() - started
        answers = self._decode(query, rows)
        return AnswerReport(
            query=query,
            choice=choice,
            answers=answers,
            execution_seconds=execution,
        )

    def execute_choice(self, query: CQ, choice: ReformulationChoice) -> Set[Tuple]:
        """Evaluate an already-made reformulation choice (bench harness)."""
        rows = self.backend.execute(choice.sql)
        return self._decode(query, rows)

    def _decode(self, query: CQ, rows: List[Tuple]) -> Set[Tuple]:
        if not query.head:
            return {()} if rows else set()
        return {self.layout.dictionary.decode_row(row) for row in rows}
