"""The OBDA facade: load a KB once, answer queries many ways.

The pipeline per query (Figure 1 of the paper):

1. choose a *strategy* — how to pick the FOL reformulation:
   ``"ucq"`` (the classical single UCQ), ``"croot"`` (the fixed root-cover
   JUCQ), ``"gdl"`` / ``"edl"`` (cost-driven search over Lq ∪ Gq);
2. choose a *cost estimator* for the search — ``"ext"`` (the external
   model) or ``"rdbms"`` (the backend's EXPLAIN);
3. translate the chosen reformulation to SQL over the loaded layout;
4. evaluate on the backend; decode the dictionary-encoded answers.

Every step is timed; :class:`AnswerReport` carries the numbers the
benchmark harness prints.

Two layers of shared work make repeated and batched traffic cheap:

* a fragment-level :class:`~repro.cost.cache.ReformulationCache` shared by
  every estimator and strategy this system creates, so a fragment query is
  run through PerfectRef once per system, not once per cover;
* a :class:`~repro.serving.plan_cache.PlanCache` of finished
  :class:`ReformulationChoice` objects, so answering a query a second time
  skips search and SQL translation entirely (see :meth:`OBDASystem.
  answer_many` for the batched entry point).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.covers.reformulate import (
    cover_based_reformulation,
    cover_based_uscq_reformulation,
)
from repro.covers.safety import root_cover, single_fragment_cover
from repro.cost.estimators import (
    CoverCostEstimator,
    ExternalCoverCost,
    RDBMSCoverCost,
)
from repro.cost.cache import DEFAULT_FRAGMENT_CACHE_CAPACITY, ReformulationCache
from repro.cost.model import ExternalCostModel
from repro.cost.statistics import DataStatistics
from repro.dllite.abox import ABox
from repro.dllite.kb import KnowledgeBase
from repro.dllite.parser import parse_abox, parse_query, parse_tbox
from repro.dllite.tbox import TBox
from repro.optimizer.edl import edl_search
from repro.optimizer.gdl import gdl_search
from repro.optimizer.result import SearchResult
from repro.queries.cq import CQ
from repro.reformulation.perfectref import reformulate_to_ucq
from repro.serving.plan_cache import PlanCache
from repro.sql.translator import SQLTranslator
from repro.storage.layouts import RDFLayout, SimpleLayout
from repro.storage.memory_backend import MemoryBackend
from repro.storage.sqlite_backend import SQLiteBackend

STRATEGIES = ("ucq", "croot", "gdl", "edl")
COST_MODES = ("ext", "rdbms")

#: Default cap on the generalized covers EDL enumerates. Kept as a named
#: constant because the plan cache only stores plans computed with this
#: default (the plan key deliberately excludes the knob).
DEFAULT_GENERALIZED_LIMIT = 20_000


@dataclass
class ReformulationChoice:
    """The reformulation a strategy picked for a query."""

    strategy: str
    reformulation: object
    sql: str
    search: Optional[SearchResult] = None
    reformulation_seconds: float = 0.0
    plan_cache_hit: bool = False


@dataclass
class AnswerReport:
    """Answers plus per-stage timings and cache accounting."""

    query: CQ
    choice: ReformulationChoice
    answers: Set[Tuple]
    execution_seconds: float = 0.0
    #: Snapshot of the system's plan- and fragment-cache counters at
    #: answer time: ``{"plan": {...}, "fragments": {...}}``.
    cache_stats: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def plan_cache_hit(self) -> bool:
        """Whether this answer reused a cached plan (no search, no SQL gen)."""
        return self.choice.plan_cache_hit

    @property
    def total_seconds(self) -> float:
        return self.choice.reformulation_seconds + self.execution_seconds


class OBDASystem:
    """A loaded OBDA instance: KB + layout + backend + estimators."""

    def __init__(
        self,
        tbox: TBox,
        abox: ABox,
        backend: Union[str, object] = "memory",
        layout: Union[str, object] = "simple",
        rdf_width: int = 8,
        check_consistency: bool = False,
        plan_cache_size: int = 256,
    ) -> None:
        self.kb = KnowledgeBase(tbox, abox)
        if check_consistency:
            self.kb.check_consistency()

        if isinstance(layout, str):
            if layout == "simple":
                self.layout = SimpleLayout()
            elif layout == "rdf":
                self.layout = RDFLayout(width=rdf_width)
            else:
                raise ValueError(f"unknown layout {layout!r}")
        else:
            self.layout = layout

        if isinstance(backend, str):
            if backend == "memory":
                self.backend = MemoryBackend()
            elif backend == "sqlite":
                self.backend = SQLiteBackend()
            else:
                raise ValueError(f"unknown backend {backend!r}")
        else:
            self.backend = backend

        self.backend.load(self.layout.build(abox, tbox))
        self.translator = SQLTranslator(self.layout)
        self.statistics = DataStatistics.from_abox(abox)
        self.cost_model = ExternalCostModel(self.statistics)

        #: Fragment reformulations shared across strategies, cost modes and
        #: queries for the lifetime of this system (one TBox, so sound);
        #: LRU-bounded so long-lived serving processes stay bounded too.
        self.reformulation_cache = ReformulationCache(
            capacity=DEFAULT_FRAGMENT_CACHE_CAPACITY
        )
        #: Finished plans: repeated queries skip search and translation.
        self.plan_cache = PlanCache(plan_cache_size)
        # Single-flight guards: concurrent answer_many() workers asking for
        # the same (not yet cached) plan serialize per key, so one computes
        # and the rest hit the cache instead of racing duplicate searches.
        self._plan_locks: Dict[Tuple, threading.Lock] = {}
        self._plan_locks_guard = threading.Lock()

    # ------------------------------------------------------------------
    @classmethod
    def from_text(
        cls, tbox_text: str, abox_text: str, **kwargs
    ) -> "OBDASystem":
        """Build a system from the textual KB syntax."""
        return cls(parse_tbox(tbox_text), parse_abox(abox_text), **kwargs)

    # ------------------------------------------------------------------
    def _estimator(
        self, cost: str, minimize: bool, use_uscq: bool
    ) -> CoverCostEstimator:
        if cost == "ext":
            return ExternalCoverCost(
                self.kb.tbox,
                self.cost_model,
                minimize=minimize,
                use_uscq=use_uscq,
                fragment_cache=self.reformulation_cache,
            )
        if cost == "rdbms":
            return RDBMSCoverCost(
                self.kb.tbox,
                self.backend,
                self.translator,
                minimize=minimize,
                use_uscq=use_uscq,
                fragment_cache=self.reformulation_cache,
            )
        raise ValueError(f"unknown cost mode {cost!r}; expected one of {COST_MODES}")

    def _plan_key(
        self, query: CQ, strategy: str, cost: str, minimize: bool, use_uscq: bool
    ) -> Tuple:
        """The plan-cache key: canonical query plus every plan-shaping flag."""
        return (query.canonical_key(), strategy, cost, minimize, use_uscq)

    def reformulate(
        self,
        query: Union[str, CQ],
        strategy: str = "gdl",
        cost: str = "ext",
        minimize: bool = True,
        use_uscq: bool = False,
        time_budget_seconds: Optional[float] = None,
        generalized_limit: Optional[int] = DEFAULT_GENERALIZED_LIMIT,
        use_plan_cache: bool = True,
    ) -> ReformulationChoice:
        """Pick a FOL reformulation for *query* and translate it to SQL.

        With ``use_plan_cache`` (the default) the finished choice is stored
        in — and served from — the system's :class:`PlanCache`, so a
        repeated query skips search and translation entirely; concurrent
        requests for the same uncached plan are single-flighted (one
        computes, the rest wait and hit). Calls with a time budget or a
        non-default generalized cap bypass the cache (the plan key
        deliberately excludes those knobs, and a budget-truncated plan
        must not be served as the full one).
        """
        if isinstance(query, str):
            query = parse_query(query)
        cacheable = (
            use_plan_cache
            and time_budget_seconds is None
            and generalized_limit == DEFAULT_GENERALIZED_LIMIT
        )
        if not cacheable:
            return self._compute_choice(
                query,
                strategy,
                cost,
                minimize,
                use_uscq,
                time_budget_seconds,
                generalized_limit,
            )
        plan_key = self._plan_key(query, strategy, cost, minimize, use_uscq)
        with self._plan_locks_guard:
            flight_lock = self._plan_locks.setdefault(plan_key, threading.Lock())
        try:
            with flight_lock:
                lookup_started = time.perf_counter()
                cached = self.plan_cache.get(plan_key)
                if cached is not None:
                    return replace(
                        cached,
                        plan_cache_hit=True,
                        reformulation_seconds=time.perf_counter() - lookup_started,
                    )
                choice = self._compute_choice(
                    query,
                    strategy,
                    cost,
                    minimize,
                    use_uscq,
                    time_budget_seconds,
                    generalized_limit,
                )
                self.plan_cache.put(plan_key, choice)
                return choice
        finally:
            with self._plan_locks_guard:
                self._plan_locks.pop(plan_key, None)

    def _compute_choice(
        self,
        query: CQ,
        strategy: str,
        cost: str,
        minimize: bool,
        use_uscq: bool,
        time_budget_seconds: Optional[float],
        generalized_limit: Optional[int],
    ) -> ReformulationChoice:
        """The uncached reformulate-translate pipeline."""
        started = time.perf_counter()
        search: Optional[SearchResult] = None

        if strategy == "ucq":
            ucq_key = (query.head, query.atoms, minimize)
            reformulation = self.reformulation_cache.get(ucq_key)
            if reformulation is None:
                reformulation = reformulate_to_ucq(
                    query, self.kb.tbox, minimize=minimize
                )
                self.reformulation_cache[ucq_key] = reformulation
        elif strategy == "croot":
            cover = root_cover(query, self.kb.tbox)
            builder = (
                cover_based_uscq_reformulation if use_uscq else cover_based_reformulation
            )
            reformulation = builder(
                cover,
                self.kb.tbox,
                minimize=minimize,
                cache=self.reformulation_cache,
            )
        elif strategy in ("gdl", "edl"):
            estimator = self._estimator(cost, minimize, use_uscq)
            if strategy == "gdl":
                search = gdl_search(
                    query,
                    self.kb.tbox,
                    estimator,
                    time_budget_seconds=time_budget_seconds,
                )
            else:
                search = edl_search(
                    query,
                    self.kb.tbox,
                    estimator,
                    generalized_limit=generalized_limit,
                )
            reformulation = estimator.reformulate(search.cover)
        else:
            raise ValueError(
                f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
            )

        sql = self.translator.translate(reformulation)
        elapsed = time.perf_counter() - started
        return ReformulationChoice(
            strategy=strategy,
            reformulation=reformulation,
            sql=sql,
            search=search,
            reformulation_seconds=elapsed,
        )

    # ------------------------------------------------------------------
    def answer(
        self,
        query: Union[str, CQ],
        strategy: str = "gdl",
        cost: str = "ext",
        minimize: bool = True,
        use_uscq: bool = False,
        time_budget_seconds: Optional[float] = None,
        use_plan_cache: bool = True,
    ) -> AnswerReport:
        """Answer *query*: reformulate, translate, evaluate, decode."""
        if isinstance(query, str):
            query = parse_query(query)
        choice = self.reformulate(
            query,
            strategy=strategy,
            cost=cost,
            minimize=minimize,
            use_uscq=use_uscq,
            time_budget_seconds=time_budget_seconds,
            use_plan_cache=use_plan_cache,
        )
        started = time.perf_counter()
        rows = self.backend.execute(choice.sql)
        execution = time.perf_counter() - started
        answers = self._decode(query, rows)
        return AnswerReport(
            query=query,
            choice=choice,
            answers=answers,
            execution_seconds=execution,
            cache_stats={
                "plan": self.plan_cache.stats(),
                "fragments": self.reformulation_cache.stats(),
            },
        )

    def answer_many(
        self,
        queries: Sequence[Union[str, CQ]],
        strategy: str = "gdl",
        cost: str = "ext",
        minimize: bool = True,
        use_uscq: bool = False,
        use_plan_cache: bool = True,
        max_workers: Optional[int] = None,
    ) -> List[AnswerReport]:
        """Answer a batch of queries, reports in input order.

        With ``max_workers`` > 1 the batch runs on a thread pool; the plan
        and fragment caches are thread-safe, fresh estimators are built per
        call, and :class:`~repro.storage.sqlite_backend.SQLiteBackend`
        guards its connection — so concurrent batches return exactly the
        sequential answers. Duplicate queries in one batch are where the
        plan cache shines: one cold plan, the rest hits.
        """
        parsed = [
            parse_query(query) if isinstance(query, str) else query
            for query in queries
        ]

        def one(query: CQ) -> AnswerReport:
            return self.answer(
                query,
                strategy=strategy,
                cost=cost,
                minimize=minimize,
                use_uscq=use_uscq,
                use_plan_cache=use_plan_cache,
            )

        if max_workers is not None and max_workers > 1 and len(parsed) > 1:
            with ThreadPoolExecutor(max_workers=max_workers) as pool:
                return list(pool.map(one, parsed))
        return [one(query) for query in parsed]

    def execute_choice(self, query: CQ, choice: ReformulationChoice) -> Set[Tuple]:
        """Evaluate an already-made reformulation choice (bench harness)."""
        rows = self.backend.execute(choice.sql)
        return self._decode(query, rows)

    def _decode(self, query: CQ, rows: List[Tuple]) -> Set[Tuple]:
        if not query.head:
            return {()} if rows else set()
        return {self.layout.dictionary.decode_row(row) for row in rows}

    # ------------------------------------------------------------------
    def cache_stats(self) -> Dict[str, Dict[str, int]]:
        """Current plan- and fragment-cache counters."""
        return {
            "plan": self.plan_cache.stats(),
            "fragments": self.reformulation_cache.stats(),
        }

    def close(self) -> None:
        """Release the backend's resources and drop cached plans. Idempotent."""
        self.backend.close()
        self.plan_cache.clear()
        self.reformulation_cache.clear()

    def __enter__(self) -> "OBDASystem":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()
