"""The OBDA facade: load a KB once, answer queries many ways.

The pipeline per query (Figure 1 of the paper):

1. choose a *strategy* — how to pick the FOL reformulation:
   ``"ucq"`` (the classical single UCQ), ``"croot"`` (the fixed root-cover
   JUCQ), ``"gdl"`` / ``"edl"`` (cost-driven search over Lq ∪ Gq);
2. choose a *cost estimator* for the search — ``"ext"`` (the external
   model) or ``"rdbms"`` (the backend's EXPLAIN);
3. translate the chosen reformulation to SQL over the loaded layout;
4. evaluate on the backend; decode the dictionary-encoded answers.

Every step is timed; :class:`AnswerReport` carries the numbers the
benchmark harness prints.

Two further strategies answer over a **materialized saturation** (see
:mod:`repro.materialize`): ``"sat"`` chases the TBox into the backend as
extra stored tuples and runs the *original* CQ unchanged; ``"auto"``
routes each query to saturation or the cheapest reformulation by cost.

Three layers of shared work make repeated and batched traffic cheap:

* a fragment-level :class:`~repro.cost.cache.ReformulationCache` shared by
  every estimator and strategy this system creates, so a fragment query is
  run through PerfectRef once per system, not once per cover;
* a cover-level :class:`~repro.cost.cache.CostCache` shared the same way,
  so a cover priced by one search is free for the next;
* a :class:`~repro.serving.plan_cache.PlanCache` of finished
  :class:`ReformulationChoice` objects, so answering a query a second time
  skips search and SQL translation entirely (see :meth:`OBDASystem.
  answer_many` for the batched entry point).

The system is also **writable**: :meth:`OBDASystem.insert_facts` /
:meth:`OBDASystem.delete_facts` update the ABox, incrementally maintain
the saturation (delta chase on insert, delete/re-derive on delete), and
advance a monotonically increasing **data epoch**. Every cache entry
whose validity depends on the data — cost-picked plans, cover costs,
statistics-derived estimates — is stamped with the epoch it was computed
under and lazily dropped when read under a newer one; data-independent
entries (UCQ/Croot/sat plans, fragment reformulations) survive every
write. A write therefore never leaves a stale plan or statistic servable,
and never costs a full-cache flush.
"""

from __future__ import annotations

import logging
import os
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.covers.reformulate import (
    cover_based_reformulation,
    cover_based_uscq_reformulation,
)
from repro.covers.safety import root_cover, single_fragment_cover
from repro.cost.estimators import (
    CoverCostEstimator,
    ExternalCoverCost,
    RDBMSCoverCost,
)
from repro.cost.cache import (
    CostCache,
    DEFAULT_FRAGMENT_CACHE_CAPACITY,
    ReformulationCache,
)
from repro.cost.model import ExternalCostModel
from repro.cost.statistics import DataStatistics
from repro.dllite.abox import (
    ABox,
    Assertion,
    ConceptAssertion,
    RoleAssertion,
)
from repro.dllite.kb import InconsistentKBError, KnowledgeBase
from repro.dllite.parser import parse_abox, parse_query, parse_tbox
from repro.dllite.saturation import ChaseTruncatedError, is_null
from repro.dllite.tbox import TBox
from repro.engine.database import DB2_STATEMENT_LIMIT
from repro.materialize.router import RoutingDecision, SaturationRouter, pick
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.trace import (
    NO_SPAN,
    QueryTrace,
    Tracer,
    activate,
    current_span,
    trace_enabled_default,
)
from repro.materialize.saturator import Fact, Saturator, fact_of as _fact_of
from repro.optimizer.edl import edl_search
from repro.optimizer.gdl import gdl_search
from repro.optimizer.result import SearchResult
from repro.queries.cq import CQ
from repro.queries.terms import is_variable
from repro.reformulation.perfectref import (
    perfectref_invocations,
    reformulate_to_ucq,
)
from repro.serving.concurrency import (
    AdmissionController,
    QueryTimeoutError,
    ReadWriteBarrier,
    deadline_scope,
)
from repro.serving.plan_cache import PlanCache
from repro.serving.replicas import ReplicaSet
from repro.sql.translator import SQLTranslator
from repro.storage.layouts import LayoutData, RDFLayout, SimpleLayout, TableSpec
from repro.storage.memory_backend import MemoryBackend
from repro.storage.replication import EpochDelta, ReplicationLog
from repro.storage.sharded_backend import ShardedBackend
from repro.storage.sqlite_backend import SQLiteBackend

STRATEGIES = ("ucq", "croot", "gdl", "edl", "sat", "auto")
COST_MODES = ("ext", "rdbms")

#: Environment knob: default shard count for systems constructed with a
#: *named* backend and no explicit ``shards`` argument. Values below 2
#: keep the plain single backend (the structurally unchanged serial
#: path), mirroring ``REPRO_WORKERS=1``.
SHARDS_ENV = "REPRO_SHARDS"

#: Environment knob: slow-query threshold in milliseconds. Any query
#: whose reformulation + execution total meets it is logged on the
#: ``repro.slow_query`` logger as a structured WARNING record with the
#: query's trace attached (when tracing is on). Unset = no slow log.
SLOW_QUERY_ENV = "REPRO_SLOW_QUERY_MS"

#: Environment knob: default replica count for systems constructed with
#: a *named* backend and no explicit ``replicas`` argument. N >= 1
#: builds N read-only replica backends fed asynchronously by the write
#: path's epoch-tagged deltas and routes every read across them; unset
#: (or < 1) keeps the structurally unchanged single-backend read path.
REPLICAS_ENV = "REPRO_REPLICAS"

#: Environment knob: how long a read carrying an epoch token waits for
#: its replica to catch up before failing with a
#: :class:`~repro.serving.replicas.ReplicaLagTimeoutError`, in
#: milliseconds. Default 5000.
REPLICA_LAG_ENV = "REPRO_REPLICA_LAG_MS"

#: Environment knob: per-replica admission bound (queries in flight on
#: one replica before the router sheds to its siblings). Default 8.
REPLICA_IN_FLIGHT_ENV = "REPRO_REPLICA_MAX_IN_FLIGHT"

#: Default per-replica admission bound (see ``REPRO_REPLICA_MAX_IN_FLIGHT``).
DEFAULT_REPLICA_IN_FLIGHT = 8

#: Default token-wait deadline in seconds (see ``REPRO_REPLICA_LAG_MS``).
DEFAULT_REPLICA_LAG_TIMEOUT = 5.0

#: The slow-query logger; handlers attached here receive one record per
#: slow query with ``query_ms`` / ``strategy`` / ``query_trace`` extras.
_SLOW_QUERY_LOGGER = logging.getLogger("repro.slow_query")


def _env_shards() -> Optional[int]:
    raw = os.environ.get(SHARDS_ENV)
    if raw is None:
        return None
    try:
        count = int(raw)
    except ValueError:
        return None
    return count if count >= 2 else None


def _env_slow_query_ms() -> Optional[float]:
    raw = os.environ.get(SLOW_QUERY_ENV)
    if raw is None:
        return None
    try:
        threshold = float(raw)
    except ValueError:
        return None
    return threshold if threshold >= 0 else None


def _env_replicas() -> Optional[int]:
    raw = os.environ.get(REPLICAS_ENV)
    if raw is None:
        return None
    try:
        count = int(raw)
    except ValueError:
        return None
    return count if count >= 1 else None


def _env_replica_lag_seconds() -> float:
    raw = os.environ.get(REPLICA_LAG_ENV)
    if raw is None:
        return DEFAULT_REPLICA_LAG_TIMEOUT
    try:
        millis = float(raw)
    except ValueError:
        return DEFAULT_REPLICA_LAG_TIMEOUT
    return millis / 1000.0 if millis >= 0 else DEFAULT_REPLICA_LAG_TIMEOUT


def _env_replica_in_flight() -> int:
    raw = os.environ.get(REPLICA_IN_FLIGHT_ENV)
    if raw is None:
        return DEFAULT_REPLICA_IN_FLIGHT
    try:
        bound = int(raw)
    except ValueError:
        return DEFAULT_REPLICA_IN_FLIGHT
    return bound if bound >= 1 else DEFAULT_REPLICA_IN_FLIGHT

#: Strategies whose chosen reformulation does not depend on data
#: statistics; their cached plans survive writes (epoch stamp ``None``).
DATA_INDEPENDENT_STRATEGIES = frozenset({"ucq", "croot", "sat"})

#: Default cap on the generalized covers EDL enumerates. Kept as a named
#: constant because the plan cache only stores plans computed with this
#: default (the plan key deliberately excludes the knob).
DEFAULT_GENERALIZED_LIMIT = 20_000


def _describe_search(span, search: "SearchResult") -> None:
    """Fold a cover search's effort counters onto its trace span: the
    cost-estimation side of the paper's pipeline (candidates considered,
    estimator calls, chosen cost). No-op with tracing off."""
    if not span.enabled:
        return
    span.set(
        safe_covers_explored=search.safe_covers_explored,
        generalized_covers_explored=search.generalized_covers_explored,
        cost_estimations=search.cost_estimations,
        est_cost=search.cost,
        hit_time_budget=search.hit_time_budget,
    )


@dataclass
class ReformulationChoice:
    """The reformulation a strategy picked for a query."""

    strategy: str
    reformulation: object
    sql: str
    search: Optional[SearchResult] = None
    reformulation_seconds: float = 0.0
    plan_cache_hit: bool = False
    #: For ``strategy="auto"``: the costs compared and the winner.
    routing: Optional[RoutingDecision] = None
    #: On a sharded backend: the precomputed shard route (pruned /
    #: scatter / gather) the execution should take, derived from the
    #: logical reformulation at plan time so cached plans skip the
    #: SQL-level route analysis. ``None`` lets the backend analyze.
    shard_route: Optional[object] = None


@dataclass
class AnswerReport:
    """Answers plus per-stage timings and cache accounting."""

    #: The answered query; on a collected parse failure, the raw input.
    query: Union[CQ, str]
    choice: Optional[ReformulationChoice]
    answers: Set[Tuple]
    execution_seconds: float = 0.0
    #: Snapshot of the system's plan- and fragment-cache counters at
    #: answer time: ``{"plan": {...}, "fragments": {...}}``.
    cache_stats: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: The per-query trace (:class:`repro.obs.trace.QueryTrace`) when
    #: the system was constructed with tracing on (``trace=True`` /
    #: ``REPRO_TRACE=1``); ``None`` otherwise.
    trace: Optional[QueryTrace] = None
    #: The exception this query raised, when ``answer_many`` ran with
    #: ``on_error="collect"``; ``None`` on success (then ``choice`` is set).
    error: Optional[BaseException] = None
    #: The **exact data epoch this answer observed** — the backend state
    #: the rows were read from, frozen for the duration of the read by
    #: the serving barrier. On a replicated system this is the chosen
    #: replica's applied epoch (always ``>=`` the read's ``min_epoch``
    #: token); usable as a session token for subsequent reads.
    epoch: Optional[int] = None
    #: Which replica served the read (``None`` on the primary path).
    replica: Optional[int] = None

    @property
    def failed(self) -> bool:
        """True when this report carries an error instead of answers."""
        return self.error is not None

    @property
    def plan_cache_hit(self) -> bool:
        """Whether this answer reused a cached plan (no search, no SQL gen)."""
        return self.choice is not None and self.choice.plan_cache_hit

    @property
    def total_seconds(self) -> float:
        """Reformulation plus execution time for this answer."""
        reformulation = self.choice.reformulation_seconds if self.choice else 0.0
        return reformulation + self.execution_seconds


class OBDASystem:
    """A loaded OBDA instance: KB + layout + backend + estimators.

    The single public entry point of the reproduction (Figure 1 of the
    paper): construct one with a TBox and an ABox, then call
    :meth:`answer` (one query), :meth:`answer_many` (a batch, optionally
    dispatched concurrently over the serving executor with admission
    control and per-query deadlines), and :meth:`insert_facts` /
    :meth:`delete_facts` (the epoch-based write path; writes take an
    exclusive barrier that drains in-flight queries before the backend
    mutates). Concurrency knobs: ``engine_workers`` sets the in-process
    engine's morsel-parallel degree (memory backend only),
    ``serving_workers`` the default ``answer_many`` thread count,
    ``max_in_flight`` / ``query_timeout_seconds`` the admission bound
    and per-query deadline every batch inherits.

    Storage scaling: ``shards=N`` (or ``REPRO_SHARDS>=2`` in the
    environment) hash-partitions every table across N child backends of
    the named kind behind a :class:`~repro.storage.sharded_backend.
    ShardedBackend` — shard-key-bound queries prune to a single shard,
    co-partitioned queries scatter-gather, and everything else falls
    back to a gathered coordinator; answers are identical to the
    unsharded system at any shard count. ``shard_workers`` bounds the
    scatter fan-out pool. ``executor`` picks the execution substrate
    (``"serial"`` / ``"thread"`` / ``"process"`` / ``"auto"``; default
    ``REPRO_EXECUTOR``): on ``process``, a sharded memory/sqlite system
    hosts each shard's engine in a long-lived forked worker and scatter
    results return as columnar shared-memory batches — real parallelism
    on stock CPython, with answers still byte-identical to serial.

    Replicated serving: ``replicas=N`` (or ``REPRO_REPLICAS>=1``)
    builds N read-only replicas of the whole backend (same kind,
    shards and substrate), fed asynchronously by the write path's
    epoch-tagged deltas through a bounded replication log, and routes
    every read across them with least-loaded selection and per-replica
    admission control. Session consistency rides epoch tokens
    (:meth:`epoch_token`, ``answer(..., min_epoch=tok)``); the default
    token is the primary's current epoch, so in-process callers keep
    exact read-your-writes with answers byte-identical to the
    unreplicated system.
    """

    def __init__(
        self,
        tbox: TBox,
        abox: ABox,
        backend: Union[str, object] = "memory",
        layout: Union[str, object] = "simple",
        rdf_width: int = 8,
        check_consistency: bool = False,
        plan_cache_size: int = 256,
        materialize: bool = False,
        max_generations: int = 4,
        engine_workers: Optional[int] = None,
        serving_workers: Optional[int] = None,
        max_in_flight: Optional[int] = None,
        query_timeout_seconds: Optional[float] = None,
        shards: Optional[int] = None,
        shard_workers: Optional[int] = None,
        executor: Optional[str] = None,
        trace: Optional[bool] = None,
        slow_query_ms: Optional[float] = None,
        replicas: Optional[int] = None,
        replica_lag_timeout_seconds: Optional[float] = None,
        replica_max_in_flight: Optional[int] = None,
    ) -> None:
        self.kb = KnowledgeBase(tbox, abox)
        #: When True, every insert_facts re-validates the disjointness
        #: constraints (deletes cannot introduce violations), so the
        #: construction-time guarantee survives the write workload.
        self.check_consistency = check_consistency
        if check_consistency:
            self.kb.check_consistency()

        if isinstance(layout, str):
            if layout == "simple":
                self.layout = SimpleLayout()
            elif layout == "rdf":
                self.layout = RDFLayout(width=rdf_width)
            else:
                raise ValueError(f"unknown layout {layout!r}")
        else:
            self.layout = layout

        # The backend factory doubles as the replica factory: every
        # replica is a full backend of the primary's exact construction
        # (same kind, shard count and substrate), which is what makes
        # shard routes portable and replica answers byte-identical.
        backend_factory = None
        if isinstance(backend, str):
            if shards is None:
                shards = _env_shards()
            if backend == "memory":
                if shards:
                    shard_count = shards

                    def backend_factory() -> ShardedBackend:
                        return ShardedBackend(
                            shard_count,
                            child_factory=lambda: MemoryBackend(
                                workers=engine_workers
                            ),
                            workers=shard_workers,
                            max_statement_length=DB2_STATEMENT_LIMIT,
                            substrate=executor,
                        )

                else:

                    def backend_factory() -> MemoryBackend:
                        return MemoryBackend(
                            workers=engine_workers, substrate=executor
                        )

            elif backend == "sqlite":
                if shards:
                    shard_count = shards

                    def backend_factory() -> ShardedBackend:
                        return ShardedBackend(
                            shard_count,
                            child="sqlite",
                            workers=shard_workers,
                            substrate=executor,
                        )

                else:
                    backend_factory = SQLiteBackend
            else:
                raise ValueError(f"unknown backend {backend!r}")
            self.backend = backend_factory()
        else:
            if shards is not None:
                raise ValueError(
                    "shards= requires a named backend ('memory'/'sqlite'); "
                    "construct a ShardedBackend yourself for custom children"
                )
            self.backend = backend

        data = self.layout.build(abox, tbox)
        self.backend.load(data)
        self._table_names = {spec.name for spec in data.tables}

        # Replicated serving (see repro.serving.replicas): N read-only
        # replica backends fed asynchronously by the write path's
        # epoch-tagged deltas through a bounded replication log. The
        # log is bootstrapped from the same LayoutData the primary
        # loaded, at epoch 0 — exactly the primary's starting state.
        replicas_explicit = replicas is not None
        if replicas is None:
            replicas = _env_replicas()
        self._replication_log: Optional[ReplicationLog] = None
        self._replicas: Optional[ReplicaSet] = None
        if replicas and backend_factory is None:
            # An explicit request is a hard error; the env knob is a
            # fleet-wide default and degrades to unreplicated where a
            # custom backend object cannot be cloned into replicas.
            if replicas_explicit:
                raise ValueError(
                    "replicas= requires a named backend "
                    "('memory'/'sqlite'); custom backend objects "
                    "cannot be cloned into replicas"
                )
            replicas = 0
        if replicas:
            self._replication_log = ReplicationLog()
            self._replication_log.bootstrap(data, epoch=0)
            self._replicas = ReplicaSet(
                replicas,
                backend_factory,
                self._replication_log,
                max_in_flight=(
                    replica_max_in_flight
                    if replica_max_in_flight is not None
                    else _env_replica_in_flight()
                ),
                lag_timeout_seconds=(
                    replica_lag_timeout_seconds
                    if replica_lag_timeout_seconds is not None
                    else _env_replica_lag_seconds()
                ),
            )
        self.translator = SQLTranslator(self.layout)
        self.statistics = DataStatistics.from_abox(abox)
        self.cost_model = ExternalCostModel(self.statistics)

        #: Fragment reformulations shared across strategies, cost modes and
        #: queries for the lifetime of this system (one TBox, so sound);
        #: LRU-bounded so long-lived serving processes stay bounded too.
        self.reformulation_cache = ReformulationCache(
            capacity=DEFAULT_FRAGMENT_CACHE_CAPACITY
        )
        #: Cover costs shared across searches, epoch-stamped (a write makes
        #: estimates computed against the old statistics unreachable).
        self.cost_cache = CostCache()
        #: Finished plans: repeated queries skip search and translation.
        self.plan_cache = PlanCache(plan_cache_size)
        # Single-flight guards: concurrent answer_many() workers asking for
        # the same (not yet cached) plan serialize per key, so one computes
        # and the rest hit the cache instead of racing duplicate searches.
        self._plan_locks: Dict[Tuple, threading.Lock] = {}
        self._plan_locks_guard = threading.Lock()

        #: Monotonically increasing data epoch: advanced by every write
        #: that changes anything (and by enabling materialization), read
        #: by every epoch-stamped cache. Never reset.
        self.data_epoch = 0
        self.max_generations = max_generations
        self._saturator: Optional[Saturator] = None
        self._router = SaturationRouter(self.translator, self.backend)
        self._write_lock = threading.Lock()

        # Serving-layer concurrency: queries hold the barrier's shared
        # side around their backend read, writes its exclusive side
        # around the backend/statistics/epoch mutation — so a write
        # drains in-flight queries and no query ever reads mid-write
        # state. The executor is shared by every answer_many call and
        # sized lazily to the largest worker count ever requested.
        self._barrier = ReadWriteBarrier()
        self.serving_workers = serving_workers
        self.max_in_flight = max_in_flight
        self.query_timeout_seconds = query_timeout_seconds
        self._serving_pool: Optional[ThreadPoolExecutor] = None
        self._serving_pool_size = 0
        self._serving_guard = threading.Lock()
        #: Telemetry from the most recent concurrent ``answer_many``:
        #: ``{"workers", "wall_seconds", "admission": {...}}``.
        self.last_batch_stats: Optional[Dict] = None

        # Observability (see repro.obs): per-query tracing is opt-in
        # (``trace=True`` or ``REPRO_TRACE=1``) because a built trace
        # costs real allocations per query; metrics recording is always
        # on (a handful of registry updates per query). The slow-query
        # threshold (``slow_query_ms`` / ``REPRO_SLOW_QUERY_MS``) logs
        # any query whose total time meets it, trace attached.
        self.trace_enabled = (
            trace_enabled_default() if trace is None else bool(trace)
        )
        self.slow_query_ms = (
            _env_slow_query_ms() if slow_query_ms is None else slow_query_ms
        )
        if materialize:
            self.enable_materialization()

    # ------------------------------------------------------------------
    # Materialized saturation and the write path
    # ------------------------------------------------------------------
    @property
    def materialized(self) -> bool:
        """Whether the backend currently holds the saturated tables."""
        return self._saturator is not None

    def enable_materialization(self) -> None:
        """Chase the TBox into the backend as extra stored tuples.

        Idempotent. Called eagerly by ``materialize=True`` or lazily by the
        first ``sat``/``auto`` query. Requires the simple layout (the only
        layout with a per-predicate write path). After this, all write
        methods maintain the saturation incrementally.
        """
        with self._write_lock:
            if self._saturator is not None:
                return
            if not isinstance(self.layout, SimpleLayout):
                raise ValueError(
                    "materialized saturation requires the simple layout; "
                    f"got {type(self.layout).__name__}"
                )
            saturator = Saturator(
                self.kb.tbox, self.kb.abox, max_generations=self.max_generations
            )
            derived = saturator.saturate()
            self._saturator = saturator
            self._apply_write(derived, set())

    def insert_facts(self, assertions: Sequence[Union[Assertion, Tuple]]) -> int:
        """Insert ABox facts; returns how many were genuinely new.

        Maintains the materialized saturation incrementally (a delta chase
        derives only consequences of the new facts), mirrors the changed
        tuples into the backend, refreshes statistics for the touched
        predicates and advances the data epoch — all under the write lock,
        so no stale plan, statistic or cover cost is ever served afterwards.
        A call that changes nothing leaves every cache intact.
        """
        parsed = [self._as_assertion(a) for a in assertions]
        with self._write_lock:
            self._check_writable()
            new = list(
                dict.fromkeys(a for a in parsed if a not in self.kb.abox)
            )
            if not new:
                return 0
            for assertion in new:
                self.kb.abox.add(assertion)
            if self.check_consistency:
                violated = self.kb.first_violated_constraint()
                if violated is not None:
                    # Roll back before any other state diverges: the
                    # saturator, backend and epoch have not been touched,
                    # and every assertion in `new` was previously absent.
                    for assertion in new:
                        self.kb.abox.remove(assertion)
                    raise InconsistentKBError(violated)
            if self._saturator is not None:
                added, removed = self._saturator.insert(new)
            else:
                added, removed = {_fact_of(a) for a in new}, set()
            self._apply_write(added, removed)
            return len(new)

    def delete_facts(self, assertions: Sequence[Union[Assertion, Tuple]]) -> int:
        """Delete ABox facts; returns how many were actually present.

        With materialization enabled this is DRed-style incremental
        maintenance: the deleted facts' consequences are over-deleted, the
        still-derivable ones re-derived — never a full re-saturation.
        Derived facts that remain entailed by other base facts stay put.
        """
        parsed = [self._as_assertion(a) for a in assertions]
        with self._write_lock:
            self._check_writable()
            present = list(
                dict.fromkeys(a for a in parsed if a in self.kb.abox)
            )
            if not present:
                return 0
            for assertion in present:
                self.kb.abox.remove(assertion)
            if self._saturator is not None:
                added, removed = self._saturator.delete(present)
            else:
                added, removed = set(), {_fact_of(a) for a in present}
            self._apply_write(added, removed)
            return len(present)

    def epoch_token(self) -> int:
        """The current data epoch as a **session token**.

        A client that captures this after a write (every write advances
        the epoch by one) and passes it as ``min_epoch`` to later reads
        gets read-your-writes across replicas: no answer carrying that
        token can come from a replica that has not applied the write.
        ``report.epoch`` on any :class:`AnswerReport` works as a token
        too (monotonic reads: never observe older state again).
        """
        return self.data_epoch

    @property
    def replica_set(self) -> Optional[ReplicaSet]:
        """The serving replica set, or ``None`` when unreplicated."""
        return self._replicas

    def _as_assertion(self, value: Union[Assertion, Tuple]) -> Assertion:
        """Accept ``ConceptAssertion``/``RoleAssertion`` or plain tuples
        ``("C", "a")`` / ``("R", "a", "b")``."""
        if isinstance(value, (ConceptAssertion, RoleAssertion)):
            return value
        if isinstance(value, tuple) and len(value) == 2:
            return ConceptAssertion(*value)
        if isinstance(value, tuple) and len(value) == 3:
            return RoleAssertion(*value)
        raise TypeError(f"not an assertion: {value!r}")

    def _check_writable(self) -> None:
        """Reject writes up front — before any state is mutated — so a
        failed write can never leave the ABox and backend out of step."""
        if not isinstance(self.layout, SimpleLayout):
            raise ValueError(
                "the write path requires the simple layout; "
                f"got {type(self.layout).__name__}"
            )

    def _apply_write(self, added: Set[Fact], removed: Set[Fact]) -> None:
        """Mirror store deltas into the backend and invalidate by epoch.

        Caller holds the write lock. No-op (epoch untouched) when both
        deltas are empty: a write that changed nothing invalidates nothing.
        """
        if not added and not removed:
            return
        inserts = self._rows_by_table(added)
        deletes = self._rows_by_table(removed)
        new_tables = []
        for table in (*inserts, *deletes):
            spec = self._ensure_table(table)
            if spec is not None:
                new_tables.append(spec)
        # The exclusive barrier drains every in-flight query, then the
        # backend, the statistics and the epoch all change before the
        # next query is admitted — a reader can never observe the
        # backend ahead of the statistics or the epoch behind either.
        # (Each backend additionally serializes reads against its own
        # writes, so even barrier-less readers see whole writes.)
        with self._barrier.exclusive():
            self.backend.apply_changes(inserts, deletes)
            self._refresh_statistics(
                {predicate for predicate, _ in added}
                | {predicate for predicate, _ in removed}
            )
            self.data_epoch += 1
            if self._replication_log is not None:
                # Delta shipping: record the write (created tables plus
                # both row deltas) under its resulting epoch, then fan
                # it out to the replica queues. Recording happens under
                # the exclusive barrier so deltas hit the log in strict
                # epoch order; applying is asynchronous — the write
                # returns without waiting for any replica.
                delta = EpochDelta(
                    epoch=self.data_epoch,
                    new_tables=tuple(new_tables),
                    inserts=inserts,
                    deletes=deletes,
                )
                self._replication_log.record(delta)
                self._replicas.publish(delta)

    def _rows_by_table(self, facts: Set[Fact]) -> Dict[str, List[Tuple]]:
        """Group facts per backend table, dictionary-encoded."""
        encode = self.layout.dictionary.encode
        grouped: Dict[str, List[Tuple]] = {}
        for predicate, row in sorted(facts):
            if len(row) == 1:
                table = self.layout.concept_table(predicate)
            else:
                table = self.layout.role_table(predicate)
            grouped.setdefault(table, []).append(
                tuple(encode(value) for value in row)
            )
        return grouped

    def _ensure_table(self, table: str) -> Optional[TableSpec]:
        """Create a table for a predicate outside the loaded schema;
        returns its spec when one was created (the write's delta ships
        it to the replicas) and ``None`` when the table already existed."""
        if table in self._table_names:
            return None
        if table.startswith("c_"):
            spec = TableSpec(name=table, columns=("s",), rows=[], indexes=(("s",),))
        else:
            spec = TableSpec(
                name=table,
                columns=("s", "o"),
                rows=[],
                indexes=(("s",), ("o",), ("s", "o")),
            )
        self.backend.load(LayoutData(tables=[spec]))
        self._table_names.add(table)
        return spec

    def _refresh_statistics(self, predicates: Set[str]) -> None:
        """Recompute logical statistics for the predicates a write touched.

        Statistics describe what the backend *stores*: base facts plus,
        under materialization, the derived tuples — that is what cost
        estimates are estimates of.
        """
        if self._saturator is not None:
            store = self._saturator.store
            for predicate in predicates:
                self.statistics.refresh_predicate(
                    predicate, store.get(predicate, set())
                )
            return
        abox = self.kb.abox
        for predicate in predicates:
            rows: Set[Tuple] = set(abox.concept_facts(predicate)) or set(
                abox.role_facts(predicate)
            )
            self.statistics.refresh_predicate(predicate, rows)

    # ------------------------------------------------------------------
    @classmethod
    def from_text(
        cls, tbox_text: str, abox_text: str, **kwargs
    ) -> "OBDASystem":
        """Build a system from the textual KB syntax."""
        return cls(parse_tbox(tbox_text), parse_abox(abox_text), **kwargs)

    # ------------------------------------------------------------------
    def _estimator(
        self, cost: str, minimize: bool, use_uscq: bool
    ) -> CoverCostEstimator:
        if cost == "ext":
            return ExternalCoverCost(
                self.kb.tbox,
                self.cost_model,
                minimize=minimize,
                use_uscq=use_uscq,
                fragment_cache=self.reformulation_cache,
                cost_cache=self.cost_cache,
                epoch=self.data_epoch,
            )
        if cost == "rdbms":
            return RDBMSCoverCost(
                self.kb.tbox,
                self.backend,
                self.translator,
                minimize=minimize,
                use_uscq=use_uscq,
                fragment_cache=self.reformulation_cache,
                cost_cache=self.cost_cache,
                epoch=self.data_epoch,
            )
        raise ValueError(f"unknown cost mode {cost!r}; expected one of {COST_MODES}")

    def _plan_key(
        self, query: CQ, strategy: str, cost: str, minimize: bool, use_uscq: bool
    ) -> Tuple:
        """The plan-cache key: canonical query plus every plan-shaping flag."""
        return (query.canonical_key(), strategy, cost, minimize, use_uscq)

    def _has_unencoded_constants(self, query: CQ) -> bool:
        """Whether the query names a constant the dictionary has not seen."""
        dictionary = self.layout.dictionary
        return any(
            not is_variable(term) and dictionary.try_encode(term.value) is None
            for atom in query.atoms
            for term in atom.args
        )

    def reformulate(
        self,
        query: Union[str, CQ],
        strategy: str = "gdl",
        cost: str = "ext",
        minimize: bool = True,
        use_uscq: bool = False,
        time_budget_seconds: Optional[float] = None,
        generalized_limit: Optional[int] = DEFAULT_GENERALIZED_LIMIT,
        use_plan_cache: bool = True,
    ) -> ReformulationChoice:
        """Pick a FOL reformulation for *query* and translate it to SQL.

        With ``use_plan_cache`` (the default) the finished choice is stored
        in — and served from — the system's :class:`PlanCache`, so a
        repeated query skips search and translation entirely; concurrent
        requests for the same uncached plan are single-flighted (one
        computes, the rest wait and hit). Calls with a time budget or a
        non-default generalized cap bypass the cache (the plan key
        deliberately excludes those knobs, and a budget-truncated plan
        must not be served as the full one).
        """
        if isinstance(query, str):
            query = parse_query(query)
        if strategy in ("sat", "auto") and self._saturator is None:
            # Before epoch capture: enabling materialization advances the
            # epoch, and the plan must be stamped with the post-enable one.
            self.enable_materialization()
        # The epoch this plan is computed under. Captured *before* the
        # computation: if a concurrent write lands mid-search, the stored
        # plan is already stale and the stamp makes the next get() drop it.
        epoch = self.data_epoch
        cacheable = (
            use_plan_cache
            and time_budget_seconds is None
            and generalized_limit == DEFAULT_GENERALIZED_LIMIT
        )
        if not cacheable:
            return self._compute_choice(
                query,
                strategy,
                cost,
                minimize,
                use_uscq,
                time_budget_seconds,
                generalized_limit,
            )
        plan_key = self._plan_key(query, strategy, cost, minimize, use_uscq)
        with self._plan_locks_guard:
            flight_lock = self._plan_locks.setdefault(plan_key, threading.Lock())
        try:
            with flight_lock:
                lookup_started = time.perf_counter()
                cached = self.plan_cache.get(plan_key, self.data_epoch)
                if cached is not None:
                    return replace(
                        cached,
                        plan_cache_hit=True,
                        reformulation_seconds=time.perf_counter() - lookup_started,
                    )
                choice = self._compute_choice(
                    query,
                    strategy,
                    cost,
                    minimize,
                    use_uscq,
                    time_budget_seconds,
                    generalized_limit,
                )
                data_independent = (
                    strategy in DATA_INDEPENDENT_STRATEGIES
                    # A constant the dictionary has never seen translates
                    # to an impossible code; a later write may introduce
                    # it, so such a plan's SQL is *not* write-proof. (Codes
                    # of already-encoded constants are stable forever —
                    # the dictionary is append-only.)
                    and not self._has_unencoded_constants(query)
                )
                stamp = None if data_independent else epoch
                self.plan_cache.put(plan_key, choice, stamp)
                return choice
        finally:
            with self._plan_locks_guard:
                self._plan_locks.pop(plan_key, None)

    def _compute_choice(
        self,
        query: CQ,
        strategy: str,
        cost: str,
        minimize: bool,
        use_uscq: bool,
        time_budget_seconds: Optional[float],
        generalized_limit: Optional[int],
    ) -> ReformulationChoice:
        """The uncached reformulate-translate pipeline.

        When a trace is active (``answer()`` activates its reformulate
        span around this call), cover-search and SQL-translation child
        spans hang off :func:`~repro.obs.trace.current_span`; with
        tracing off those are no-op singleton calls.
        """
        started = time.perf_counter()
        span = current_span()
        search: Optional[SearchResult] = None
        routing: Optional[RoutingDecision] = None

        if strategy == "sat":
            # Answer the original CQ directly over the saturated tables;
            # nulls are filtered at decode time. A truncated chase would
            # under-approximate the certain answers, so refuse it loudly
            # (same contract as the certain_answers oracle).
            if self._saturator.truncated:
                raise ChaseTruncatedError(self.max_generations)
            reformulation: object = query
        elif strategy == "auto":
            estimator = self._estimator(cost, minimize, use_uscq)
            with span.child("cover_search", algorithm="gdl") as search_span:
                search = gdl_search(
                    query,
                    self.kb.tbox,
                    estimator,
                    time_budget_seconds=time_budget_seconds,
                )
                _describe_search(search_span, search)
            if self._saturator.truncated:
                # Saturation is incomplete at this generation bound;
                # reformulation is the only complete side, whatever the
                # costs say.
                routing = RoutingDecision(
                    routed_to="gdl",
                    saturation_cost=float("inf"),
                    reformulation_cost=search.cost,
                )
            else:
                saturated_model = self.cost_model if cost == "ext" else None
                routing = pick(
                    self._router.saturation_cost(query, cost, saturated_model),
                    search.cost,
                    "gdl",
                )
            if routing.routed_to == "sat":
                reformulation = query
            else:
                reformulation = estimator.reformulate(search.cover)
        elif strategy == "ucq":
            ucq_key = (query.head, query.atoms, minimize)
            reformulation = self.reformulation_cache.get(ucq_key)
            if reformulation is None:
                reformulation = reformulate_to_ucq(
                    query, self.kb.tbox, minimize=minimize
                )
                self.reformulation_cache[ucq_key] = reformulation
        elif strategy == "croot":
            cover = root_cover(query, self.kb.tbox)
            builder = (
                cover_based_uscq_reformulation if use_uscq else cover_based_reformulation
            )
            reformulation = builder(
                cover,
                self.kb.tbox,
                minimize=minimize,
                cache=self.reformulation_cache,
            )
        elif strategy in ("gdl", "edl"):
            estimator = self._estimator(cost, minimize, use_uscq)
            with span.child("cover_search", algorithm=strategy) as search_span:
                if strategy == "gdl":
                    search = gdl_search(
                        query,
                        self.kb.tbox,
                        estimator,
                        time_budget_seconds=time_budget_seconds,
                    )
                else:
                    search = edl_search(
                        query,
                        self.kb.tbox,
                        estimator,
                        generalized_limit=generalized_limit,
                    )
                _describe_search(search_span, search)
            reformulation = estimator.reformulate(search.cover)
        else:
            raise ValueError(
                f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
            )

        with span.child("translate") as translate_span:
            sql = self.translator.translate(reformulation)
            translate_span.set(sql_chars=len(sql))
        shard_route = None
        if isinstance(self.backend, ShardedBackend):
            # Logical hint: routes plan-cached statements without ever
            # re-parsing the (possibly megabyte-scale) SQL. Dialects the
            # hint does not cover leave None and the backend analyzes
            # the statement itself on first execution.
            shard_route = self.backend.route_from_hint(
                self.translator.shard_hint(reformulation)
            )
        elapsed = time.perf_counter() - started
        return ReformulationChoice(
            strategy=strategy,
            reformulation=reformulation,
            sql=sql,
            search=search,
            reformulation_seconds=elapsed,
            routing=routing,
            shard_route=shard_route,
        )

    # ------------------------------------------------------------------
    def answer(
        self,
        query: Union[str, CQ],
        strategy: str = "gdl",
        cost: str = "ext",
        minimize: bool = True,
        use_uscq: bool = False,
        time_budget_seconds: Optional[float] = None,
        use_plan_cache: bool = True,
        min_epoch: Optional[int] = None,
    ) -> AnswerReport:
        """Answer *query*: reformulate, translate, evaluate, decode.

        On a replicated system (``replicas=N`` / ``REPRO_REPLICAS``)
        the read is routed to a replica; ``min_epoch`` is the **session
        token** deciding how fresh that replica must be. ``None`` (the
        default) uses the primary's current epoch — the state this
        process has already observed, so in-process callers keep exact
        read-your-writes semantics with no code change. An explicit
        token from :meth:`epoch_token` or a prior report's
        ``report.epoch`` pins freshness for out-of-process clients
        (``min_epoch=0`` accepts any replica state). The chosen replica
        blocks until it has applied the token's epoch, bounded by the
        lag deadline (:class:`~repro.serving.replicas.
        ReplicaLagTimeoutError` past it), and ``report.epoch`` records
        the exact epoch the answer observed. Without replicas the
        token is ignored — the primary always serves its own epoch.

        With tracing on (``trace=True`` / ``REPRO_TRACE=1``) the report
        carries one coherent :class:`~repro.obs.trace.QueryTrace`:
        parse, reformulation (cover-search and translation children with
        PerfectRef / cache-delta counters), execution (per-shard
        children on a sharded backend, including span subtrees shipped
        back from forked workers, or the replica-routing span on a
        replicated system) and decode. Metrics are recorded either way,
        and a query meeting the slow-query threshold is logged with its
        trace attached.
        """
        query_started = time.perf_counter()
        tracer: Optional[Tracer] = None
        root = NO_SPAN
        if self.trace_enabled:
            tracer = Tracer()
            root = tracer.root("query", strategy=strategy, cost=cost)
        with root:
            if isinstance(query, str):
                with root.child("parse"):
                    query = parse_query(query)
            with root.child("reformulate", strategy=strategy) as ref_span:
                if ref_span.enabled:
                    perfectref_before = perfectref_invocations()
                    caches_before = self.cache_stats()
                with activate(ref_span):
                    choice = self.reformulate(
                        query,
                        strategy=strategy,
                        cost=cost,
                        minimize=minimize,
                        use_uscq=use_uscq,
                        time_budget_seconds=time_budget_seconds,
                        use_plan_cache=use_plan_cache,
                    )
                if ref_span.enabled:
                    self._describe_choice(
                        ref_span, choice, perfectref_before, caches_before
                    )
            self._check_saturation_complete(choice)
            started = time.perf_counter()
            replica_index: Optional[int] = None
            if self._replicas is not None:
                # Replicated read: route to a replica at least as fresh
                # as the session token (default: the primary's current
                # epoch — exact read-your-writes for in-process callers).
                token = self.data_epoch if min_epoch is None else min_epoch
                with root.child(
                    "execute", backend=self.backend.name
                ) as exec_span:
                    with activate(exec_span):
                        rows, observed_epoch, replica_index = (
                            self._replicas.execute(
                                choice.sql,
                                min_epoch=token,
                                route=choice.shard_route,
                            )
                        )
                    if exec_span.enabled:
                        exec_span.set(
                            rows=len(rows),
                            sql_chars=len(choice.sql),
                            replica=replica_index,
                        )
                self._check_saturation_complete(choice)  # see below
            else:
                # Shared barrier: a concurrent write drains this read
                # before mutating anything, so the rows and the
                # saturation state the re-check sees belong to one
                # consistent epoch.
                with self._barrier.shared():
                    with root.child(
                        "execute", backend=self.backend.name
                    ) as exec_span:
                        with activate(exec_span):
                            rows = self._execute_sql(choice)
                        if exec_span.enabled:
                            self._describe_execution(exec_span, choice, rows)
                    # Re-checked *after* execution: a write may have
                    # truncated the saturation between the first check
                    # and the table read, and the rows would then
                    # under-approximate. (A write landing after this
                    # point is fine — the answer is the valid pre-write
                    # one.)
                    self._check_saturation_complete(choice)
                    observed_epoch = self.data_epoch
            execution = time.perf_counter() - started
            with root.child("decode") as decode_span:
                answers = self._decode(query, rows)
                decode_span.set(answers=len(answers))
        report = AnswerReport(
            query=query,
            choice=choice,
            answers=answers,
            execution_seconds=execution,
            cache_stats=self.cache_stats(),
            epoch=observed_epoch,
            replica=replica_index,
        )
        if tracer is not None:
            report.trace = tracer.trace()
        self._record_answer(report, time.perf_counter() - query_started)
        return report

    def _describe_choice(
        self,
        span,
        choice: ReformulationChoice,
        perfectref_before: int,
        caches_before: Dict[str, Dict[str, int]],
    ) -> None:
        """Annotate a reformulate span with what the choice cost:
        PerfectRef invocations and per-cache hit/miss deltas this query
        caused, plus the plan-cache outcome and routing decision."""
        span.set(
            chosen_strategy=choice.strategy,
            plan_cache_hit=choice.plan_cache_hit,
            perfectref_invocations=perfectref_invocations() - perfectref_before,
            seconds=choice.reformulation_seconds,
        )
        caches_after = self.cache_stats()
        for cache_name, counters in caches_after.items():
            before = caches_before.get(cache_name, {})
            for key in ("hits", "misses", "stale"):
                if key in counters:
                    span.set(
                        **{
                            f"{cache_name}_{key}": counters[key]
                            - before.get(key, 0)
                        }
                    )
        if choice.routing is not None:
            span.set(
                routed_to=choice.routing.routed_to,
                saturation_cost=choice.routing.saturation_cost,
                reformulation_cost=choice.routing.reformulation_cost,
            )

    def _describe_execution(
        self, span, choice: ReformulationChoice, rows: List[Tuple]
    ) -> None:
        """Annotate an execute span with the backend's counters for this
        statement (folded out of ``ExecutionStats`` or its sharded /
        worker equivalents) and the search's estimated cost, so the
        trace shows estimated vs. measured side by side."""
        span.set(rows=len(rows), sql_chars=len(choice.sql))
        if choice.search is not None:
            span.set(est_cost=choice.search.cost)
        execution = getattr(self.backend, "last_execution", None)
        if execution is not None:
            for attribute in (
                "batches",
                "workers",
                "morsels",
                "materialized_ctes",
                "route",
            ):
                value = getattr(execution, attribute, None)
                if value:
                    span.set(**{attribute: value})

    def _record_answer(self, report: AnswerReport, total_seconds: float) -> None:
        """Always-on per-query accounting: registry metrics plus the
        slow-query log (a structured WARNING with the trace attached
        when one was collected)."""
        choice = report.choice
        registry = get_registry()
        registry.inc("repro.query.count")
        registry.observe("repro.query.seconds", total_seconds)
        registry.observe(
            "repro.query.execution.seconds", report.execution_seconds
        )
        if choice is not None:
            registry.inc(f"repro.query.strategy.{choice.strategy}")
            registry.observe(
                "repro.query.reformulation.seconds",
                choice.reformulation_seconds,
            )
            registry.inc(
                "repro.plan_cache.hits"
                if choice.plan_cache_hit
                else "repro.plan_cache.misses"
            )
        if self.slow_query_ms is None:
            return
        total_ms = total_seconds * 1000.0
        if total_ms < self.slow_query_ms:
            return
        registry.inc("repro.query.slow")
        _SLOW_QUERY_LOGGER.warning(
            "slow query: %.1f ms (strategy=%s, answers=%d, threshold=%.1f ms)",
            total_ms,
            choice.strategy if choice is not None else "?",
            len(report.answers),
            self.slow_query_ms,
            extra={
                "query_ms": total_ms,
                "strategy": choice.strategy if choice is not None else None,
                "query_trace": (
                    report.trace.to_dict() if report.trace is not None else None
                ),
            },
        )

    def answer_many(
        self,
        queries: Sequence[Union[str, CQ]],
        strategy: str = "gdl",
        cost: str = "ext",
        minimize: bool = True,
        use_uscq: bool = False,
        use_plan_cache: bool = True,
        max_workers: Optional[int] = None,
        on_error: str = "raise",
        max_in_flight: Optional[int] = None,
        timeout_seconds: Optional[float] = None,
        min_epoch: Optional[int] = None,
    ) -> List[AnswerReport]:
        """Answer a batch of queries, reports in input order.

        With ``max_workers`` > 1 (or a constructor-level
        ``serving_workers`` default) the batch is dispatched over the
        system's **shared serving executor**: one thread pool reused by
        every batch, so the process-wide thread count stays bounded under
        sustained traffic. The plan, fragment and cost caches are
        thread-safe, fresh estimators are built per call, both backends
        serialize their storage accesses, and writes drain in-flight
        queries through the read/write barrier — so concurrent batches
        return exactly the sequential answers, even racing
        :meth:`insert_facts` / :meth:`delete_facts`. Duplicate queries in
        one batch are where the plan cache shines: one cold plan, the
        rest hits (identical misses are single-flighted).

        **Admission control.** At most ``max_in_flight`` queries
        (default ``2 × max_workers``) are dispatched-but-unfinished at
        any moment; the rest of the batch waits at the gate.
        ``timeout_seconds`` is a per-query deadline: a query that blows
        it gets a :class:`~repro.serving.concurrency.QueryTimeoutError`
        (its worker thread is abandoned, not killed). Telemetry for the
        batch lands on :attr:`last_batch_stats`.

        ``on_error`` decides what one failing query does to the batch:
        ``"raise"`` (the default) propagates its exception, ``"collect"``
        records it on that query's :class:`AnswerReport` (``error`` set,
        ``answers`` empty) and lets the rest of the batch finish.

        ``min_epoch`` is the whole batch's session token on a
        replicated system (see :meth:`answer`).
        """
        if on_error not in ("raise", "collect"):
            raise ValueError(
                f"on_error must be 'raise' or 'collect', got {on_error!r}"
            )
        if max_workers is None:
            max_workers = self.serving_workers
        if timeout_seconds is None:
            timeout_seconds = self.query_timeout_seconds

        def one(query: Union[str, CQ]) -> AnswerReport:
            # Parsing happens inside the guard: a malformed query string is
            # just another failure this query's report should carry.
            try:
                parsed = parse_query(query) if isinstance(query, str) else query
                return self.answer(
                    parsed,
                    strategy=strategy,
                    cost=cost,
                    minimize=minimize,
                    use_uscq=use_uscq,
                    use_plan_cache=use_plan_cache,
                    min_epoch=min_epoch,
                )
            except Exception as exc:
                if on_error == "raise":
                    raise
                return AnswerReport(
                    query=query,
                    choice=None,
                    answers=set(),
                    cache_stats=self.cache_stats(),
                    error=exc,
                )

        if max_workers is not None and max_workers > 1 and len(queries) > 1:
            return self._answer_many_concurrent(
                queries, one, max_workers, on_error, max_in_flight, timeout_seconds
            )
        return [one(query) for query in queries]

    def _answer_many_concurrent(
        self,
        queries: Sequence[Union[str, CQ]],
        one,
        max_workers: int,
        on_error: str,
        max_in_flight: Optional[int],
        timeout_seconds: Optional[float],
    ) -> List[AnswerReport]:
        """Dispatch a batch over the shared executor with admission
        control and per-query deadlines.

        The deadline for each query runs from its *dispatch* (slot
        admitted, task submitted), not from when the in-order collection
        loop happens to reach its future — so a query cannot silently
        overrun its deadline just because an earlier future was waited
        on first. A query that cannot even be *admitted* within the
        deadline (every slot held by hung queries) times out at the
        gate instead of hanging the whole batch.
        """
        started = time.perf_counter()
        if max_in_flight is None:
            max_in_flight = self.max_in_flight or 2 * max_workers
        admission = AdmissionController(max_in_flight)
        telemetry = getattr(self.backend, "shard_telemetry", None)
        shards_before = telemetry() if telemetry is not None else None

        def admitted(query: Union[str, CQ]) -> AnswerReport:
            # Mark the deadline *inside* the pool task (contextvars do
            # not flow into pool threads), so storage-layer RPC waits
            # under this query cap themselves at min(rpc_timeout,
            # remaining) instead of running on after the serving layer
            # abandoned the future.
            try:
                with deadline_scope(timeout_seconds):
                    return one(query)
            finally:
                admission.release()

        def timed_out(query: Union[str, CQ]) -> AnswerReport:
            error = QueryTimeoutError(timeout_seconds)
            if on_error == "raise":
                raise error from None
            return AnswerReport(
                query=query,
                choice=None,
                answers=set(),
                cache_stats=self.cache_stats(),
                error=error,
            )

        #: (query, future | None, dispatch time); None = never admitted.
        dispatched: List[Tuple[Union[str, CQ], Optional[Future], float]] = []
        timed_out_reports: Dict[int, AnswerReport] = {}
        #: ``admission.released`` sampled before the admit that last
        #: proved the gate full for a whole timeout; ``None`` = gate not
        #: currently proven stuck. While no release has happened since,
        #: re-waiting the full timeout for the next query is pure wasted
        #: wall-clock — the outcome is already known — so those queries
        #: fail fast at the gate instead of timing out serially.
        gate_stuck_since: Optional[int] = None
        for position, query in enumerate(queries):
            released_before = admission.released
            if (
                gate_stuck_since is not None
                and released_before == gate_stuck_since
            ):
                timed_out_reports[position] = timed_out(query)
                dispatched.append((query, None, 0.0))
                continue
            gate_stuck_since = None
            if not admission.admit(timeout_seconds):
                gate_stuck_since = released_before
                timed_out_reports[position] = timed_out(query)
                dispatched.append((query, None, 0.0))
                continue
            # The shared pool may be swapped out by a concurrent batch
            # regrowing it (its shutdown refuses new work); retry on the
            # replacement — the admission slot stays held throughout.
            while True:
                pool = self._ensure_serving_pool(max_workers)
                try:
                    future = pool.submit(admitted, query)
                    break
                except RuntimeError:
                    continue
            dispatched.append((query, future, time.perf_counter()))
        reports: List[AnswerReport] = []
        for position, (query, future, dispatch_time) in enumerate(dispatched):
            if future is None:
                reports.append(timed_out_reports[position])
                continue
            if timeout_seconds is None:
                remaining = None
            else:
                remaining = max(
                    0.0, dispatch_time + timeout_seconds - time.perf_counter()
                )
            try:
                reports.append(future.result(timeout=remaining))
            except FutureTimeoutError:
                # Deadline accounting: a timed-out query must not burn
                # wall-clock or capacity from the rest of the batch. If
                # the task never started, cancel() reclaims its pool
                # slot — and its admission slot, which the task's own
                # finally-release will now never run for. (A task
                # already running is abandoned, not killed; its
                # deadline_scope caps its storage-layer waits.)
                if future.cancel():
                    admission.release()
                reports.append(timed_out(query))
        wall_seconds = time.perf_counter() - started
        self.last_batch_stats = {
            # Canonical metric names (the docs/OBSERVABILITY.md catalog)
            # next to the historical flat keys, which are **deprecated
            # aliases** kept for one release.
            "workers": max_workers,
            "serving.workers": max_workers,
            "queries": len(queries),
            "serving.queries": len(queries),
            "wall_seconds": wall_seconds,
            "serving.wall.seconds": wall_seconds,
            "admission": admission.stats(),
            #: The storage-side execution substrate this batch ran on
            #: ("inproc" for plain unsharded backends).
            "substrate": getattr(self.backend, "substrate", "inproc"),
            "serving.substrate": getattr(self.backend, "substrate", "inproc"),
        }
        registry = get_registry()
        registry.inc("repro.serving.batches")
        registry.inc("repro.serving.queries", len(queries))
        registry.observe("repro.serving.batch.seconds", wall_seconds)
        if shards_before is not None:
            # Route counters this batch moved (approximate under racing
            # batches — counters are system-global). Old flat keys stay
            # as deprecated aliases of the dotted canonical names.
            shards_after = telemetry()
            batch_shards = {
                "shards": shards_after["shards"],
                **{
                    key: shards_after[key] - shards_before[key]
                    for key in ("executions", "pruned", "scatter", "gather")
                },
                **{
                    key: shards_after[key] - shards_before.get(key, 0)
                    for key in ("shm_results", "shm_bytes", "inline_results")
                    if key in shards_after
                },
            }
            aliases = getattr(type(self.backend), "TELEMETRY_ALIASES", {})
            for old_key, canonical in aliases.items():
                if old_key in batch_shards:
                    batch_shards[canonical] = batch_shards[old_key]
            self.last_batch_stats["shards"] = batch_shards
        return reports

    def _ensure_serving_pool(self, workers: int) -> ThreadPoolExecutor:
        """The shared serving executor, regrown when a batch asks for
        more workers than any batch before it."""
        with self._serving_guard:
            if self._serving_pool is None or workers > self._serving_pool_size:
                old = self._serving_pool
                self._serving_pool = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="repro-serving"
                )
                self._serving_pool_size = workers
                if old is not None:
                    # Let queued work drain on its own threads; new
                    # batches land on the resized pool.
                    old.shutdown(wait=False)
            return self._serving_pool

    def _check_saturation_complete(self, choice: ReformulationChoice) -> None:
        """Refuse to *execute* a saturation-backed plan over a truncated
        chase.

        Plan-time checks are not enough: a ``sat`` plan is cached without
        an epoch stamp (its SQL is write-proof), but a later write can
        make the saturation truncated — the guard must sit on the
        execution path, where the current store state is known.
        """
        uses_saturation = choice.strategy == "sat" or (
            choice.routing is not None and choice.routing.routed_to == "sat"
        )
        if (
            uses_saturation
            and self._saturator is not None
            and self._saturator.truncated
        ):
            raise ChaseTruncatedError(self.max_generations)

    def execute_choice(self, query: CQ, choice: ReformulationChoice) -> Set[Tuple]:
        """Evaluate an already-made reformulation choice (bench harness)."""
        self._check_saturation_complete(choice)
        with self._barrier.shared():
            rows = self._execute_sql(choice)
            self._check_saturation_complete(choice)  # see answer()
        return self._decode(query, rows)

    def _execute_sql(self, choice: ReformulationChoice) -> List[Tuple]:
        """Run a choice's SQL, passing the plan-time shard route through
        to a sharded backend (other backends take the plain path)."""
        if choice.shard_route is not None and isinstance(
            self.backend, ShardedBackend
        ):
            return self.backend.execute(choice.sql, route=choice.shard_route)
        return self.backend.execute(choice.sql)

    def _decode(self, query: CQ, rows: List[Tuple]) -> Set[Tuple]:
        if not query.head:
            return {()} if rows else set()
        decoded = {self.layout.dictionary.decode_row(row) for row in rows}
        if self._saturator is not None:
            # Saturated tables contain labeled nulls (existential
            # witnesses); they assert existence, not identity, so rows
            # naming them are not certain answers.
            decoded = {
                row
                for row in decoded
                if not any(is_null(value) for value in row)
            }
        return decoded

    # ------------------------------------------------------------------
    def cache_stats(self) -> Dict[str, Dict[str, int]]:
        """Current plan-, fragment- and cost-cache counters."""
        return {
            "plan": self.plan_cache.stats(),
            "fragments": self.reformulation_cache.stats(),
            "costs": self.cost_cache.stats(),
        }

    def _merged_registry(self) -> MetricsRegistry:
        """A read-only merge of every registry this system can see:
        the process-wide one, plus (on the process substrate) the shard
        workers' own registries fetched over one RPC per worker. Merging
        happens into a *fresh* registry so repeated calls never
        double-count the cumulative worker counters."""
        merged = MetricsRegistry()
        merged.merge_snapshot(get_registry().snapshot())
        fetch = getattr(self.backend, "metrics_snapshot", None)
        if fetch is not None:
            merged.merge_snapshot(fetch())
        if self._replicas is not None:
            replica_snapshot = self._replicas.metrics_snapshot()
            if replica_snapshot is not None:
                merged.merge_snapshot(replica_snapshot)
            merged.set_gauge("repro.replica.lag.max", self._replicas.max_lag())
        for cache_name, counters in self.cache_stats().items():
            for key, value in counters.items():
                merged.set_gauge(f"repro.cache.{cache_name}.{key}", value)
        merged.set_gauge("repro.data_epoch", self.data_epoch)
        return merged

    def metrics(self) -> Dict:
        """One unified metrics snapshot for the whole system.

        Counters, gauges and histogram summaries (p50/p95/p99) under the
        stable names catalogued in ``docs/OBSERVABILITY.md`` — the
        coordinator's process-wide registry merged with every forked
        shard worker's, plus the cache counters as gauges. JSON-able.
        """
        return self._merged_registry().snapshot()

    def metrics_prometheus(self) -> str:
        """The same unified view as :meth:`metrics`, rendered in the
        Prometheus plain-text exposition format."""
        return self._merged_registry().render_prometheus()

    def close(self) -> None:
        """Release the backend's resources and drop cached plans. Idempotent."""
        with self._serving_guard:
            pool, self._serving_pool = self._serving_pool, None
            self._serving_pool_size = 0
        if pool is not None:
            pool.shutdown(wait=True)
        if self._replicas is not None:
            self._replicas.close()
        self.backend.close()
        self.plan_cache.clear()
        self.reformulation_cache.clear()
        self.cost_cache.clear()

    def __enter__(self) -> "OBDASystem":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()
