"""Deterministic, seeded fault injection for the process substrate.

The supervision layer (:mod:`repro.storage.supervisor`) exists to keep
sharded query answering correct while worker processes die, hang, or
misbehave — and a fault-tolerance layer that is only ever exercised by
real outages is untested code. This module makes failures a *first-
class, reproducible input*: a :class:`FaultPlan` (parsed from the
``REPRO_FAULTS`` environment knob or built directly in tests) describes
which faults fire, where, and with what probability, all driven by a
seeded RNG so a failing chaos run replays exactly.

Fault sites
-----------
* **kill** — the worker calls ``os._exit(137)`` (indistinguishable from
  an OOM-kill / ``SIGKILL`` to the coordinator) either on the Nth RPC it
  serves (``kill_at``), whenever it serves a specific command
  (``kill_cmd``), or per-RPC with probability ``kill_p``.
* **delay** — the worker sleeps ``delay_ms`` before serving an RPC with
  probability ``delay_p`` (drives RPC-deadline paths).
* **drop** — the worker swallows an RPC without replying with
  probability ``drop_p`` (the coordinator's ``conn.poll`` deadline is
  the only thing standing between this and a hang).
* **shm attach** — the worker fails attaching the coordinator-created
  shared-memory segment (``shm_attach_p``), surfacing a
  :class:`TransientWorkerFault` (drives the retry-without-respawn path
  and the crash-path segment unlink).
* **spawn** — the coordinator-side supervisor fails a *respawn* attempt
  (``spawn_fails`` per shard; never the initial spawn), driving the
  circuit-breaker path.
* **replica kill / lag** — chaos for the read-replica serving tier
  (:mod:`repro.serving.replicas`): a replica's delta applier crashes
  the replica after applying a delta with probability
  ``replica_kill_p`` (bounded per replica by ``replica_kill_limit``;
  the router must heal it off a fresh bootstrap), or stalls
  ``replica_lag_ms`` before applying with probability
  ``replica_lag_p`` (drives the epoch-token wait and lag-deadline
  paths). Decisions draw from ``random.Random(f"{seed}:replica:
  {index}:{generation}")`` — per replica and per heal generation, the
  exact determinism contract the worker faults use.

Determinism
-----------
Worker-side decisions draw from ``random.Random(f"{seed}:{shard}:
{generation}")`` — per shard and per worker generation, so a respawned
worker's fault schedule is independent of how many RPCs its predecessor
served, and a run with the same plan, workload and shard count replays
the same faults. Kill budgets (``kill_limit``) live coordinator-side in
the :class:`FaultInjector` because worker-side counters die with the
worker; a budget is charged when a worker generation is *armed* with a
kill trigger, so exactly ``kill_limit`` generations carry one.

Grammar
-------
``REPRO_FAULTS`` is a comma-separated ``key=value`` list::

    REPRO_FAULTS="seed=42,kill_at=5,delay_p=0.05,delay_ms=10,shards=0|2"

Recognised keys: ``seed``, ``kill_at``, ``kill_cmd``, ``kill_p``,
``kill_limit``, ``delay_p``, ``delay_ms``, ``drop_p``,
``shm_attach_p``, ``shm_attach_limit``, ``spawn_fails``, ``shards``
(``|``-separated shard ids the plan applies to; default all),
``replica_kill_p``, ``replica_kill_limit``, ``replica_lag_p``,
``replica_lag_ms``. See ``docs/ROBUSTNESS.md`` for a cookbook.
"""

from __future__ import annotations

import os
import random
import threading
import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional

#: Environment knob: the fault plan (empty/unset = no faults).
FAULTS_ENV = "REPRO_FAULTS"

#: The exit status an injected kill dies with (mirrors ``128 + SIGKILL``
#: so coordinator-side handling cannot tell it from the real thing).
KILL_EXIT_CODE = 137


class TransientWorkerFault(RuntimeError):
    """A worker-side failure that is safe to retry on the same worker.

    The worker caught the failure and replied with it over a still-
    synchronized RPC stream (unlike a crash or timeout, after which the
    stream cannot be trusted), so the supervisor may simply retry the
    command with backoff. Raised by injected shm-attach failures; real
    transient allocation failures can use it too. Picklable (single
    message argument), so it crosses the worker pipe intact.
    """


def _parse_int(key: str, value: str) -> int:
    try:
        return int(value)
    except ValueError:
        raise ValueError(f"REPRO_FAULTS: {key} expects an integer, got {value!r}")


def _parse_float(key: str, value: str) -> float:
    try:
        return float(value)
    except ValueError:
        raise ValueError(f"REPRO_FAULTS: {key} expects a number, got {value!r}")


@dataclass(frozen=True)
class FaultPlan:
    """One immutable description of which faults fire (see the module
    docstring for the grammar and each field's semantics)."""

    seed: int = 0
    kill_at: Optional[int] = None
    kill_cmd: Optional[str] = None
    kill_p: float = 0.0
    kill_limit: Optional[int] = None
    delay_p: float = 0.0
    delay_ms: float = 0.0
    drop_p: float = 0.0
    shm_attach_p: float = 0.0
    shm_attach_limit: Optional[int] = None
    spawn_fails: int = 0
    shards: Optional[FrozenSet[int]] = None
    replica_kill_p: float = 0.0
    replica_kill_limit: Optional[int] = None
    replica_lag_p: float = 0.0
    replica_lag_ms: float = 0.0

    @property
    def enabled(self) -> bool:
        """Whether any fault can ever fire under this plan."""
        return bool(
            self.kill_at is not None
            or self.kill_cmd is not None
            or self.kill_p
            or (self.delay_p and self.delay_ms)
            or self.drop_p
            or self.shm_attach_p
            or self.spawn_fails
            or self.replica_faults
        )

    @property
    def replica_faults(self) -> bool:
        """Whether the plan targets the replica serving tier at all."""
        return bool(
            self.replica_kill_p or (self.replica_lag_p and self.replica_lag_ms)
        )

    def applies_to(self, shard: int) -> bool:
        """Whether this plan targets *shard* (no filter = all shards)."""
        return self.shards is None or shard in self.shards

    @property
    def kill_budget(self) -> Optional[int]:
        """Worker generations armed with a kill trigger, per shard.

        Explicit ``kill_limit`` wins; deterministic triggers
        (``kill_at`` / ``kill_cmd``) default to one kill per shard,
        probabilistic ``kill_p`` to unlimited (``None``).
        """
        if self.kill_limit is not None:
            return self.kill_limit
        if self.kill_at is not None or self.kill_cmd is not None:
            return 1
        return None

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the ``REPRO_FAULTS`` grammar; raises ``ValueError`` on
        unknown keys or malformed values (a silently ignored fault plan
        would be worse than a crash)."""
        fields: Dict[str, object] = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(f"REPRO_FAULTS: expected key=value, got {part!r}")
            key, _, value = part.partition("=")
            key = key.strip()
            value = value.strip()
            if key == "seed":
                fields["seed"] = _parse_int(key, value)
            elif key in (
                "kill_at",
                "kill_limit",
                "shm_attach_limit",
                "spawn_fails",
                "replica_kill_limit",
            ):
                fields[key] = _parse_int(key, value)
            elif key == "kill_cmd":
                fields["kill_cmd"] = value
            elif key in (
                "kill_p",
                "delay_p",
                "delay_ms",
                "drop_p",
                "shm_attach_p",
                "replica_kill_p",
                "replica_lag_p",
                "replica_lag_ms",
            ):
                fields[key] = _parse_float(key, value)
            elif key == "shards":
                fields["shards"] = frozenset(
                    _parse_int("shards", item) for item in value.split("|") if item
                )
            else:
                raise ValueError(f"REPRO_FAULTS: unknown key {key!r}")
        return cls(**fields)  # type: ignore[arg-type]

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        """The plan configured in ``REPRO_FAULTS``, or ``None``."""
        raw = os.environ.get(FAULTS_ENV, "").strip()
        if not raw:
            return None
        plan = cls.parse(raw)
        return plan if plan.enabled else None


@dataclass(frozen=True)
class WorkerFaultConfig:
    """The frozen slice of a plan one worker *generation* enforces.

    Built coordinator-side by :meth:`FaultInjector.worker_config` and
    handed to the worker at fork; the worker derives its RNG from
    *token*, so its fault schedule is a pure function of (plan seed,
    shard, generation).
    """

    token: str
    kill_at: Optional[int] = None
    kill_cmd: Optional[str] = None
    kill_p: float = 0.0
    delay_p: float = 0.0
    delay_ms: float = 0.0
    drop_p: float = 0.0
    shm_attach_p: float = 0.0
    shm_attach_limit: Optional[int] = None


class FaultInjector:
    """Coordinator-side fault bookkeeping: per-shard kill and spawn-fail
    budgets, and per-generation worker configs.

    Thread-safe; one injector serves every shard of one
    :class:`~repro.storage.sharded_backend.ShardedBackend`.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self._kills_remaining: Dict[int, Optional[int]] = {}
        self._spawn_fails_remaining: Dict[int, int] = {}
        self._spawn_fails_disabled = False

    @classmethod
    def from_env(cls) -> Optional["FaultInjector"]:
        """An injector for the ``REPRO_FAULTS`` plan, or ``None``."""
        plan = FaultPlan.from_env()
        return None if plan is None else cls(plan)

    def worker_config(
        self, shard: int, generation: int
    ) -> Optional[WorkerFaultConfig]:
        """The fault config arming worker *generation* of *shard*
        (``None`` when the plan has no worker-side faults for it).

        Kill triggers are budgeted per shard (:attr:`FaultPlan.
        kill_budget`): the budget is charged here, at arming time, so
        the schedule of which generations die is deterministic.
        """
        plan = self.plan
        if not plan.applies_to(shard):
            return None
        with self._lock:
            if shard not in self._kills_remaining:
                self._kills_remaining[shard] = plan.kill_budget
            remaining = self._kills_remaining[shard]
            arm_kill = remaining is None or remaining > 0
            if arm_kill and remaining is not None:
                self._kills_remaining[shard] = remaining - 1
        has_kill = plan.kill_at is not None or plan.kill_cmd is not None or plan.kill_p
        config = WorkerFaultConfig(
            token=f"{plan.seed}:{shard}:{generation}",
            kill_at=plan.kill_at if arm_kill else None,
            kill_cmd=plan.kill_cmd if arm_kill else None,
            kill_p=plan.kill_p if arm_kill else 0.0,
            delay_p=plan.delay_p,
            delay_ms=plan.delay_ms,
            drop_p=plan.drop_p,
            shm_attach_p=plan.shm_attach_p,
            shm_attach_limit=plan.shm_attach_limit,
        )
        if (arm_kill and has_kill) or (
            (plan.delay_p and plan.delay_ms) or plan.drop_p or plan.shm_attach_p
        ):
            return config
        return None

    def take_spawn_fail(self, shard: int) -> bool:
        """Consume one injected respawn failure for *shard* (``False``
        once the ``spawn_fails`` budget is exhausted or the shard is not
        targeted)."""
        if not self.plan.applies_to(shard) or not self.plan.spawn_fails:
            return False
        with self._lock:
            if self._spawn_fails_disabled:
                return False
            remaining = self._spawn_fails_remaining.setdefault(
                shard, self.plan.spawn_fails
            )
            if remaining <= 0:
                return False
            self._spawn_fails_remaining[shard] = remaining - 1
            return True

    def reset_spawn_fails(self) -> None:
        """Exhaust every remaining spawn-fail budget (tests flip this to
        let a tripped circuit's half-open probe succeed)."""
        with self._lock:
            self._spawn_fails_disabled = True


class FaultRuntime:
    """Worker-side enforcement of one :class:`WorkerFaultConfig`.

    Lives inside the forked worker's request loop; every decision draws
    from the config's seeded RNG (see the module docstring).
    """

    def __init__(self, config: WorkerFaultConfig) -> None:
        self.config = config
        self._rng = random.Random(config.token)
        self._rpcs_served = 0
        self._shm_fails = 0

    def before_command(self, cmd: str) -> Optional[str]:
        """Apply pre-dispatch faults for one received *cmd*.

        May never return (kill), may sleep (delay); returns ``"drop"``
        when the reply must be swallowed, else ``None``.
        """
        config = self.config
        self._rpcs_served += 1
        if config.kill_at is not None and self._rpcs_served >= config.kill_at:
            os._exit(KILL_EXIT_CODE)
        if config.kill_cmd is not None and cmd == config.kill_cmd:
            os._exit(KILL_EXIT_CODE)
        if config.kill_p and self._rng.random() < config.kill_p:
            os._exit(KILL_EXIT_CODE)
        if (
            config.delay_p
            and config.delay_ms
            and self._rng.random() < config.delay_p
        ):
            time.sleep(config.delay_ms / 1000.0)
        if config.drop_p and self._rng.random() < config.drop_p:
            return "drop"
        return None

    def fail_shm_attach(self) -> bool:
        """Whether this shm attach should fail (bounded by
        ``shm_attach_limit`` per worker lifetime)."""
        config = self.config
        if not config.shm_attach_p:
            return False
        if (
            config.shm_attach_limit is not None
            and self._shm_fails >= config.shm_attach_limit
        ):
            return False
        if self._rng.random() < config.shm_attach_p:
            self._shm_fails += 1
            return True
        return False
