"""FOL reformulation of CQs under DL-LiteR TBoxes.

* :mod:`perfectref` — the pioneering CQ-to-UCQ technique of Calvanese et
  al. [13] the paper builds on: exhaustive backward application of positive
  inclusions plus atom unification (*reduce*), to a fixpoint.
* :mod:`uscq` — CQ-to-USCQ reformulation in the spirit of Thomazo [33]:
  the UCQ is factorized into a union of semi-conjunctive queries, with a
  verified-equivalence guarantee.
"""

from repro.reformulation.perfectref import (
    perfectref,
    reformulate_to_ucq,
)
from repro.reformulation.uscq import reformulate_to_uscq, factorize_ucq

__all__ = [
    "factorize_ucq",
    "perfectref",
    "reformulate_to_ucq",
    "reformulate_to_uscq",
]
