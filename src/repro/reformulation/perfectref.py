"""PerfectRef: CQ-to-UCQ reformulation for DL-LiteR (Calvanese et al. [13]).

The algorithm exhaustively applies two specialization operations to the
input CQ and every CQ generated along the way, until a fixpoint:

* **backward constraint application** — an atom is replaced by the
  left-hand side of an applicable positive inclusion (read in the backward
  direction: the constraint is one of the possible *reasons* the atom may
  hold);
* **reduce** — two body atoms are specialized into their most general
  unifier; unification may turn bound variables into unbound ones, enabling
  further backward applications.

Generated CQs are deduplicated modulo variable renaming via
:meth:`repro.queries.cq.CQ.canonical_key`, which guarantees termination.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.dllite.axioms import Axiom, ConceptInclusion, RoleInclusion
from repro.dllite.tbox import TBox
from repro.dllite.vocabulary import AtomicConcept, BasicConcept, Exists, Role
from repro.queries.atoms import Atom, concept_atom, role_atom
from repro.queries.cq import CQ
from repro.queries.terms import Term, Variable, fresh_variable, is_variable
from repro.queries.ucq import UCQ
from repro.queries.unification import most_general_unifier


def _backward_concept_applications(
    atom: Atom,
    target: BasicConcept,
    inclusions: Iterable[ConceptInclusion],
    anchor: Term,
) -> List[Atom]:
    """Atoms obtained by applying inclusions into *target* backward.

    *anchor* is the term of *atom* that instances of *target* bind (the
    argument of a concept atom, or the non-unbound side of a role atom).
    """
    results: List[Atom] = []
    for axiom in inclusions:
        lhs = axiom.lhs
        if isinstance(lhs, AtomicConcept):
            results.append(concept_atom(lhs.name, anchor))
        else:
            assert isinstance(lhs, Exists)
            witness = fresh_variable()
            if lhs.role.inverse:
                results.append(role_atom(lhs.role.name, witness, anchor))
            else:
                results.append(role_atom(lhs.role.name, anchor, witness))
    return results


def _backward_role_application(atom: Atom, axiom: RoleInclusion) -> Atom:
    """Apply a role inclusion backward to a role atom.

    The axiom ``S1 <= S2`` (signed roles) with ``S2.name == atom.predicate``
    states ``S1(u, v) => S2(u, v)``; reading the target atom as the signed
    atom ``S2(u, v)`` fixes ``(u, v)``, and the specialized atom is the
    signed atom ``S1(u, v)`` rendered over the underlying role name.
    """
    first, second = atom.args
    if axiom.rhs.inverse:
        u, v = second, first
    else:
        u, v = first, second
    if axiom.lhs.inverse:
        return role_atom(axiom.lhs.name, v, u)
    return role_atom(axiom.lhs.name, u, v)


def _specializations_of_atom(atom: Atom, query: CQ, tbox: TBox) -> List[Atom]:
    """All single-step backward specializations of *atom* within *query*."""
    results: List[Atom] = []
    if atom.is_concept_atom:
        target: BasicConcept = AtomicConcept(atom.predicate)
        results.extend(
            _backward_concept_applications(
                atom, target, tbox.inclusions_into_concept(target), atom.args[0]
            )
        )
        return results

    unbound = query.unbound_variables()
    subject, obj = atom.args
    if is_variable(obj) and obj in unbound:
        target = Exists(Role(atom.predicate))
        results.extend(
            _backward_concept_applications(
                atom, target, tbox.inclusions_into_concept(target), subject
            )
        )
    if is_variable(subject) and subject in unbound:
        target = Exists(Role(atom.predicate, inverse=True))
        results.extend(
            _backward_concept_applications(
                atom, target, tbox.inclusions_into_concept(target), obj
            )
        )
    for axiom in tbox.inclusions_into_role(atom.predicate):
        results.append(_backward_role_application(atom, axiom))
    return results


#: Total :func:`perfectref` fixpoint runs in this process. The fixpoint is
#: the expensive core the caches exist to avoid; benchmarks take deltas of
#: :func:`perfectref_invocations` to show how much work sharing saved.
_INVOCATIONS = 0


def perfectref_invocations() -> int:
    """Process-wide count of PerfectRef fixpoint runs (monotone)."""
    return _INVOCATIONS


def perfectref(query: CQ, tbox: TBox, max_queries: Optional[int] = None) -> List[CQ]:
    """The UCQ reformulation of *query* w.r.t. *tbox*, as a list of CQs.

    The first element is always (a deduplicated copy of) the input query.
    ``max_queries`` optionally bounds the fixpoint as a safety valve for
    adversarial inputs; the workloads in this repository never hit it.
    """
    global _INVOCATIONS
    _INVOCATIONS += 1
    start = query.dedup_atoms()
    seen: Set[Tuple] = {start.canonical_key()}
    results: List[CQ] = [start]
    frontier: List[CQ] = [start]

    def consider(candidate: CQ) -> None:
        if max_queries is not None and len(results) >= max_queries:
            return
        candidate = candidate.dedup_atoms()
        key = candidate.canonical_key()
        if key in seen:
            return
        seen.add(key)
        results.append(candidate)
        frontier.append(candidate)

    while frontier:
        if max_queries is not None and len(results) >= max_queries:
            break
        current = frontier.pop()
        # (a) backward constraint applications, one atom at a time.
        for index, atom in enumerate(current.atoms):
            for specialized in _specializations_of_atom(atom, current, tbox):
                atoms = (
                    current.atoms[:index]
                    + (specialized,)
                    + current.atoms[index + 1 :]
                )
                consider(current.with_atoms(atoms))
        # (b) reduce: unify pairs of atoms.
        protected = current.head_variables()
        for i in range(len(current.atoms)):
            for j in range(i + 1, len(current.atoms)):
                unifier = most_general_unifier(
                    current.atoms[i], current.atoms[j], frozenset(protected)
                )
                if unifier is not None:
                    consider(current.apply(unifier))
    return results


def reformulate_to_ucq(
    query: CQ,
    tbox: TBox,
    minimize: bool = False,
    max_queries: Optional[int] = None,
) -> UCQ:
    """CQ-to-UCQ reformulation, optionally minimized (subsumed CQs removed)."""
    disjuncts = perfectref(query, tbox, max_queries=max_queries)
    ucq = UCQ(tuple(disjuncts), name=f"{query.name}_ucq")
    if minimize:
        ucq = ucq.minimized()
    return ucq
