"""CQ-to-USCQ reformulation by verified factorization of the UCQ.

Thomazo [33] shows that unions of *semi-conjunctive* queries (joins of
unions of single atoms) are often evaluated better by an RDBMS than the
equivalent flat UCQ, because shared join structure is expressed once.

This module factorizes a (minimized) UCQ reformulation into a USCQ:

1. every disjunct is canonically renamed, so identical structure gets
   identical variable names;
2. disjuncts whose bodies use the *same term tuples per atom slot* are
   grouped; each slot becomes a union block over the predicate alternatives
   observed in the group;
3. a group is only kept if its cross-product expansion is exactly covered
   by the original UCQ (each expanded CQ must be contained in some original
   disjunct) — groups where alternatives vary in at most one slot are exact
   by construction; wider groups are admitted only after verification.

The produced USCQ is therefore *equivalent* to the input UCQ by
construction, which tests assert property-based.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.dllite.tbox import TBox
from repro.queries.atoms import Atom
from repro.queries.cq import CQ
from repro.queries.homomorphism import contained_in_any
from repro.queries.scq import SCQ, AtomUnion, USCQ
from repro.queries.substitution import Substitution
from repro.queries.terms import Term, Variable, is_variable
from repro.queries.ucq import UCQ


@dataclass
class _Group:
    """A factorization group: fixed term tuples with predicate alternatives."""

    head: Tuple[Term, ...]
    slot_args: List[Tuple[Term, ...]]
    slot_predicates: List[Set[str]]
    members: List[CQ] = field(default_factory=list)

    def varying_slots(self) -> int:
        return sum(1 for preds in self.slot_predicates if len(preds) > 1)

    def expansion_size(self) -> int:
        size = 1
        for preds in self.slot_predicates:
            size *= len(preds)
        return size

    def expand(self) -> List[CQ]:
        """All CQs in the cross product of slot alternatives."""
        bodies: List[List[Atom]] = [[]]
        for args, preds in zip(self.slot_args, self.slot_predicates):
            bodies = [
                body + [Atom(pred, args)]
                for body in bodies
                for pred in sorted(preds)
            ]
        return [CQ(head=self.head, atoms=tuple(body)) for body in bodies]

    def to_scq(self, name: str) -> SCQ:
        blocks = []
        for index, (args, preds) in enumerate(
            zip(self.slot_args, self.slot_predicates)
        ):
            disjuncts = tuple(
                CQ(head=args, atoms=(Atom(pred, args),), name=f"b{index}")
                for pred in sorted(preds)
            )
            blocks.append(AtomUnion(disjuncts, name=f"block{index}"))
        return SCQ(head=self.head, blocks=tuple(blocks), name=name)


def _canonical(cq: CQ) -> CQ:
    """Canonicalize *cq* while preserving its head variable names.

    Head variables must keep their original names: JUSCQ components join on
    head-name equality across fragments, so renaming them would silently
    drop join conditions. Only existential variables are normalized, and
    atoms are re-emitted in a deterministic lexicographic-greedy order.
    """
    renaming: Dict[Variable, Variable] = {}
    for term in cq.head:
        if is_variable(term):
            renaming[term] = term
    fresh_index = 0

    def rank(term: Term):
        if not is_variable(term):
            return (0, str(term))
        if term in renaming:
            return (1, renaming[term].name)
        return (2, "")

    remaining = list(cq.atoms)
    ordered: List[Atom] = []
    while remaining:
        best = min(
            range(len(remaining)),
            key=lambda i: (
                remaining[i].predicate,
                remaining[i].arity,
                tuple(rank(t) for t in remaining[i].args),
            ),
        )
        atom = remaining.pop(best)
        for term in atom.args:
            if is_variable(term) and term not in renaming:
                renaming[term] = Variable(f"_e{fresh_index}")
                fresh_index += 1
        ordered.append(atom)

    substitution = Substitution(
        {var: target for var, target in renaming.items() if var != target}
    )
    head = tuple(substitution.apply_term(t) for t in cq.head)
    atoms = tuple(sorted(substitution.apply_atoms(ordered)))
    return CQ(head=head, atoms=atoms, name=cq.name)


def _try_align(group: _Group, cq: CQ) -> Optional[List[int]]:
    """Match each atom of *cq* to a distinct slot with equal term tuple.

    Returns the slot index per atom, or None when no bijection exists.
    """
    if len(cq.atoms) != len(group.slot_args) or cq.head != group.head:
        return None
    used: Set[int] = set()
    assignment: List[int] = []

    def backtrack(atom_index: int) -> bool:
        if atom_index == len(cq.atoms):
            return True
        atom = cq.atoms[atom_index]
        for slot, args in enumerate(group.slot_args):
            if slot in used or args != atom.args:
                continue
            used.add(slot)
            assignment.append(slot)
            if backtrack(atom_index + 1):
                return True
            used.discard(slot)
            assignment.pop()
        return False

    if backtrack(0):
        return assignment
    return None


def factorize_ucq(
    ucq: UCQ,
    verify_wide_groups: bool = True,
    name: str = "q_uscq",
) -> USCQ:
    """Factorize *ucq* into an equivalent USCQ (see module docstring)."""
    canonical_disjuncts = [_canonical(cq) for cq in ucq.disjuncts]
    groups: List[_Group] = []

    for cq in canonical_disjuncts:
        merged = False
        for group in groups:
            assignment = _try_align(group, cq)
            if assignment is None:
                continue
            new_slots = [
                slot
                for atom, slot in zip(cq.atoms, assignment)
                if atom.predicate not in group.slot_predicates[slot]
            ]
            already_varying = {
                s for s, preds in enumerate(group.slot_predicates) if len(preds) > 1
            }
            widened = set(new_slots) | already_varying
            if len(widened) > 1:
                if not verify_wide_groups:
                    continue
                # Tentatively widen, then verify exactness of the expansion.
                trial_predicates = [set(p) for p in group.slot_predicates]
                for atom, slot in zip(cq.atoms, assignment):
                    trial_predicates[slot].add(atom.predicate)
                trial = _Group(
                    group.head, group.slot_args, trial_predicates, group.members
                )
                if trial.expansion_size() > 256 or not all(
                    contained_in_any(expanded, ucq.disjuncts)
                    for expanded in trial.expand()
                ):
                    continue
                group.slot_predicates = trial_predicates
            else:
                for atom, slot in zip(cq.atoms, assignment):
                    group.slot_predicates[slot].add(atom.predicate)
            group.members.append(cq)
            merged = True
            break
        if not merged:
            groups.append(
                _Group(
                    head=cq.head,
                    slot_args=[atom.args for atom in cq.atoms],
                    slot_predicates=[{atom.predicate} for atom in cq.atoms],
                    members=[cq],
                )
            )

    scqs = tuple(
        group.to_scq(f"{name}_scq{i}") for i, group in enumerate(groups)
    )
    return USCQ(scqs, name=name)


def reformulate_to_uscq(
    query: CQ,
    tbox: TBox,
    minimize: bool = True,
    name: Optional[str] = None,
) -> USCQ:
    """CQ-to-USCQ reformulation: PerfectRef, minimize, factorize."""
    from repro.reformulation.perfectref import reformulate_to_ucq

    ucq = reformulate_to_ucq(query, tbox, minimize=minimize)
    return factorize_ucq(ucq, name=name or f"{query.name}_uscq")
