"""Read replicas: asynchronous followers of the primary's write path.

The scaling story of the ROADMAP's serving item: all reads used to
funnel through one backend behind one
:class:`~repro.serving.concurrency.ReadWriteBarrier`. This module lets
an :class:`~repro.obda.system.OBDASystem` host **N read-only replica
backends** that follow the primary asynchronously and serve the read
traffic between them:

* each :class:`Replica` is a full backend of the primary's kind
  (memory, sqlite, or sharded over any substrate), bootstrapped from
  the :class:`~repro.storage.replication.ReplicationLog`'s folded
  snapshot and caught up delta-by-delta by its own **applier thread** —
  writes on the primary return without waiting for any replica;
* the :class:`ReplicaSet` routes each read to a live replica with
  **least-loaded selection** (fewest in-flight queries wins, among
  replicas already at the required epoch) under **per-replica admission
  control** (a saturated replica sheds to its siblings; a fully
  saturated set fails fast with :class:`ReplicaSaturatedError` instead
  of queueing unboundedly);
* **session consistency** rides epoch tokens: a read carrying
  ``min_epoch=t`` blocks until its chosen replica has applied epoch
  ``t`` (deadline-bounded — a lagging set raises
  :class:`ReplicaLagTimeoutError`), so a client that writes at epoch
  ``t`` and reads with token ``t`` can never observe pre-write state;
* every answer reports the **exact epoch it observed**: the replica's
  applied epoch is frozen for the duration of the read by the replica's
  own read/write barrier (the applier takes the exclusive side per
  delta), which is what makes the session-consistency oracle in
  ``tests/backend_conformance.py`` sharp — an answer with token ``t``
  must equal the sequential oracle at precisely its reported epoch
  ``≥ t``.

Failure handling mirrors the PR 8 supervisor: a replica whose applier
(or read) fails is marked dead, routed around, and **healed** — rebuilt
from the replication log's current folded snapshot, exactly the
base-snapshot rebuild a crashed supervised worker gets — by a
background healer thread (or synchronously when no live replica
remains). The deterministic chaos knobs (``replica_kill_p``,
``replica_lag_p`` / ``replica_lag_ms`` in :mod:`repro.faults`) drive
these paths in the chaos suite.
"""

from __future__ import annotations

import atexit
import logging
import threading
import time
import weakref
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

import random

from repro.faults import FaultPlan
from repro.lifecycle import interpreter_exiting, mark_interpreter_exiting
from repro.obs.metrics import get_registry
from repro.obs.trace import current_span
from repro.serving.concurrency import (
    AdmissionController,
    QueryTimeoutError,
    ReadWriteBarrier,
    remaining_deadline,
)
from repro.storage.replication import EpochDelta, ReplicationLog, apply_delta

logger = logging.getLogger("repro.replicas")

#: How long ``execute`` waits at one replica's admission gate before
#: shedding to the next replica (seconds). Small on purpose: the point
#: of having siblings is not to queue behind a busy one.
ADMISSION_SHED_SECONDS = 0.05

#: Live replica sets, for the atexit backstop (weak: a collected set
#: was closed or will be caught by the shutdown latch in its healer).
_LIVE_SETS: "weakref.WeakSet[ReplicaSet]" = weakref.WeakSet()
_ATEXIT_REGISTERED = False
_ATEXIT_LOCK = threading.Lock()


def _close_live_sets() -> None:
    """atexit backstop: close any replica set a caller leaked.

    Latches interpreter shutdown first so an in-flight heal stops
    forking replacement backends while exit hooks drain the process
    table (see :mod:`repro.lifecycle`), then tears each leaked set
    down — stopping its healer and applier threads and closing every
    replica backend, process workers included.
    """
    mark_interpreter_exiting()
    for replica_set in list(_LIVE_SETS):
        try:
            replica_set.close()
        except Exception:  # pragma: no cover - best-effort teardown
            pass


def _register_atexit() -> None:
    global _ATEXIT_REGISTERED
    with _ATEXIT_LOCK:
        if not _ATEXIT_REGISTERED:
            atexit.register(_close_live_sets)
            _ATEXIT_REGISTERED = True


class ReplicaLagTimeoutError(QueryTimeoutError):
    """No replica reached the read's ``min_epoch`` token in time."""

    def __init__(self, min_epoch: int, seconds: float) -> None:
        QueryTimeoutError.__init__(self, seconds)
        self.args = (
            f"no replica reached epoch {min_epoch} within {seconds:g}s",
        )
        self.min_epoch = min_epoch


class ReplicaSaturatedError(QueryTimeoutError):
    """Every replica's admission gate stayed full for the whole wait."""

    def __init__(self, replicas: int, seconds: float) -> None:
        QueryTimeoutError.__init__(self, seconds)
        self.args = (
            f"all {replicas} replicas saturated for {seconds:g}s",
        )
        self.replicas = replicas


class _ReplicaDead(RuntimeError):
    """Internal: the chosen replica died mid-read; route elsewhere."""


class Replica:
    """One read-only follower: a backend plus its delta applier thread.

    Lifecycle: constructed in *catching-up* state and registered with
    the set **before** its bootstrap load runs, so no delta published
    in between is ever missed (deltas at or below the bootstrap epoch
    are skipped by the applier's idempotence guard). Reads are admitted
    only once :attr:`ready`.
    """

    def __init__(
        self,
        index: int,
        generation: int,
        backend_factory: Callable,
        log: ReplicationLog,
        max_in_flight: int = 8,
        fault_plan: Optional[FaultPlan] = None,
        kill_armed: bool = True,
    ) -> None:
        self.index = index
        self.generation = generation
        self._factory = backend_factory
        self._log = log
        self._cond = threading.Condition()
        self._pending: Deque[EpochDelta] = deque()
        self._barrier = ReadWriteBarrier()
        self.admission = AdmissionController(max_in_flight)
        self.backend = None
        self.applied_epoch = -1
        self.alive = True
        self.ready = False
        self.executions = 0
        self._closed = False
        plan = fault_plan if fault_plan is not None and fault_plan.replica_faults else None
        self._faults = plan
        self._kill_armed = kill_armed
        self._rng = (
            random.Random(f"{plan.seed}:replica:{index}:{generation}")
            if plan is not None
            else None
        )
        self._applier = threading.Thread(
            target=self._apply_loop,
            name=f"repro-replica-{index}.{generation}",
            daemon=True,
        )
        self._applier.start()

    # -- bootstrap -----------------------------------------------------
    def bootstrap(self) -> None:
        """Load the log's folded snapshot and open for reads.

        Runs outside the set's registration lock (a snapshot load can
        be slow); concurrent publishes land in :attr:`_pending` and the
        applier's epoch guard drops the already-folded ones.
        """
        backend = self._factory()
        data, epoch = self._log.snapshot()
        backend.load(data)
        with self._cond:
            if not self._closed:
                self.backend = backend
                self.applied_epoch = epoch
                self.ready = True
                self._cond.notify_all()
                backend = None
        if backend is not None:
            # Closed while the load ran (set teardown racing a heal):
            # the fresh backend was never published, so nobody else
            # will ever close it — release its resources here.
            backend.close()
            return
        self._set_lag_gauge()

    # -- write side ----------------------------------------------------
    def publish(self, delta: EpochDelta) -> None:
        """Enqueue one delta for asynchronous application (never blocks
        on the apply itself — the primary's write path calls this)."""
        with self._cond:
            if not self.alive or self._closed:
                return
            self._pending.append(delta)
            self._cond.notify_all()

    def _apply_loop(self) -> None:
        while True:
            with self._cond:
                while not self._pending and not self._closed:
                    self._cond.wait()
                if self._closed:
                    return
                delta = self._pending.popleft()
            if not self.ready or delta.epoch <= self.applied_epoch:
                continue  # folded into this generation's bootstrap
            try:
                self._apply_one(delta)
            except Exception:
                logger.warning(
                    "replica %d.%d applier failed at epoch %d; marking dead",
                    self.index,
                    self.generation,
                    delta.epoch,
                    exc_info=True,
                )
                self.die()
                return

    def _apply_one(self, delta: EpochDelta) -> None:
        faults = self._faults
        if (
            faults is not None
            and faults.replica_lag_p
            and faults.replica_lag_ms
            and self._rng.random() < faults.replica_lag_p
        ):
            time.sleep(faults.replica_lag_ms / 1000.0)
        # Exclusive vs in-flight reads: a read observes the whole delta
        # or none of it, and the epoch it reports matches its rows.
        with self._barrier.exclusive():
            apply_delta(self.backend, delta)
            with self._cond:
                self.applied_epoch = delta.epoch
                self._cond.notify_all()
        self._set_lag_gauge()
        if (
            faults is not None
            and self._kill_armed
            and faults.replica_kill_p
            and self._rng.random() < faults.replica_kill_p
        ):
            get_registry().inc("repro.replica.injected_kills")
            self.die()

    def _set_lag_gauge(self) -> None:
        get_registry().set_gauge(
            f"repro.replica.lag.r{self.index}",
            max(0, self._log.epoch - self.applied_epoch),
        )

    # -- read side -----------------------------------------------------
    def wait_for_epoch(self, epoch: int, timeout: float) -> bool:
        """Block until this replica has applied *epoch* (``True``) or
        the timeout passed / the replica died (``False``)."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while self.applied_epoch < epoch:
                if not self.alive or self._closed:
                    return False
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(remaining)
            return True

    def execute(self, sql: str, route=None) -> Tuple[List[Tuple], int]:
        """Evaluate *sql* under the replica's shared barrier; returns
        ``(rows, epoch observed)`` — the epoch cannot move mid-read."""
        with self._barrier.shared():
            if not self.alive or not self.ready:
                raise _ReplicaDead(f"replica {self.index} is not serving")
            try:
                if route is not None and hasattr(self.backend, "plan_route"):
                    rows = self.backend.execute(sql, route=route)
                else:
                    rows = self.backend.execute(sql)
            except _ReplicaDead:
                raise
            except Exception:
                self.die()
                raise
            epoch = self.applied_epoch
        self.executions += 1
        return rows, epoch

    @property
    def in_flight(self) -> int:
        """Queries currently admitted to this replica."""
        return self.admission.in_flight

    # -- failure and teardown ------------------------------------------
    def die(self) -> None:
        """Mark the replica dead: stop serving, drop queued deltas."""
        with self._cond:
            if not self.alive:
                return
            self.alive = False
            self.ready = False
            self._pending.clear()
            self._cond.notify_all()
        get_registry().inc("repro.replica.deaths")

    def close(self) -> None:
        """Stop the applier and release the backend. Idempotent."""
        with self._cond:
            self._closed = True
            self.alive = False
            self.ready = False
            self._pending.clear()
            self._cond.notify_all()
        if self._applier is not threading.current_thread():
            self._applier.join(timeout=5.0)
        backend, self.backend = self.backend, None
        if backend is not None:
            backend.close()


class ReplicaSet:
    """N replicas, a router, and a healer.

    The router's contract (``execute``): pick the **least-loaded live
    replica already at the read's epoch** (falling back to the least
    lagged one and waiting), admit under that replica's gate, run the
    read, and return ``(rows, epoch observed, replica index)``. Dead
    replicas are routed around and healed off the read path; when no
    live replica remains, the read heals one synchronously — degraded
    service, never an outage (the replication log can always rebuild).
    """

    def __init__(
        self,
        count: int,
        backend_factory: Callable,
        log: ReplicationLog,
        max_in_flight: int = 8,
        lag_timeout_seconds: float = 5.0,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        if count < 1:
            raise ValueError("a replica set needs at least one replica")
        self._factory = backend_factory
        self._log = log
        self._max_in_flight = max_in_flight
        self.lag_timeout_seconds = lag_timeout_seconds
        self._plan = fault_plan if fault_plan is not None else FaultPlan.from_env()
        self._lock = threading.Lock()
        self._closed = False
        self._generations = [0] * count
        self._kills_remaining: List[Optional[int]] = [
            self._plan.replica_kill_limit if self._plan is not None else None
        ] * count
        self.heals = 0
        self._replicas: List[Replica] = []
        for index in range(count):
            replica = self._new_replica(index)
            self._replicas.append(replica)
            replica.bootstrap()
        self._heal_needed = threading.Event()
        self._healer = threading.Thread(
            target=self._heal_loop, name="repro-replica-healer", daemon=True
        )
        self._healer.start()
        _LIVE_SETS.add(self)
        _register_atexit()
        get_registry().set_gauge("repro.replica.count", count)

    def _new_replica(self, index: int) -> Replica:
        """Construct (not bootstrap) the next generation of *index*,
        charging the per-replica kill budget at arming time — the same
        deterministic budgeting the worker fault injector uses."""
        generation = self._generations[index]
        self._generations[index] += 1
        kill_armed = True
        remaining = self._kills_remaining[index]
        if remaining is not None:
            kill_armed = remaining > 0
            if kill_armed:
                self._kills_remaining[index] = remaining - 1
        return Replica(
            index,
            generation,
            self._factory,
            self._log,
            max_in_flight=self._max_in_flight,
            fault_plan=self._plan,
            kill_armed=kill_armed,
        )

    # -- write side ----------------------------------------------------
    def publish(self, delta: EpochDelta) -> None:
        """Fan one recorded delta out to every replica's queue; wake the
        healer for any dead one. Never blocks on an apply."""
        wake = False
        with self._lock:
            for replica in self._replicas:
                if replica.alive:
                    replica.publish(delta)
                else:
                    wake = True
        if wake:
            self._heal_needed.set()

    # -- healing -------------------------------------------------------
    def _heal_loop(self) -> None:
        while True:
            self._heal_needed.wait()
            if self._closed or interpreter_exiting():
                return
            self._heal_needed.clear()
            try:
                while self._heal_one() and not self._closed:
                    pass
            except Exception:  # pragma: no cover - heal must never die
                logger.warning("replica heal failed", exc_info=True)

    def _heal_one(self) -> bool:
        """Rebuild one dead replica from the log's folded snapshot;
        ``True`` when one was healed (call again — more may be dead)."""
        with self._lock:
            if self._closed or interpreter_exiting():
                return False
            dead = next(
                (
                    i
                    for i, replica in enumerate(self._replicas)
                    if not replica.alive
                ),
                None,
            )
            if dead is None:
                return False
            old = self._replicas[dead]
            # Registered before bootstrap: no published delta is missed.
            replacement = self._new_replica(dead)
            self._replicas[dead] = replacement
        old.close()
        try:
            replacement.bootstrap()
        except Exception:
            replacement.die()
            raise
        self.heals += 1
        get_registry().inc("repro.replica.heals")
        logger.warning(
            "replica %d healed (generation %d, epoch %d)",
            dead,
            replacement.generation,
            replacement.applied_epoch,
        )
        return True

    # -- read side -----------------------------------------------------
    def _candidates(self, min_epoch: int) -> List[Replica]:
        """Live, serving replicas — those already at *min_epoch* first,
        least-loaded within each group (ties broken by index for
        determinism)."""
        with self._lock:
            live = [
                replica
                for replica in self._replicas
                if replica.alive and replica.ready
            ]
        return sorted(
            live,
            key=lambda replica: (
                replica.applied_epoch < min_epoch,
                replica.in_flight,
                replica.index,
            ),
        )

    def execute(
        self,
        sql: str,
        min_epoch: int = 0,
        route=None,
        timeout_seconds: Optional[float] = None,
    ) -> Tuple[List[Tuple], int, int]:
        """Route one read: returns ``(rows, epoch observed, replica)``.

        The deadline is the smaller of *timeout_seconds* (default: the
        set's lag timeout) and the serving layer's remaining per-query
        deadline. Within it the router sheds across saturated replicas,
        waits out replica lag, and survives any number of replica
        deaths (healing synchronously if it runs out of live ones); a
        blown deadline raises :class:`ReplicaLagTimeoutError` /
        :class:`ReplicaSaturatedError`, both
        :class:`~repro.serving.concurrency.QueryTimeoutError`.
        """
        budget = (
            timeout_seconds
            if timeout_seconds is not None
            else self.lag_timeout_seconds
        )
        remaining = remaining_deadline()
        if remaining is not None:
            budget = min(budget, max(0.0, remaining))
        deadline = time.monotonic() + budget
        registry = get_registry()
        saw_lag = False
        with current_span().child(
            "replica.execute", min_epoch=min_epoch
        ) as span:
            while True:
                candidates = self._candidates(min_epoch)
                if not candidates:
                    # Degraded: no live replica at all. Heal one on the
                    # read path — slower than routing, never an outage.
                    self._heal_one()
                    candidates = self._candidates(min_epoch)
                    if not candidates:
                        raise ReplicaLagTimeoutError(min_epoch, budget)
                admitted = None
                for replica in candidates:
                    shed = min(
                        ADMISSION_SHED_SECONDS,
                        max(0.0, deadline - time.monotonic()),
                    )
                    if replica.admission.admit(timeout=shed):
                        admitted = replica
                        break
                    registry.inc("repro.replica.sheds")
                if admitted is None:
                    if time.monotonic() >= deadline:
                        raise ReplicaSaturatedError(len(candidates), budget)
                    continue
                try:
                    if admitted.applied_epoch < min_epoch:
                        saw_lag = True
                        waited = time.perf_counter()
                        caught_up = admitted.wait_for_epoch(
                            min_epoch,
                            max(0.0, deadline - time.monotonic()),
                        )
                        registry.observe(
                            "repro.replica.wait.seconds",
                            time.perf_counter() - waited,
                        )
                        if not caught_up:
                            if not admitted.alive:
                                self._heal_needed.set()
                                continue  # died mid-wait: route around
                            raise ReplicaLagTimeoutError(min_epoch, budget)
                    rows, epoch = admitted.execute(sql, route=route)
                except _ReplicaDead:
                    self._heal_needed.set()
                    if time.monotonic() >= deadline:
                        raise ReplicaLagTimeoutError(min_epoch, budget)
                    continue
                except Exception:
                    if not admitted.alive:
                        self._heal_needed.set()
                    raise
                finally:
                    admitted.admission.release()
                registry.inc("repro.replica.executions")
                if saw_lag:
                    registry.inc("repro.replica.lagged_reads")
                if span.enabled:
                    span.set(replica=admitted.index, epoch=epoch)
                return rows, epoch, admitted.index

    # -- introspection -------------------------------------------------
    @property
    def count(self) -> int:
        """How many replica slots the set maintains."""
        with self._lock:
            return len(self._replicas)

    def replica(self, index: int) -> Replica:
        """The current generation serving slot *index* (tests/chaos)."""
        with self._lock:
            return self._replicas[index]

    def kill(self, index: int) -> None:
        """Crash one replica (chaos/testing): it stops serving and the
        healer rebuilds it from the replication log."""
        self.replica(index).die()
        self._heal_needed.set()

    def telemetry(self) -> Dict:
        """Router counters plus one status dict per replica."""
        with self._lock:
            replicas = list(self._replicas)
        log_epoch = self._log.epoch
        return {
            "replicas": len(replicas),
            "heals": self.heals,
            "per_replica": [
                {
                    "replica": replica.index,
                    "generation": replica.generation,
                    "alive": replica.alive,
                    "applied_epoch": replica.applied_epoch,
                    "lag": max(0, log_epoch - replica.applied_epoch),
                    "in_flight": replica.in_flight,
                    "executions": replica.executions,
                }
                for replica in replicas
            ],
        }

    def max_lag(self) -> int:
        """Epochs the most-lagged live replica is behind the log."""
        log_epoch = self._log.epoch
        with self._lock:
            lags = [
                log_epoch - replica.applied_epoch
                for replica in self._replicas
                if replica.alive and replica.ready
            ]
        return max(lags, default=0)

    def metrics_snapshot(self) -> Optional[Dict]:
        """Replica-backend registries the coordinator cannot see (only
        sharded-process replicas hold any), merged into one snapshot."""
        merged = None
        with self._lock:
            replicas = list(self._replicas)
        for replica in replicas:
            fetch = getattr(replica.backend, "metrics_snapshot", None)
            snapshot = fetch() if fetch is not None else None
            if snapshot:
                if merged is None:
                    from repro.obs.metrics import MetricsRegistry

                    merged = MetricsRegistry()
                merged.merge_snapshot(snapshot)
        return merged.snapshot() if merged is not None else None

    def close(self) -> None:
        """Tear down the healer, the appliers and every backend."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            replicas = list(self._replicas)
        _LIVE_SETS.discard(self)
        self._heal_needed.set()
        self._healer.join(timeout=5.0)
        for replica in replicas:
            replica.close()
