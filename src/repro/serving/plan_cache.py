"""A bounded, thread-safe LRU cache of reformulation choices.

The key is built by :meth:`repro.obda.system.OBDASystem._plan_key`:
``(query.canonical_key(), strategy, cost, minimize, use_uscq)``. The
query's *canonical* key (equality modulo variable renaming) means two
syntactically different spellings of the same query share one plan; every
flag that can change the chosen reformulation is part of the key, so e.g.
a ``use_uscq=True`` plan is never served where a JUCQ plan was requested.

The cached value is an entire :class:`~repro.obda.system.
ReformulationChoice` — reformulation, SQL and search result — so a hit
skips the whole reformulate-translate pipeline. Eviction is
least-recently-used; capacity bounds memory for long-lived serving
processes.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple


class PlanCache:
    """LRU mapping plan keys to cached plans, with hit/miss counters."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("plan cache capacity must be at least 1")
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple, object]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: Tuple) -> Optional[object]:
        """The cached plan for *key*, or ``None``; refreshes recency."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: Tuple, plan: object) -> None:
        """Insert (or refresh) *key*, evicting the LRU entry if full."""
        with self._lock:
            self._entries[key] = plan
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Tuple) -> bool:
        return key in self._entries

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> Dict[str, int]:
        """A snapshot of the counters (reported on ``AnswerReport``)."""
        return {
            "entries": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
        }
