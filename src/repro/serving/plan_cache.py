"""A bounded, thread-safe LRU cache of reformulation choices.

The key is built by :meth:`repro.obda.system.OBDASystem._plan_key`:
``(query.canonical_key(), strategy, cost, minimize, use_uscq)``. The
query's *canonical* key (equality modulo variable renaming) means two
syntactically different spellings of the same query share one plan; every
flag that can change the chosen reformulation is part of the key, so e.g.
a ``use_uscq=True`` plan is never served where a JUCQ plan was requested.

The cached value is an entire :class:`~repro.obda.system.
ReformulationChoice` — reformulation, SQL and search result — so a hit
skips the whole reformulate-translate pipeline. Eviction is
least-recently-used; capacity bounds memory for long-lived serving
processes.

**Writes and the data epoch.** A plan chosen by a cost-based search (GDL,
EDL, the ``auto`` router) is only the *best* plan for the statistics it
was priced against, so the system stores it stamped with its data epoch;
data-independent plans (``ucq``, ``croot``, ``sat`` — over fully encoded
constants) are stored with ``epoch=None`` and survive every write. The
stale-dropping rule lives in the shared :class:`~repro.cost.cache.
EpochLRU` base.
"""

from __future__ import annotations

from typing import Dict

from repro.cost.cache import EpochLRU


class PlanCache(EpochLRU):
    """LRU mapping plan keys to cached plans, with hit/miss counters."""

    #: Prefix under which :meth:`repro.obda.system.OBDASystem.metrics`
    #: publishes these counters as gauges (``repro.cache.plan.hits``,
    #: ...) — the stable names in the ``docs/OBSERVABILITY.md`` catalog.
    metric_prefix = "repro.cache.plan"

    def __init__(self, capacity: int = 256) -> None:
        if capacity is None or capacity < 1:
            raise ValueError("plan cache capacity must be at least 1")
        super().__init__(capacity)

    def stats(self) -> Dict[str, int]:
        """A snapshot of the counters (reported on ``AnswerReport``)."""
        snapshot = super().stats()
        snapshot["capacity"] = self.capacity
        return snapshot
