"""Concurrency primitives for the serving layer.

Three small, self-contained pieces used by
:meth:`repro.obda.system.OBDASystem.answer_many` and the write path:

* :class:`ReadWriteBarrier` — the reader/writer discipline between
  in-flight queries and the epoch-based write path: queries hold the
  shared side around their backend read, writes take the exclusive side,
  which **drains** every in-flight query before the backend, statistics
  and data epoch mutate (and admits no new query until done). Writer
  preference keeps a steady query stream from starving writes.
* :class:`AdmissionController` — a counting gate bounding how many
  queries are dispatched-but-unfinished (*in-flight*), so a huge batch
  cannot flood the executor queue; carries telemetry counters.
* :class:`QueryTimeoutError` — raised (or collected onto the query's
  report) when one query exceeds the batch's per-query deadline.
* :func:`deadline_scope` / :func:`current_deadline` — a contextvar
  carrying the query's **absolute** deadline down the call stack, so
  storage-layer RPC waits (the sharded backend's worker calls) can cap
  their own timeouts at ``min(rpc_timeout, remaining)`` instead of
  letting shard RPCs run on after the serving layer has already
  abandoned the future.
"""

from __future__ import annotations

import contextvars
import threading
import time
from typing import Dict, Optional, Tuple

from repro.obs.metrics import get_registry


class QueryTimeoutError(RuntimeError):
    """A query missed its per-query deadline in ``answer_many``.

    The worker thread evaluating the query is not killed — Python
    threads cannot be — so its result is discarded when it eventually
    arrives; the caller gets this error instead.
    """

    def __init__(self, seconds: float) -> None:
        super().__init__(f"query exceeded its {seconds:g}s deadline")
        self.seconds = seconds


#: The active query deadline: ``(absolute monotonic expiry, budget
#: seconds)`` or ``None``. Contextvars do not flow into pool threads
#: automatically — ``answer_many`` sets this *inside* each dispatched
#: task, and the sharded backend reads it at ``execute`` entry (the
#: same thread) before fanning out.
_DEADLINE: "contextvars.ContextVar[Optional[Tuple[float, float]]]" = (
    contextvars.ContextVar("repro_query_deadline", default=None)
)


class deadline_scope:
    """Context manager marking the current context's query deadline.

    ``deadline_scope(None)`` is a no-op, so callers need not branch on
    whether a per-query timeout is configured. Scopes nest; the inner
    one wins for its duration (restored on exit).
    """

    __slots__ = ("_seconds", "_token")

    def __init__(self, seconds: Optional[float]) -> None:
        self._seconds = seconds
        self._token = None

    def __enter__(self) -> "deadline_scope":
        if self._seconds is not None:
            self._token = _DEADLINE.set(
                (time.monotonic() + self._seconds, self._seconds)
            )
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        if self._token is not None:
            _DEADLINE.reset(self._token)


def current_deadline() -> Optional[Tuple[float, float]]:
    """The active ``(absolute monotonic expiry, budget seconds)``
    deadline, or ``None`` when the context has none."""
    return _DEADLINE.get()


def remaining_deadline() -> Optional[float]:
    """Seconds left on the active deadline (negative once blown);
    ``None`` when the context has none."""
    deadline = _DEADLINE.get()
    return None if deadline is None else deadline[0] - time.monotonic()


class ReadWriteBarrier:
    """A writer-preference readers/writer lock.

    Any number of readers share the barrier; a writer is exclusive.
    A waiting writer blocks *new* readers (preference), then drains the
    in-flight ones — exactly the "writes take an exclusive barrier that
    drains in-flight queries" contract the write path needs so a query
    never observes a half-applied (backend ahead of statistics, epoch
    behind backend) write.
    """

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._active_readers = 0
        self._active_writer = False
        self._waiting_writers = 0
        # Sections are stateless; preallocating spares the query hot
        # path one object construction per backend read.
        self._shared_section = self._Section(
            self.acquire_read, self.release_read
        )
        self._exclusive_section = self._Section(
            self.acquire_write, self.release_write
        )

    # -- reader side ---------------------------------------------------
    def acquire_read(self) -> None:
        """Enter the shared section (blocks while a writer is active or
        waiting)."""
        with self._condition:
            while self._active_writer or self._waiting_writers:
                self._condition.wait()
            self._active_readers += 1

    def release_read(self) -> None:
        """Leave the shared section."""
        with self._condition:
            self._active_readers -= 1
            if self._active_readers == 0:
                self._condition.notify_all()

    # -- writer side ---------------------------------------------------
    def acquire_write(self) -> None:
        """Enter the exclusive section: block new readers, drain current
        ones."""
        with self._condition:
            self._waiting_writers += 1
            try:
                while self._active_writer or self._active_readers:
                    self._condition.wait()
            finally:
                self._waiting_writers -= 1
            self._active_writer = True

    def release_write(self) -> None:
        """Leave the exclusive section."""
        with self._condition:
            self._active_writer = False
            self._condition.notify_all()

    # -- context-manager views ----------------------------------------
    class _Section:
        def __init__(self, acquire, release) -> None:
            self._acquire = acquire
            self._release = release

        def __enter__(self) -> None:
            self._acquire()

        def __exit__(self, exc_type, exc_value, traceback) -> None:
            self._release()

    def shared(self) -> "ReadWriteBarrier._Section":
        """``with barrier.shared():`` — a query's backend-read section."""
        return self._shared_section

    def exclusive(self) -> "ReadWriteBarrier._Section":
        """``with barrier.exclusive():`` — a write's mutation section."""
        return self._exclusive_section


class AdmissionController:
    """Bounds in-flight queries and counts what it admitted.

    ``max_in_flight`` is the cap on queries dispatched but not yet
    finished; the coordinator blocks before dispatching beyond it, so
    executor queues stay short and per-query deadlines stay meaningful.
    """

    def __init__(self, max_in_flight: int) -> None:
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be at least 1")
        self.max_in_flight = max_in_flight
        self._gate = threading.BoundedSemaphore(max_in_flight)
        self._lock = threading.Lock()
        self.admitted = 0
        self.in_flight = 0
        self.peak_in_flight = 0
        #: Monotone count of slots given back. A caller that just proved
        #: the gate full for a whole timeout can compare this before and
        #: after: unchanged means nothing freed meanwhile, so waiting the
        #: full timeout again would be pure wasted wall-clock.
        self.released = 0

    def admit(self, timeout: Optional[float] = None) -> bool:
        """Take a slot, blocking until one frees.

        With a *timeout*, gives up after that many seconds and returns
        ``False`` (no slot taken) — the escape hatch that keeps a batch
        with per-query deadlines from hanging at the gate behind hung
        queries that never release their slots.
        """
        if not self._gate.acquire(timeout=timeout):
            get_registry().inc("repro.serving.admission.timeouts")
            return False
        with self._lock:
            self.admitted += 1
            self.in_flight += 1
            self.peak_in_flight = max(self.peak_in_flight, self.in_flight)
        get_registry().inc("repro.serving.admission.admitted")
        return True

    def release(self) -> None:
        """Give the slot back (the query finished or failed)."""
        with self._lock:
            self.in_flight -= 1
            self.released += 1
        self._gate.release()

    def stats(self) -> Dict[str, int]:
        """Telemetry snapshot: admitted / in-flight / peak / capacity."""
        with self._lock:
            return {
                "max_in_flight": self.max_in_flight,
                "admitted": self.admitted,
                "in_flight": self.in_flight,
                "peak_in_flight": self.peak_in_flight,
                "released": self.released,
            }
