"""An asyncio HTTP edge for the OBDA system — stdlib only.

The thinnest possible serving front-end (the paper's premise is that
the heavy lifting — reformulation, routing, evaluation — already lives
below): one :class:`ServingEndpoint` wraps an
:class:`~repro.obda.system.OBDASystem` and exposes its batch API over
HTTP/1.1 on an ``asyncio`` server running in a background thread, so
tests and local deployments get a network edge without any dependency
beyond the standard library.

Routes:

``POST /answer``
    Body ``{"queries": [...], "strategy"?, "cost"?, "min_epoch"?,
    "max_workers"?, "timeout_seconds"?}``. Queries are textual CQs;
    ``min_epoch`` is the client's session token (see
    :meth:`~repro.obda.system.OBDASystem.epoch_token`). Always runs
    with ``on_error="collect"`` — one bad query yields one error entry,
    not a failed batch. Returns ``{"reports": [{"query", "answers",
    "epoch", "replica", "error"}...], "epoch_token"}``; the token is
    the newest epoch any answer in the batch observed, so a client can
    thread it into its next request for monotonic reads.
``POST /write``
    Body ``{"insert": [["C","a"], ["R","a","b"], ...], "delete":
    [...]}``. Returns ``{"inserted", "deleted", "epoch_token"}`` — the
    token a read-your-writes client passes as its next ``min_epoch``.
``GET /metrics``
    The unified registry (coordinator + shard workers + replicas) in
    the Prometheus plain-text exposition format.
``GET /epoch``
    ``{"epoch": N}`` — the primary's current data epoch.
``GET /healthz``
    ``{"ok": true, "replicas": N}`` (0 when unreplicated).

The event loop never blocks on query work: each request's system call
runs on the loop's default thread-pool executor, and the system's own
admission control / replica router do the real scheduling underneath.
"""

from __future__ import annotations

import asyncio
import functools
import json
import threading
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import get_registry

#: Largest request body accepted, in bytes (a serving edge should bound
#: what it buffers; batches this large belong on the in-process API).
MAX_BODY_BYTES = 8 * 1024 * 1024

_JSON = "application/json"
_TEXT = "text/plain; version=0.0.4; charset=utf-8"


class _HttpError(Exception):
    """Internal: maps a handler failure to an HTTP status + message."""

    def __init__(self, status: int, message: str) -> None:
        Exception.__init__(self, message)
        self.status = status
        self.message = message


def _json_bytes(payload: Dict) -> bytes:
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def _encode_report(report) -> Dict:
    """One AnswerReport as a JSON-able dict (answers sorted for
    deterministic wire output; errors as type + message)."""
    encoded: Dict = {
        "query": str(report.query),
        "answers": sorted(list(row) for row in report.answers),
        "epoch": report.epoch,
        "replica": report.replica,
        "error": None,
    }
    if report.error is not None:
        encoded["error"] = {
            "type": type(report.error).__name__,
            "message": str(report.error),
        }
    return encoded


def _parse_facts(raw, field: str) -> List[Tuple]:
    """Wire facts (``["C","a"]`` / ``["R","a","b"]``) as assertion
    tuples, with a 400 on anything malformed."""
    if raw is None:
        return []
    if not isinstance(raw, list):
        raise _HttpError(400, f"'{field}' must be a list of facts")
    facts: List[Tuple] = []
    for entry in raw:
        if (
            not isinstance(entry, (list, tuple))
            or len(entry) not in (2, 3)
            or not all(isinstance(part, str) for part in entry)
        ):
            raise _HttpError(
                400,
                f"'{field}' entries must be [concept, individual] or "
                f"[role, subject, object] string lists; got {entry!r}",
            )
        facts.append(tuple(entry))
    return facts


class ServingEndpoint:
    """One OBDA system behind an asyncio HTTP/1.1 server.

    Runs its event loop on a dedicated daemon thread; :meth:`start`
    returns once the socket is bound (``port`` then carries the real
    port — pass ``port=0`` to let the OS pick). The endpoint borrows
    the system, it does not own it: :meth:`close` stops the server and
    leaves the system running.
    """

    def __init__(
        self, system, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.system = system
        self.host = host
        self.port = port
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._startup_error: Optional[BaseException] = None

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "ServingEndpoint":
        """Bind and serve in the background; returns self when ready."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run, name="repro-http", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _run(self) -> None:
        asyncio.run(self._serve())

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            self._server = await asyncio.start_server(
                self._handle, self.host, self.port
            )
        except OSError as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self.port = self._server.sockets[0].getsockname()[1]
        self._ready.set()
        async with self._server:
            await self._stop.wait()

    def close(self) -> None:
        """Stop accepting, drain the loop thread. Idempotent."""
        loop, self._loop = self._loop, None
        if loop is None:
            return
        try:
            loop.call_soon_threadsafe(self._stop.set)
        except RuntimeError:  # loop already closed
            pass
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def __enter__(self) -> "ServingEndpoint":
        return self.start()

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    @property
    def url(self) -> str:
        """Base URL of the bound endpoint."""
        return f"http://{self.host}:{self.port}"

    # -- request plumbing ----------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, content_type, body = await self._respond(reader)
        except Exception as exc:  # defense: the edge must answer
            status, content_type, body = (
                500,
                _JSON,
                _json_bytes({"error": str(exc)}),
            )
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found"}.get(
            status, "Internal Server Error"
        )
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        )
        try:
            writer.write(head.encode("ascii") + body)
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):
            pass  # client went away mid-response

    async def _respond(
        self, reader: asyncio.StreamReader
    ) -> Tuple[int, str, bytes]:
        request_line = await reader.readline()
        parts = request_line.decode("ascii", "replace").split()
        if len(parts) < 2:
            return 400, _JSON, _json_bytes({"error": "malformed request"})
        method, path = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("ascii", "replace").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return 400, _JSON, _json_bytes(
                        {"error": "bad Content-Length"}
                    )
        if content_length > MAX_BODY_BYTES:
            return 400, _JSON, _json_bytes({"error": "body too large"})
        body = (
            await reader.readexactly(content_length)
            if content_length
            else b""
        )
        get_registry().inc("repro.http.requests")
        try:
            return await self._route(method, path, body)
        except _HttpError as exc:
            get_registry().inc("repro.http.errors")
            return exc.status, _JSON, _json_bytes({"error": exc.message})
        except Exception as exc:
            get_registry().inc("repro.http.errors")
            return 500, _JSON, _json_bytes(
                {"error": f"{type(exc).__name__}: {exc}"}
            )

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, str, bytes]:
        if method == "GET" and path == "/metrics":
            text = await self._offload(self.system.metrics_prometheus)
            return 200, _TEXT, text.encode("utf-8")
        if method == "GET" and path == "/epoch":
            return 200, _JSON, _json_bytes({"epoch": self.system.data_epoch})
        if method == "GET" and path == "/healthz":
            replica_set = self.system.replica_set
            return 200, _JSON, _json_bytes(
                {
                    "ok": True,
                    "replicas": replica_set.count
                    if replica_set is not None
                    else 0,
                }
            )
        if method == "POST" and path == "/answer":
            return await self._answer(self._json_body(body))
        if method == "POST" and path == "/write":
            return await self._write(self._json_body(body))
        raise _HttpError(404, f"no route for {method} {path}")

    def _json_body(self, body: bytes) -> Dict:
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HttpError(400, f"invalid JSON body: {exc}") from None
        if not isinstance(payload, dict):
            raise _HttpError(400, "body must be a JSON object")
        return payload

    async def _offload(self, fn, *args, **kwargs):
        """Run blocking system work off the event loop."""
        return await asyncio.get_running_loop().run_in_executor(
            None, functools.partial(fn, *args, **kwargs)
        )

    # -- handlers ------------------------------------------------------
    async def _answer(self, payload: Dict) -> Tuple[int, str, bytes]:
        queries = payload.get("queries")
        if not isinstance(queries, list) or not all(
            isinstance(query, str) for query in queries
        ):
            raise _HttpError(400, "'queries' must be a list of strings")
        kwargs: Dict = {"on_error": "collect"}
        if "strategy" in payload:
            kwargs["strategy"] = payload["strategy"]
        if "cost" in payload:
            kwargs["cost"] = payload["cost"]
        if "min_epoch" in payload:
            min_epoch = payload["min_epoch"]
            if not isinstance(min_epoch, int) or min_epoch < 0:
                raise _HttpError(
                    400, "'min_epoch' must be a non-negative integer"
                )
            kwargs["min_epoch"] = min_epoch
        if "max_workers" in payload:
            kwargs["max_workers"] = payload["max_workers"]
        if "timeout_seconds" in payload:
            kwargs["timeout_seconds"] = payload["timeout_seconds"]
        reports = await self._offload(
            self.system.answer_many, queries, **kwargs
        )
        epochs = [
            report.epoch for report in reports if report.epoch is not None
        ]
        return 200, _JSON, _json_bytes(
            {
                "reports": [_encode_report(report) for report in reports],
                "epoch_token": max(epochs, default=self.system.data_epoch),
            }
        )

    async def _write(self, payload: Dict) -> Tuple[int, str, bytes]:
        inserts = _parse_facts(payload.get("insert"), "insert")
        deletes = _parse_facts(payload.get("delete"), "delete")
        inserted = deleted = 0
        if inserts:
            inserted = await self._offload(
                self.system.insert_facts, inserts
            )
        if deletes:
            deleted = await self._offload(self.system.delete_facts, deletes)
        return 200, _JSON, _json_bytes(
            {
                "inserted": inserted,
                "deleted": deleted,
                "epoch_token": self.system.epoch_token(),
            }
        )
