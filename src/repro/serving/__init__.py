"""Serving-grade shared-work answering.

The paper's pipeline (Figure 1) prices and reformulates each query from
scratch; a serving system answering heavy repeated traffic must not. This
package holds the machinery :class:`~repro.obda.system.OBDASystem` uses to
share work across queries:

* :class:`~repro.serving.plan_cache.PlanCache` — a thread-safe LRU from a
  *plan key* (the query's canonical form plus every flag that changes the
  chosen plan) to the finished :class:`~repro.obda.system.
  ReformulationChoice`, so a repeated query skips cover search, fragment
  reformulation and SQL translation entirely;
* the fragment-level :class:`~repro.cost.cache.ReformulationCache` lives
  in :mod:`repro.cost.cache` (the cost layer owns it because estimators
  are its main consumers), and is shared by the system across strategies
  and queries;
* :mod:`repro.serving.concurrency` — the concurrent-serving primitives
  behind ``answer_many``'s shared executor: the
  :class:`~repro.serving.concurrency.ReadWriteBarrier` (writes drain
  in-flight queries before the backend, statistics and data epoch
  mutate), :class:`~repro.serving.concurrency.AdmissionController`
  (bounded in-flight queries per batch) and
  :class:`~repro.serving.concurrency.QueryTimeoutError` (per-query
  deadlines).
"""

from repro.serving.concurrency import (
    AdmissionController,
    QueryTimeoutError,
    ReadWriteBarrier,
)
from repro.serving.plan_cache import PlanCache

__all__ = [
    "AdmissionController",
    "PlanCache",
    "QueryTimeoutError",
    "ReadWriteBarrier",
]
