"""Incrementally maintained saturation: the chase as a live data structure.

The test oracle in :mod:`repro.dllite.saturation` rebuilds the whole chase
on every call; serving a write workload needs the opposite: a saturated
fact store that is *maintained* as facts arrive and depart. This module
provides it, exploiting a structural gift of DL-LiteR: every positive
axiom is a **single-premise rule** (one body atom), so derivations form a
BFS-able graph and semi-naive evaluation degenerates to pure per-predicate
delta propagation — no joins inside rule bodies, ever.

* :meth:`Saturator.saturate` — full semi-naive chase from the ABox;
* :meth:`Saturator.insert` — delta chase: only consequences of the new
  facts are derived;
* :meth:`Saturator.delete` — delete/re-derive (DRed [Gupta, Mumick &
  Subrahmanian]): over-delete everything the removed facts could have
  supported, then re-admit what is still derivable and re-fire existential
  rules for members that lost their witness.

Existential axioms (``A <= exists R``) are honoured exactly as in the
oracle chase: a fresh labeled null witnesses each unwitnessed member, up
to ``max_generations`` nesting of nulls; hitting the bound sets
``truncated`` so callers can refuse to trust answers. Each mutation
returns the net ``(added, removed)`` fact deltas, which is precisely what
the OBDA system mirrors into its backend as stored-tuple inserts/deletes.
"""

from __future__ import annotations

import itertools
from collections import Counter, deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.dllite.abox import ABox, Assertion, ConceptAssertion, RoleAssertion
from repro.dllite.axioms import ConceptInclusion, RoleInclusion
from repro.dllite.saturation import NULL_PREFIX, is_null
from repro.dllite.tbox import TBox
from repro.dllite.vocabulary import AtomicConcept, Exists

#: A fact is a (predicate name, row) pair; rows are 1- or 2-tuples.
Fact = Tuple[str, Tuple]

FactStore = Dict[str, Set[Tuple]]


@dataclass(frozen=True)
class _RoleRule:
    """``lhs-role <= rhs-role`` compiled to row rewriting.

    A premise row ``(s, o)`` is read logically as ``(o, s)`` when
    ``swap_in`` (inverse on the left), and the logical pair is written
    reversed when ``swap_out`` (inverse on the right).
    """

    premise: str
    swap_in: bool
    target: str
    swap_out: bool

    def consequent(self, row: Tuple) -> Fact:
        x, y = (row[1], row[0]) if self.swap_in else (row[0], row[1])
        return (self.target, (y, x) if self.swap_out else (x, y))

    def premise_row(self, row: Tuple) -> Tuple:
        """The premise row that would derive target row *row* (inverse
        direction, used by the re-derivation check)."""
        x, y = (row[1], row[0]) if self.swap_out else (row[0], row[1])
        return (y, x) if self.swap_in else (x, y)


@dataclass(frozen=True)
class _MemberRule:
    """A concept inclusion compiled to member extraction + emission.

    The premise contributes a *member* (the individual whose basic-concept
    membership fires the rule): column ``member_pos`` of the premise
    predicate. The consequence is either membership in an atomic concept
    (``target_concept``) or existence of a role witness (``target_role``
    with the member at ``target_member_pos``).
    """

    premise: str
    premise_arity: int
    member_pos: int
    target_concept: Optional[str] = None
    target_role: Optional[str] = None
    target_member_pos: int = 0

    @property
    def is_existential(self) -> bool:
        return self.target_role is not None

    @property
    def target_witness_pos(self) -> int:
        return 1 - self.target_member_pos


class Saturator:
    """A chase kept current under inserts and deletes.

    The authoritative saturated store lives here, in decoded constants
    (the OBDA system translates deltas to dictionary-encoded rows for its
    backend). ``store`` always equals ``chase(base facts)`` up to the
    choice of null names — an invariant the property tests pin against the
    oracle after arbitrary mixed write sequences.
    """

    def __init__(
        self, tbox: TBox, abox: ABox, max_generations: int = 4
    ) -> None:
        self.tbox = tbox
        self.abox = abox
        self.max_generations = max_generations
        #: (rule, member) pairs whose existential firing the generation
        #: bound suppressed; pruned lazily by :attr:`truncated`, so the
        #: flag clears itself when the suppressing facts are deleted (or
        #: the member gains a real witness) — never sticky.
        self._suppressed: Set[Tuple[_MemberRule, str]] = set()
        self.store: FactStore = {}
        #: generation of each labeled null (constants are generation 0)
        self._generation: Dict[str, int] = {}
        self._null_counter = itertools.count()
        #: (role name, position) -> multiset of values at that position,
        #: for O(1) witness checks and backward membership checks.
        self._position_counts: Dict[Tuple[str, int], Counter] = {}
        #: how many store rows mention each live null; when a null's count
        #: hits zero its name is recycled (``_free_nulls``) so a long
        #: churn workload neither leaks generation entries nor grows the
        #: dictionary without bound.
        self._null_refs: Counter = Counter()
        self._free_nulls: List[str] = []
        #: role -> its rows that contain a null (the existential
        #: witnesses), so redundancy checks and over-deletes touch only
        #: the null rows, never the whole extension.
        self._null_rows: Dict[str, Set[Tuple]] = {}
        self._compile_rules()

    # ------------------------------------------------------------------
    # Rule compilation
    # ------------------------------------------------------------------
    def _compile_rules(self) -> None:
        self._role_rules: Dict[str, List[_RoleRule]] = {}
        self._member_rules: Dict[str, List[_MemberRule]] = {}
        self._rules_into_concept: Dict[str, List[_MemberRule]] = {}
        self._rules_into_role: Dict[str, List[_RoleRule]] = {}
        self._existential_rules: List[_MemberRule] = []
        for axiom in self.tbox.axioms:
            if axiom.negative:
                continue
            if isinstance(axiom, RoleInclusion):
                rule = _RoleRule(
                    premise=axiom.lhs.name,
                    swap_in=axiom.lhs.inverse,
                    target=axiom.rhs.name,
                    swap_out=axiom.rhs.inverse,
                )
                self._role_rules.setdefault(rule.premise, []).append(rule)
                self._rules_into_role.setdefault(rule.target, []).append(rule)
                continue
            assert isinstance(axiom, ConceptInclusion)
            lhs = axiom.lhs
            if isinstance(lhs, Exists):
                premise = lhs.role.name
                arity = 2
                member_pos = 1 if lhs.role.inverse else 0
            else:
                assert isinstance(lhs, AtomicConcept)
                premise = lhs.name
                arity = 1
                member_pos = 0
            rhs = axiom.rhs
            if isinstance(rhs, Exists):
                witness_pos = 0 if rhs.role.inverse else 1
                rule = _MemberRule(
                    premise=premise,
                    premise_arity=arity,
                    member_pos=member_pos,
                    target_role=rhs.role.name,
                    target_member_pos=1 - witness_pos,
                )
                self._existential_rules.append(rule)
            else:  # AtomicConcept
                rule = _MemberRule(
                    premise=premise,
                    premise_arity=arity,
                    member_pos=member_pos,
                    target_concept=rhs.name,
                )
                self._rules_into_concept.setdefault(rhs.name, []).append(rule)
            self._member_rules.setdefault(premise, []).append(rule)

    # ------------------------------------------------------------------
    # Store primitives
    # ------------------------------------------------------------------
    def _add(self, fact: Fact) -> bool:
        predicate, row = fact
        rows = self.store.setdefault(predicate, set())
        if row in rows:
            return False
        rows.add(row)
        if len(row) == 2:
            for position in (0, 1):
                self._position_counts.setdefault(
                    (predicate, position), Counter()
                )[row[position]] += 1
        has_null = False
        for value in row:
            if is_null(value):
                has_null = True
                self._null_refs[value] += 1
        if has_null and len(row) == 2:
            self._null_rows.setdefault(predicate, set()).add(row)
        return True

    def _remove(self, fact: Fact) -> bool:
        predicate, row = fact
        rows = self.store.get(predicate)
        if rows is None or row not in rows:
            return False
        rows.discard(row)
        if len(row) == 2:
            for position in (0, 1):
                counter = self._position_counts.get((predicate, position))
                if counter is not None:
                    counter[row[position]] -= 1
                    if counter[row[position]] <= 0:
                        del counter[row[position]]
        has_null = False
        for value in row:
            if is_null(value):
                has_null = True
                self._null_refs[value] -= 1
                if self._null_refs[value] <= 0:
                    # The null left the store entirely: free its
                    # generation entry and recycle the name (fresh again
                    # by construction — nothing references it).
                    del self._null_refs[value]
                    self._generation.pop(value, None)
                    self._free_nulls.append(value)
        if has_null and len(row) == 2:
            null_rows = self._null_rows.get(predicate)
            if null_rows is not None:
                null_rows.discard(row)
        return True

    def _contains(self, fact: Fact) -> bool:
        return fact[1] in self.store.get(fact[0], ())

    def _witnessed(self, role: str, member_pos: int, member: str) -> bool:
        counter = self._position_counts.get((role, member_pos))
        return bool(counter) and counter[member] > 0

    def _generation_of(self, value: str) -> int:
        return self._generation.get(value, 0)

    def _suppression_live(self, rule: _MemberRule, member: str) -> bool:
        """A suppression is live while the rule still wants to fire for
        *member* and still cannot: premise holds, no witness, at the
        generation bound."""
        return (
            self._generation_of(member) >= self.max_generations
            and self._member_holds(rule, member)
            and not self._witnessed(
                rule.target_role, rule.target_member_pos, member
            )
        )

    @property
    def truncated(self) -> bool:
        """Whether the store currently under-approximates the chase.

        Pure read (safe for answer-path threads racing a writer): dead
        suppression entries simply evaluate to not-live. The write paths
        prune the set under the system's write lock; ``tuple()`` on a
        built-in set is atomic under the GIL, so the snapshot never
        observes a concurrent mutation mid-iteration.
        """
        return any(
            self._suppression_live(rule, member)
            for rule, member in tuple(self._suppressed)
        )

    def _prune_suppressions(self) -> None:
        """Drop dead suppression entries. Write paths only (the caller
        holds the system write lock), so readers never see the set
        reassigned from a stale snapshot."""
        self._suppressed = {
            (rule, member)
            for rule, member in self._suppressed
            if self._suppression_live(rule, member)
        }

    def _is_base(self, fact: Fact) -> bool:
        predicate, row = fact
        if len(row) == 1:
            return row in self.abox.concept_facts(predicate)
        return row in self.abox.role_facts(predicate)

    # ------------------------------------------------------------------
    # Semi-naive forward propagation
    # ------------------------------------------------------------------
    def _fire_existential(self, rule: _MemberRule, member: str) -> Optional[Fact]:
        """Create a fresh null witness for *member*, or None if suppressed."""
        role = rule.target_role
        if self._witnessed(role, rule.target_member_pos, member):
            return None
        if self._generation_of(member) >= self.max_generations:
            self._suppressed.add((rule, member))
            return None
        if self._free_nulls:
            null = self._free_nulls.pop()
        else:
            null = f"{NULL_PREFIX}{next(self._null_counter)}"
        self._generation[null] = self._generation_of(member) + 1
        row: List = [None, None]
        row[rule.target_member_pos] = member
        row[rule.target_witness_pos] = null
        return (role, tuple(row))

    def _propagate(self, delta: Iterable[Fact], added: Set[Fact]) -> None:
        """Close the store under all rules, starting from *delta*.

        Every fact inserted along the way (including *delta* facts that
        were genuinely new) is recorded in *added*. Existential firings
        are deferred until the non-existential rules reach a fixpoint:
        their witness check then sees every derivable real witness, so
        nulls are only invented for members that truly lack one (fewer
        redundant nulls than a naive rule order; answers are invariant
        either way).
        """
        queue = deque()
        pending: deque = deque()  # deferred (existential rule, member)
        for fact in delta:
            if self._add(fact):
                added.add(fact)
                queue.append(fact)
        while queue or pending:
            if not queue:
                rule, member = pending.popleft()
                fired = self._fire_existential(rule, member)
                if fired is not None and self._add(fired):
                    added.add(fired)
                    queue.append(fired)
                continue
            predicate, row = queue.popleft()
            consequents: List[Fact] = []
            for role_rule in self._role_rules.get(predicate, ()):
                consequents.append(role_rule.consequent(row))
            for rule in self._member_rules.get(predicate, ()):
                if rule.premise_arity != len(row):
                    continue
                member = row[rule.member_pos]
                if rule.is_existential:
                    pending.append((rule, member))
                else:
                    consequents.append((rule.target_concept, (member,)))
            for fact in consequents:
                if self._add(fact):
                    added.add(fact)
                    queue.append(fact)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def saturate(self) -> Set[Fact]:
        """Chase the current ABox from scratch; returns the derived facts
        (everything in the store beyond the base facts)."""
        self.store = {}
        self._position_counts = {}
        self._generation = {}
        self._null_counter = itertools.count()
        self._null_refs = Counter()
        self._free_nulls = []
        self._null_rows = {}
        self._suppressed = set()
        base: List[Fact] = [
            (predicate, row)
            for predicate, rows in self.abox.fact_store().items()
            for row in rows
        ]
        added: Set[Fact] = set()
        self._propagate(base, added)
        return {fact for fact in added if not self._is_base(fact)}

    def insert(self, assertions: Iterable[Assertion]) -> Tuple[Set[Fact], Set[Fact]]:
        """Maintain saturation after *assertions* joined the ABox.

        The caller has already added them to the ABox. Derivation is a
        delta chase; additionally, null witnesses made redundant by a new
        *real* witness are retracted (with their consequences), keeping
        the invariant that the store matches a fresh chase — so
        ``removed`` can be non-empty even for an insert. Returns the net
        ``(added, removed)`` store deltas.
        """
        added: Set[Fact] = set()
        self._propagate((fact_of(a) for a in assertions), added)
        redundant = self._redundant_null_rows(added)
        if not redundant:
            self._prune_suppressions()
            return added, set()
        retract_added, retract_removed = self._retract(redundant)
        events = added | retract_added | retract_removed
        net_added, net_removed = set(), set()
        for fact in events:
            was_stored = fact in retract_removed and fact not in added
            is_stored = self._contains(fact)
            if is_stored and not was_stored:
                net_added.add(fact)
            elif was_stored and not is_stored:
                net_removed.add(fact)
        return net_added, net_removed

    def delete(self, assertions: Iterable[Assertion]) -> Tuple[Set[Fact], Set[Fact]]:
        """Maintain saturation after *assertions* left the ABox (DRed).

        The caller has already removed them from the ABox. Over-deletes
        the forward closure of the removed facts, then re-derives: a
        removed fact returns if some surviving fact still derives it, and
        existential rules re-fire for members that lost their witness.
        Returns the net ``(added, removed)`` store deltas.
        """
        return self._retract([fact_of(a) for a in assertions])

    def _redundant_null_rows(self, added: Set[Fact]) -> Set[Fact]:
        """Null-witness rows obsoleted by newly stored real role rows.

        The chase only invents a null for an *unwitnessed* member, so
        once a real row witnesses the member, a fresh chase would hold no
        null there — retracting it keeps the store lean and lets the
        truncation flag clear when a suppressed null chain loses its
        reason to exist.
        """
        redundant: Set[Fact] = set()
        for predicate, row in added:
            if len(row) != 2 or any(is_null(value) for value in row):
                continue
            null_rows = self._null_rows.get(predicate)
            if not null_rows:
                continue
            for position in (0, 1):
                member = row[position]
                for other in null_rows:
                    if other[position] == member and is_null(other[1 - position]):
                        redundant.add((predicate, other))
        return redundant

    def _retract(self, facts: Iterable[Fact]) -> Tuple[Set[Fact], Set[Fact]]:
        """DRed over-delete + re-derive, starting from *facts*."""
        removed: Set[Fact] = set()
        touched: Set[str] = set()

        # --- over-delete: forward closure of the retracted facts -------
        queue = deque(facts)
        while queue:
            fact = queue.popleft()
            if not self._contains(fact) or self._is_base(fact):
                continue
            self._remove(fact)
            removed.add(fact)
            predicate, row = fact
            touched.update(value for value in row if not is_null(value))
            for role_rule in self._role_rules.get(predicate, ()):
                queue.append(role_rule.consequent(row))
            for rule in self._member_rules.get(predicate, ()):
                if rule.premise_arity != len(row):
                    continue
                member = row[rule.member_pos]
                if rule.is_existential:
                    # Null witnesses for this member may have depended on
                    # this membership; over-delete them all (re-derivation
                    # re-fires the rule if the member is still eligible).
                    role = rule.target_role
                    for target_row in list(self._null_rows.get(role, ())):
                        if target_row[rule.target_member_pos] == member and is_null(
                            target_row[rule.target_witness_pos]
                        ):
                            queue.append((role, target_row))
                else:
                    queue.append((rule.target_concept, (member,)))

        # --- re-derive: DRed's second phase ----------------------------
        added: Set[Fact] = set()
        candidates = set(removed)
        changed = True
        while changed:
            changed = False
            for fact in sorted(candidates):
                if self._contains(fact):
                    candidates.discard(fact)
                    continue
                if self._derivable(fact):
                    self._propagate([fact], added)
                    candidates.discard(fact)
                    changed = True
            # Members that lost their witness (or whose membership was
            # re-established) get their existential rules re-checked.
            for rule in self._existential_rules:
                for member in sorted(touched):
                    if not self._member_holds(rule, member):
                        continue
                    fired = self._fire_existential(rule, member)
                    if fired is not None:
                        self._propagate([fired], added)
                        changed = True
        self._prune_suppressions()
        return added - removed, removed - added

    # ------------------------------------------------------------------
    # Re-derivation checks (backward, one step, against the live store)
    # ------------------------------------------------------------------
    def _member_holds(self, rule: _MemberRule, member: str) -> bool:
        """Is *member* in the extension of the rule's premise concept?"""
        if rule.premise_arity == 1:
            return (member,) in self.store.get(rule.premise, ())
        return self._witnessed(rule.premise, rule.member_pos, member)

    def _derivable(self, fact: Fact) -> bool:
        """One-step derivability of *fact* from the current store.

        Facts whose only support would be an existential rule are *not*
        re-derived here — the rule re-fires with a fresh null instead,
        which is sound because certain answers are invariant under the
        choice (and number) of null witnesses.
        """
        predicate, row = fact
        if len(row) == 1:
            member = row[0]
            return any(
                self._member_holds(rule, member)
                for rule in self._rules_into_concept.get(predicate, ())
            )
        return any(
            rule.premise_row(row) in self.store.get(rule.premise, ())
            for rule in self._rules_into_role.get(predicate, ())
        )


def fact_of(assertion: Assertion) -> Fact:
    """The (predicate, row) fact an assertion denotes."""
    if isinstance(assertion, ConceptAssertion):
        return (assertion.concept, (assertion.individual,))
    if isinstance(assertion, RoleAssertion):
        return (assertion.role, (assertion.subject, assertion.object))
    raise TypeError(f"not an assertion: {assertion!r}")

