"""The sat-vs-reformulation router behind ``strategy="auto"``.

Gottlob et al. ("Ontological Queries: Rewriting and Optimization")
motivate choosing between *rewriting* (the paper's cost-picked covers)
and *materialization* (answering the original CQ over saturated tables)
per query. With an incrementally maintained saturation both options are
always live, so the choice reduces to comparing two cost estimates in the
same currency the cover search already uses:

* **saturation cost** — the original CQ evaluated over the saturated
  tables: the external model priced with statistics of the *stored*
  (saturated) extensions, or the backend's own EXPLAIN estimate;
* **reformulation cost** — the best cover the GDL search found (its
  ``SearchResult.cost``, same estimator family).

The router only prices the saturation side; the caller runs the search it
would have run anyway and then asks :func:`pick` for the verdict.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.cost.model import ExternalCostModel
from repro.queries.cq import CQ


@dataclass(frozen=True)
class RoutingDecision:
    """What ``auto`` compared and where it sent the query."""

    routed_to: str  # "sat" or the reformulation strategy's name
    saturation_cost: float
    reformulation_cost: float


class SaturationRouter:
    """Prices direct-over-saturation answering for the auto strategy."""

    def __init__(self, translator, backend) -> None:
        self.translator = translator
        self.backend = backend

    def saturation_sql(self, query: CQ) -> str:
        """The SQL answering *query* directly over the saturated tables."""
        return self.translator.cq_to_sql(query)

    def saturation_cost(
        self,
        query: CQ,
        cost: str,
        saturated_model: Optional[ExternalCostModel] = None,
    ) -> float:
        """Estimated cost of the direct plan under the given cost mode.

        ``saturated_model`` must be an external model whose statistics
        describe the saturated extensions (the base-ABox model would
        undercount what the tables actually hold).
        """
        if cost == "rdbms":
            from repro.engine.errors import StatementTooLongError

            try:
                return self.backend.estimated_cost(self.saturation_sql(query))
            except StatementTooLongError:
                return math.inf
        if saturated_model is None:
            raise ValueError(
                "saturation_cost with cost='ext' needs the saturated-statistics "
                "cost model"
            )
        return saturated_model.estimate(query)


def pick(
    saturation_cost: float, reformulation_cost: float, fallback: str
) -> RoutingDecision:
    """Route to the cheaper side; ties go to saturation (no search to
    re-run, no fragment joins, strictly simpler SQL)."""
    routed_to = "sat" if saturation_cost <= reformulation_cost else fallback
    return RoutingDecision(
        routed_to=routed_to,
        saturation_cost=saturation_cost,
        reformulation_cost=reformulation_cost,
    )
