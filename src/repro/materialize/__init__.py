"""Materialized saturation: the chase as a maintained, queryable store.

The reformulation side of the repository answers queries by rewriting
them against the raw ABox; this package is the other classic OBDA answer:
saturate the data under the TBox once, keep the saturation current under
writes, and run the *original* query unchanged (``strategy="sat"``), or
let a cost model route each query to whichever side is cheaper
(``strategy="auto"``).
"""

from repro.materialize.saturator import Fact, Saturator, fact_of
from repro.materialize.router import RoutingDecision, SaturationRouter, pick

__all__ = [
    "Fact",
    "RoutingDecision",
    "SaturationRouter",
    "Saturator",
    "fact_of",
    "pick",
]
