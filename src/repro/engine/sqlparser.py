"""Tokenizer, AST and recursive-descent parser for the MiniRDBMS SQL subset.

Grammar (the dialect emitted by :mod:`repro.sql.translator`)::

    statement    := [WITH cte (',' cte)*] select_union
    cte          := IDENT AS '(' select_union ')'
    select_union := select_core ((UNION [ALL]) select_core)*
    select_core  := SELECT [DISTINCT] proj (',' proj)*
                    FROM source (',' source)*
                    (JOIN source ON cond (AND cond)*)*
                    [WHERE cond (AND cond)*]
    proj         := expr [AS IDENT]
    source       := IDENT [IDENT] | '(' select_union ')' IDENT
    cond         := expr ('=' | '<>') expr
    expr         := IDENT ['.' IDENT] | NUMBER | STRING

Identifiers are case-preserving but keywords are case-insensitive. Strings
use single quotes with ``''`` escaping.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from repro.engine.errors import SQLSyntaxError

# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnRef:
    """``table.column`` or a bare ``column`` reference."""

    table: Optional[str]
    column: str

    def __str__(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class Literal:
    """An integer or string literal."""

    value: Union[int, str]

    def __str__(self) -> str:
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return str(self.value)


Expr = Union[ColumnRef, Literal]


@dataclass(frozen=True)
class Condition:
    """``left op right`` with op in {=, <>}."""

    left: Expr
    op: str
    right: Expr

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class TableSource:
    """A named table (or CTE) with an optional alias."""

    name: str
    alias: str

    def __str__(self) -> str:
        return f"{self.name} {self.alias}" if self.alias != self.name else self.name


@dataclass(frozen=True)
class SubquerySource:
    """A parenthesized subquery with a mandatory alias."""

    statement: "SelectUnion"
    alias: str


Source = Union[TableSource, SubquerySource]


@dataclass(frozen=True)
class SelectCore:
    """One SELECT block."""

    distinct: bool
    projections: Tuple[Tuple[Expr, Optional[str]], ...]
    sources: Tuple[Source, ...]
    conditions: Tuple[Condition, ...]


@dataclass(frozen=True)
class SelectUnion:
    """One or more SELECT blocks combined with UNION [ALL]."""

    selects: Tuple[SelectCore, ...]
    all: bool = False


@dataclass(frozen=True)
class Statement:
    """Top level: optional CTEs plus the body union."""

    ctes: Tuple[Tuple[str, SelectUnion], ...]
    body: SelectUnion


# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<number>\d+)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9$]*)
  | (?P<neq><>)
  | (?P<symbol>[(),.=*])
    """,
    re.VERBOSE,
)

KEYWORDS = {
    "select",
    "distinct",
    "from",
    "where",
    "and",
    "union",
    "all",
    "with",
    "as",
    "join",
    "on",
}


class Token:
    """One lexed token (a slotted class: tokenizing dominates parse time
    on megabyte-scale reformulated statements)."""

    __slots__ = ("kind", "value", "position")

    def __init__(self, kind: str, value: str, position: int) -> None:
        self.kind = kind  # 'ident', 'keyword', 'number', 'string', 'symbol'
        self.value = value
        self.position = position

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind!r}, {self.value!r}, {self.position})"


def tokenize(sql: str) -> List[Token]:
    """Split *sql* into tokens, raising on unexpected characters.

    One ``finditer`` sweep; a gap between consecutive matches marks the
    first unexpected character.
    """
    tokens: List[Token] = []
    append = tokens.append
    keywords = KEYWORDS
    position = 0
    for match in _TOKEN_RE.finditer(sql):
        start = match.start()
        if start != position:
            raise SQLSyntaxError(
                f"unexpected character {sql[position]!r} at offset {position}"
            )
        position = match.end()
        group = match.lastgroup
        if group == "ws":
            continue
        value = match.group()
        if group == "ident":
            lowered = value.lower()
            if lowered in keywords:
                append(Token("keyword", lowered, start))
            else:
                append(Token("ident", value, start))
        else:
            # group is 'number' | 'string' | 'neq' | 'symbol'
            append(Token("neq" if group == "neq" else group, value, start))
    if position != len(sql):
        raise SQLSyntaxError(
            f"unexpected character {sql[position]!r} at offset {position}"
        )
    return tokens


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


class _Parser:
    def __init__(self, tokens: List[Token], sql: str) -> None:
        self.tokens = tokens
        self.sql = sql
        self.index = 0

    # -- token helpers ---------------------------------------------------
    def peek(self) -> Optional[Token]:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def advance(self) -> Token:
        token = self.peek()
        if token is None:
            raise SQLSyntaxError("unexpected end of statement")
        self.index += 1
        return token

    def accept_keyword(self, word: str) -> bool:
        token = self.peek()
        if token and token.kind == "keyword" and token.value == word:
            self.index += 1
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            token = self.peek()
            where = f"near {token.value!r}" if token else "at end of input"
            raise SQLSyntaxError(f"expected {word.upper()} {where}")

    def accept_symbol(self, symbol: str) -> bool:
        token = self.peek()
        if token and token.kind == "symbol" and token.value == symbol:
            self.index += 1
            return True
        return False

    def expect_symbol(self, symbol: str) -> None:
        if not self.accept_symbol(symbol):
            token = self.peek()
            where = f"near {token.value!r}" if token else "at end of input"
            raise SQLSyntaxError(f"expected {symbol!r} {where}")

    def expect_ident(self) -> str:
        token = self.advance()
        if token.kind != "ident":
            raise SQLSyntaxError(f"expected identifier, got {token.value!r}")
        return token.value

    # -- grammar ----------------------------------------------------------
    def parse_statement(self) -> Statement:
        ctes: List[Tuple[str, SelectUnion]] = []
        if self.accept_keyword("with"):
            while True:
                name = self.expect_ident()
                self.expect_keyword("as")
                self.expect_symbol("(")
                ctes.append((name, self.parse_select_union()))
                self.expect_symbol(")")
                if not self.accept_symbol(","):
                    break
        body = self.parse_select_union()
        if self.peek() is not None:
            token = self.peek()
            raise SQLSyntaxError(f"trailing input near {token.value!r}")
        return Statement(tuple(ctes), body)

    def parse_select_union(self) -> SelectUnion:
        selects = [self.parse_select_core()]
        union_all: Optional[bool] = None
        while self.accept_keyword("union"):
            this_all = self.accept_keyword("all")
            if union_all is None:
                union_all = this_all
            elif union_all != this_all:
                raise SQLSyntaxError("mixing UNION and UNION ALL is unsupported")
            selects.append(self.parse_select_core())
        return SelectUnion(tuple(selects), all=bool(union_all))

    def parse_select_core(self) -> SelectCore:
        self.expect_keyword("select")
        distinct = self.accept_keyword("distinct")
        projections: List[Tuple[Expr, Optional[str]]] = []
        while True:
            expr = self.parse_expr()
            alias = None
            if self.accept_keyword("as"):
                alias = self.expect_ident()
            projections.append((expr, alias))
            if not self.accept_symbol(","):
                break
        self.expect_keyword("from")
        sources: List[Source] = [self.parse_source()]
        conditions: List[Condition] = []
        while True:
            if self.accept_symbol(","):
                sources.append(self.parse_source())
            elif self.accept_keyword("join"):
                sources.append(self.parse_source())
                self.expect_keyword("on")
                conditions.append(self.parse_condition())
                while self.accept_keyword("and"):
                    conditions.append(self.parse_condition())
            else:
                break
        if self.accept_keyword("where"):
            conditions.append(self.parse_condition())
            while self.accept_keyword("and"):
                conditions.append(self.parse_condition())
        return SelectCore(
            distinct=distinct,
            projections=tuple(projections),
            sources=tuple(sources),
            conditions=tuple(conditions),
        )

    def parse_source(self) -> Source:
        if self.accept_symbol("("):
            statement = self.parse_select_union()
            self.expect_symbol(")")
            token = self.peek()
            if token is None or token.kind != "ident":
                raise SQLSyntaxError("subquery in FROM requires an alias")
            alias = self.expect_ident()
            return SubquerySource(statement, alias)
        name = self.expect_ident()
        token = self.peek()
        alias = name
        if token is not None and token.kind == "ident":
            alias = self.expect_ident()
        return TableSource(name, alias)

    def parse_condition(self) -> Condition:
        left = self.parse_expr()
        token = self.advance()
        if token.kind == "symbol" and token.value == "=":
            op = "="
        elif token.kind == "neq" or token.value == "<>":
            op = "<>"
        else:
            raise SQLSyntaxError(f"expected comparison operator, got {token.value!r}")
        right = self.parse_expr()
        return Condition(left, op, right)

    def parse_expr(self) -> Expr:
        token = self.advance()
        if token.kind == "number":
            return Literal(int(token.value))
        if token.kind == "string":
            raw = token.value[1:-1].replace("''", "'")
            return Literal(raw)
        if token.kind == "ident":
            if self.accept_symbol("."):
                column = self.expect_ident()
                return ColumnRef(token.value, column)
            return ColumnRef(None, token.value)
        raise SQLSyntaxError(f"expected expression, got {token.value!r}")


def parse_sql(sql: str) -> Statement:
    """Parse *sql* into a :class:`Statement` AST."""
    return _Parser(tokenize(sql), sql).parse_statement()
