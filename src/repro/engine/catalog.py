"""The catalog: table registry plus per-column statistics.

``analyze()`` gathers the statistics the cost-based planner (and the
paper's external cost model) relies on: table cardinality and the number of
distinct values per column — the classic inputs for selectivity estimation
under the uniformity and independence assumptions (Section 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.engine.errors import UnknownTableError
from repro.engine.relation import Table


@dataclass
class ColumnStats:
    """Statistics for one column."""

    distinct_values: int = 0


@dataclass
class TableStats:
    """Statistics for one table."""

    cardinality: int = 0
    columns: Dict[str, ColumnStats] = field(default_factory=dict)

    def distinct(self, column: str) -> int:
        """Distinct count for *column* (at least 1 for non-empty tables)."""
        stats = self.columns.get(column)
        if stats is None:
            return max(1, self.cardinality)
        return max(1, stats.distinct_values)


class Catalog:
    """Tables by name, with on-demand statistics."""

    def __init__(self) -> None:
        self._tables: Dict[str, Table] = {}
        self._stats: Dict[str, TableStats] = {}

    def create_table(self, name: str, columns: Sequence[str]) -> Table:
        """Create a table; replaces any existing table of the same name."""
        table = Table(name, columns)
        self._tables[name.lower()] = table
        self._stats.pop(name.lower(), None)
        return table

    def drop_table(self, name: str) -> None:
        """Remove a table if present."""
        self._tables.pop(name.lower(), None)
        self._stats.pop(name.lower(), None)

    def table(self, name: str) -> Table:
        """Look a table up (case-insensitive)."""
        try:
            return self._tables[name.lower()]
        except KeyError as missing:
            raise UnknownTableError(f"unknown table {name!r}") from missing

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def tables(self) -> Iterable[Table]:
        return self._tables.values()

    def analyze(self, name: Optional[str] = None) -> None:
        """Collect statistics for one table, or for all of them."""
        targets = [self.table(name)] if name else list(self._tables.values())
        for table in targets:
            stats = TableStats(cardinality=len(table.rows))
            for position, column in enumerate(table.columns):
                distinct = len({row[position] for row in table.rows})
                stats.columns[column] = ColumnStats(distinct_values=distinct)
            self._stats[table.name.lower()] = stats

    def statistics(self, name: str) -> TableStats:
        """Statistics for *name*, computing them lazily if missing."""
        key = name.lower()
        if key not in self._stats:
            self.analyze(name)
        return self._stats[key]

    def set_statistics(self, name: str, stats: TableStats) -> None:
        """Inject externally computed statistics for *name*.

        Used by shadow catalogs: the SQLite backend estimates costs by
        planning against empty tables whose statistics mirror the real
        data (the planner only consults statistics, never row counts).
        """
        self.table(name)  # validate existence
        self._stats[name.lower()] = stats
