"""The catalog: table registry plus per-column statistics.

``analyze()`` gathers the statistics the cost-based planner (and the
paper's external cost model) relies on: table cardinality and the number of
distinct values per column — the classic inputs for selectivity estimation
under the uniformity and independence assumptions (Section 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.engine.errors import UnknownTableError
from repro.engine.relation import Table


@dataclass
class ColumnStats:
    """Statistics for one column."""

    distinct_values: int = 0


@dataclass
class TableStats:
    """Statistics for one table."""

    cardinality: int = 0
    columns: Dict[str, ColumnStats] = field(default_factory=dict)

    def distinct(self, column: str) -> int:
        """Distinct count for *column* (at least 1 for non-empty tables)."""
        stats = self.columns.get(column)
        if stats is None:
            return max(1, self.cardinality)
        return max(1, stats.distinct_values)

    @classmethod
    def merged(cls, parts: Sequence["TableStats"]) -> "TableStats":
        """Aggregate per-shard statistics into whole-table statistics.

        Used by sharded storage: each shard holds a disjoint row slice,
        so cardinalities add exactly; per-column distinct counts are
        summed then clamped to the cardinality (a hash-partitioned value
        lives on one shard when it is the shard key, but may repeat
        across shards in other columns — the sum is an upper bound,
        which is what selectivity estimation wants from a hint).
        """
        merged = cls(cardinality=sum(part.cardinality for part in parts))
        columns: Dict[str, int] = {}
        for part in parts:
            for name, stats in part.columns.items():
                columns[name] = columns.get(name, 0) + stats.distinct_values
        for name, distinct in columns.items():
            merged.columns[name] = ColumnStats(
                distinct_values=min(merged.cardinality, distinct)
            )
        return merged


class Catalog:
    """Tables by name, with on-demand statistics.

    ``version`` increments whenever the schema or the statistics change;
    the engine's statement cache keys its validity on it. (Row writes
    that bypass the statistics APIs leave cached plans *correct* —
    operators read live tables and indexes — merely possibly stale in
    their cost annotations.)
    """

    def __init__(self) -> None:
        self._tables: Dict[str, Table] = {}
        self._stats: Dict[str, TableStats] = {}
        self.version = 0

    def create_table(self, name: str, columns: Sequence[str]) -> Table:
        """Create a table; replaces any existing table of the same name."""
        table = Table(name, columns)
        self._tables[name.lower()] = table
        self._stats.pop(name.lower(), None)
        self.version += 1
        return table

    def drop_table(self, name: str) -> None:
        """Remove a table if present."""
        self._tables.pop(name.lower(), None)
        self._stats.pop(name.lower(), None)
        self.version += 1

    def table(self, name: str) -> Table:
        """Look a table up (case-insensitive)."""
        try:
            return self._tables[name.lower()]
        except KeyError as missing:
            raise UnknownTableError(f"unknown table {name!r}") from missing

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def tables(self) -> Iterable[Table]:
        return self._tables.values()

    #: Tables at most this wide get on-demand single-column indexes at
    #: ``analyze()`` time — the T/CA/RA layout key columns (unary concept
    #: tables and binary role tables). Wide tables (e.g. the DB2RDF DPH
    #: table) keep only their explicitly declared indexes.
    KEY_INDEX_MAX_COLUMNS = 2

    def analyze(
        self, name: Optional[str] = None, ensure_indexes: bool = True
    ) -> None:
        """Collect statistics for one table, or for all of them.

        ``ensure_indexes`` also creates single-column hash indexes on the
        key columns of narrow (predicate-layout) tables, so the planner
        can route equality predicates and joins through them.
        """
        targets = [self.table(name)] if name else list(self._tables.values())
        for table in targets:
            stats = TableStats(cardinality=len(table.rows))
            for position, column in enumerate(table.columns):
                distinct = len({row[position] for row in table.rows})
                stats.columns[column] = ColumnStats(distinct_values=distinct)
            self._stats[table.name.lower()] = stats
            if ensure_indexes and len(table.columns) <= self.KEY_INDEX_MAX_COLUMNS:
                for column in table.columns:
                    table.create_index((column,))
        self.version += 1

    def adjust_statistics(
        self, name: str, inserted: int = 0, removed: int = 0
    ) -> None:
        """Fold a write's delta into the cached statistics — no scans.

        Cardinality stays exact; per-column distinct counts are
        approximated (grown by the insert count, clamped to the
        cardinality). Statistics are optimizer hints only, so the
        approximation never affects answers; it removes the O(table)
        re-analyze the write path used to pay per batch.
        """
        old = self.statistics(name)
        cardinality = max(0, old.cardinality + inserted - removed)
        stats = TableStats(cardinality=cardinality)
        for column in self.table(name).columns:
            column_stats = old.columns.get(column)
            distinct = column_stats.distinct_values if column_stats else 0
            distinct = min(cardinality, distinct + inserted)
            if cardinality > 0:
                distinct = max(1, distinct)
            stats.columns[column] = ColumnStats(distinct_values=distinct)
        self._stats[name.lower()] = stats
        self.version += 1

    def statistics(self, name: str) -> TableStats:
        """Statistics for *name*, computing them lazily if missing."""
        key = name.lower()
        if key not in self._stats:
            self.analyze(name)
        return self._stats[key]

    def set_statistics(self, name: str, stats: TableStats) -> None:
        """Inject externally computed statistics for *name*.

        Used by shadow catalogs: the SQLite backend estimates costs by
        planning against empty tables whose statistics mirror the real
        data (the planner only consults statistics, never row counts).
        """
        self.table(name)  # validate existence
        self._stats[name.lower()] = stats
        self.version += 1
