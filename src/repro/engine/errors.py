"""Engine error hierarchy."""

from __future__ import annotations


class EngineError(Exception):
    """Base class for all MiniRDBMS errors."""


class SQLSyntaxError(EngineError):
    """Raised when a statement cannot be parsed."""


class UnknownTableError(EngineError):
    """Raised when a statement references a table that does not exist."""


class UnknownColumnError(EngineError):
    """Raised when a statement references a column that does not exist."""


class PlanningError(EngineError):
    """Raised when no execution plan can be built for a valid statement."""


class StatementTooLongError(EngineError):
    """The statement exceeds the engine's length limit.

    Mirrors DB2's SQL0101N failure the paper reports for RDF-layout
    reformulations of Q9 and Q10 ("The statement is too long or too
    complex. Current SQL statement size is 2,247,118").
    """

    def __init__(self, size: int, limit: int) -> None:
        super().__init__(
            "The statement is too long or too complex. "
            f"Current SQL statement size is {size:,} (limit {limit:,})."
        )
        self.size = size
        self.limit = limit

    def __reduce__(self):
        """Pickle via the real constructor arguments (the default would
        replay ``args`` — the formatted message — into ``__init__`` and
        fail; shard worker processes ship this exception back to the
        coordinator)."""
        return (type(self), (self.size, self.limit))
