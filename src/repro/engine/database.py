"""The MiniRDBMS facade: DDL, DML, query execution and EXPLAIN.

The engine enforces a *statement length limit* (default 2,000,000
characters, DB2's documented bound) on both execution and EXPLAIN —
reproducing the paper's observation that some RDF-layout reformulations
simply cannot be evaluated (§6.3).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.engine.catalog import Catalog
from repro.engine.errors import StatementTooLongError
from repro.engine.executor import execute_plan
from repro.engine.explain import ExplainResult, explain_plan
from repro.engine.operators import CostParameters, DEFAULT_COSTS
from repro.engine.planner import Plan, Planner
from repro.engine.relation import Table
from repro.engine.sqlparser import parse_sql

Row = Tuple

#: DB2's documented maximum SQL statement size, which the paper's Q9/Q10
#: RDF-layout reformulations exceeded ("Current SQL statement size is
#: 2,247,118").
DB2_STATEMENT_LIMIT = 2_000_000


class MiniRDBMS:
    """An embedded, in-memory RDBMS with a cost-based optimizer."""

    def __init__(
        self,
        max_statement_length: int = DB2_STATEMENT_LIMIT,
        cost_parameters: CostParameters = DEFAULT_COSTS,
    ) -> None:
        self.catalog = Catalog()
        self.max_statement_length = max_statement_length
        self.cost_parameters = cost_parameters

    # ------------------------------------------------------------------
    # DDL / DML
    # ------------------------------------------------------------------
    def create_table(self, name: str, columns: Sequence[str]) -> Table:
        """Create (or replace) a table."""
        return self.catalog.create_table(name, columns)

    def drop_table(self, name: str) -> None:
        """Drop a table if it exists."""
        self.catalog.drop_table(name)

    def insert_many(self, name: str, rows: Iterable[Sequence[object]]) -> None:
        """Bulk-insert rows into a table (duplicates ignored)."""
        self.catalog.table(name).insert_many(rows)

    def delete_many(self, name: str, rows: Iterable[Sequence[object]]) -> int:
        """Bulk-delete rows from a table; returns the removed count."""
        return self.catalog.table(name).delete_many(rows)

    def create_index(self, name: str, columns: Sequence[str]) -> None:
        """Create a hash index on a table."""
        self.catalog.table(name).create_index(columns)

    def analyze(self, name: Optional[str] = None) -> None:
        """Collect optimizer statistics (like SQL ANALYZE)."""
        self.catalog.analyze(name)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _check_length(self, sql: str) -> None:
        if len(sql) > self.max_statement_length:
            raise StatementTooLongError(len(sql), self.max_statement_length)

    def plan(self, sql: str) -> Plan:
        """Parse and plan a statement without executing it."""
        self._check_length(sql)
        statement = parse_sql(sql)
        return Planner(self.catalog, self.cost_parameters).plan(statement)

    def execute(self, sql: str) -> List[Row]:
        """Run a statement and return its rows."""
        return execute_plan(self.plan(sql))

    def explain(self, sql: str) -> ExplainResult:
        """The planner's cost estimate for a statement (no execution)."""
        return explain_plan(self.plan(sql))

    def estimated_cost(self, sql: str) -> float:
        """Shortcut: the total estimated cost of a statement."""
        return self.explain(sql).total_cost
