"""The MiniRDBMS facade: DDL, DML, query execution and EXPLAIN.

The engine enforces a *statement length limit* (default 2,000,000
characters, DB2's documented bound) on both execution and EXPLAIN —
reproducing the paper's observation that some RDF-layout reformulations
simply cannot be evaluated (§6.3).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import replace
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.engine.catalog import Catalog
from repro.engine.errors import StatementTooLongError
from repro.engine.executor import (
    ExecutionStats,
    execute_plan,
    execute_plan_analyzed,
    execute_plan_columns,
)
from repro.engine.explain import (
    ExplainResult,
    explain_plan,
    explain_plan_analyzed,
)
from repro.engine.operators import CostParameters, DEFAULT_COSTS
from repro.engine.parallel import ParallelContext
from repro.engine.planner import Plan, Planner
from repro.engine.relation import Table
from repro.engine.sqlparser import parse_sql

Row = Tuple

#: DB2's documented maximum SQL statement size, which the paper's Q9/Q10
#: RDF-layout reformulations exceeded ("Current SQL statement size is
#: 2,247,118").
DB2_STATEMENT_LIMIT = 2_000_000


class MiniRDBMS:
    """An embedded, in-memory RDBMS with a cost-based optimizer.

    The public facade of :mod:`repro.engine`: DDL (``create_table`` /
    ``create_index`` / ``analyze``), row-level DML, and SQL execution
    through a statement cache, a cost-based planner and a vectorized,
    morsel-driven executor. ``workers`` (default from the
    ``REPRO_WORKERS`` environment variable, else 1) sets the engine's
    degree of parallelism: at 1 every statement runs the serial
    vectorized path; above 1 pipelines are split into morsels executed
    on a pool shared by all queries against this instance, and the cost
    model discounts per-row work by the configured parallel efficiency.
    """

    def __init__(
        self,
        max_statement_length: int = DB2_STATEMENT_LIMIT,
        cost_parameters: CostParameters = DEFAULT_COSTS,
        plan_cache_size: int = 256,
        workers: Optional[int] = None,
        parallel_context: Optional[ParallelContext] = None,
        substrate: Optional[str] = None,
    ) -> None:
        self.catalog = Catalog()
        self.max_statement_length = max_statement_length
        #: The engine's worker pool and morsel scheduling policy. Shared
        #: by every statement executed here, so the machine-wide thread
        #: count stays bounded regardless of serving concurrency.
        #: ``substrate`` selects its executor backend (default
        #: ``REPRO_EXECUTOR`` / auto-detection).
        self.parallel = parallel_context or ParallelContext(
            workers, substrate=substrate
        )
        if cost_parameters.workers != self.parallel.workers:
            # Keep the costed and the executed degree of parallelism in
            # step without mutating the (possibly shared) input object.
            cost_parameters = replace(
                cost_parameters, workers=self.parallel.workers
            )
        self.cost_parameters = cost_parameters
        # Morsel scheduling must size by actual work, not by costs the
        # model already discounted for parallelism.
        self.parallel.cost_discount = cost_parameters.parallel_speedup()
        #: Counters from the most recent :meth:`execute` call.
        self.last_execution: Optional[ExecutionStats] = None
        # Dynamic statement cache (DB2's "package cache"): plans keyed by
        # the exact SQL text, valid for one catalog version. EXPLAIN and
        # execution share it, so the cost-estimation pass the GDL search
        # makes over a statement means its later execution plans for
        # free. Plans stay *correct* across row writes (operators read
        # live tables); any schema or statistics change bumps the
        # catalog version and drops the cache. Set size 0 to disable.
        self.plan_cache_size = plan_cache_size
        self._plan_cache: "OrderedDict[str, Plan]" = OrderedDict()
        self._plan_cache_version = -1
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0

    # ------------------------------------------------------------------
    # DDL / DML
    # ------------------------------------------------------------------
    def create_table(self, name: str, columns: Sequence[str]) -> Table:
        """Create (or replace) a table."""
        return self.catalog.create_table(name, columns)

    def drop_table(self, name: str) -> None:
        """Drop a table if it exists."""
        self.catalog.drop_table(name)

    def insert_many(self, name: str, rows: Iterable[Sequence[object]]) -> int:
        """Bulk-insert rows into a table (duplicates ignored); returns
        how many rows were actually added."""
        return self.catalog.table(name).insert_many(rows)

    def delete_many(self, name: str, rows: Iterable[Sequence[object]]) -> int:
        """Bulk-delete rows from a table; returns the removed count."""
        return self.catalog.table(name).delete_many(rows)

    def create_index(self, name: str, columns: Sequence[str]) -> None:
        """Create a hash index on a table."""
        self.catalog.table(name).create_index(columns)

    def analyze(
        self, name: Optional[str] = None, ensure_indexes: bool = True
    ) -> None:
        """Collect optimizer statistics (like SQL ANALYZE) and, by
        default, build single-column hash indexes on narrow tables'
        key columns for the planner's index-aware access paths."""
        self.catalog.analyze(name, ensure_indexes=ensure_indexes)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _check_length(self, sql: str) -> None:
        if len(sql) > self.max_statement_length:
            raise StatementTooLongError(len(sql), self.max_statement_length)

    def plan(self, sql: str) -> Plan:
        """Parse and plan a statement (through the statement cache)."""
        self._check_length(sql)
        if self.plan_cache_size:
            version = self.catalog.version
            if version != self._plan_cache_version:
                self._plan_cache.clear()
                self._plan_cache_version = version
            cached = self._plan_cache.get(sql)
            if cached is not None:
                self._plan_cache.move_to_end(sql)
                self.plan_cache_hits += 1
                return cached
        statement = parse_sql(sql)
        plan = Planner(self.catalog, self.cost_parameters).plan(statement)
        if self.plan_cache_size:
            self.plan_cache_misses += 1
            self._plan_cache[sql] = plan
            while len(self._plan_cache) > self.plan_cache_size:
                self._plan_cache.popitem(last=False)
        return plan

    def execute(self, sql: str) -> List[Row]:
        """Run a statement and return its rows."""
        stats = ExecutionStats()
        rows = execute_plan(self.plan(sql), stats, parallel=self.parallel)
        self.last_execution = stats
        return rows

    def execute_columns(self, sql: str) -> Tuple[int, List[List]]:
        """Run a statement and return ``(nrows, column vectors)``.

        The columnar twin of :meth:`execute` — same answers, same
        order, but no row tuples are materialized. Shard worker
        processes answer scatter legs through this so results go
        straight into the per-column shared-memory wire format.
        """
        stats = ExecutionStats()
        result = execute_plan_columns(
            self.plan(sql), stats, parallel=self.parallel
        )
        self.last_execution = stats
        return result

    def explain(self, sql: str) -> ExplainResult:
        """The planner's cost estimate for a statement (no execution)."""
        return explain_plan(self.plan(sql), workers=self.parallel.workers)

    def estimated_cost(self, sql: str) -> float:
        """Shortcut: the total estimated cost of a statement."""
        return self.explain(sql).total_cost

    def explain_analyze(self, sql: str) -> ExplainResult:
        """``EXPLAIN ANALYZE``: execute and show measured vs. estimated
        numbers per plan node.

        The statement is planned **privately** — never through the
        shared statement cache — because the per-node instrumentation
        patches the operator instances, and a patched tree must not be
        served to a concurrent plain execution. Execution is serial
        (per-node times would be meaningless interleaved across
        morsel workers), so the measured total is the serial wall time.
        """
        self._check_length(sql)
        plan = Planner(self.catalog, self.cost_parameters).plan(parse_sql(sql))
        started = time.perf_counter()
        rows, measurements = execute_plan_analyzed(plan)
        elapsed = time.perf_counter() - started
        return explain_plan_analyzed(
            plan, measurements, actual_rows=len(rows), actual_seconds=elapsed
        )

    # ------------------------------------------------------------------
    # Parallelism
    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        """The engine's configured degree of parallelism."""
        return self.parallel.workers

    def learn_parallel_efficiency(
        self, observed_speedup: float, substrate: Optional[str] = None
    ) -> float:
        """Calibrate the cost model from a *measured* parallel speedup.

        Back-solves the per-worker efficiency that reproduces
        ``observed_speedup`` at the current worker count (see
        :meth:`~repro.engine.parallel.ParallelContext.learn`). The
        measurement is recorded under *substrate* (default: the
        context's own) and flows into :attr:`cost_parameters` — with
        cached plans invalidated so later costing uses the truthful
        discount — **only when it belongs to the substrate this engine
        actually runs on**: a GIL-bound thread measurement handed in
        for the record cannot poison process-substrate estimates, nor
        vice versa. Returns the efficiency.
        """
        target = substrate or self.parallel.substrate
        efficiency = self.parallel.learn(observed_speedup, substrate=target)
        if target == self.parallel.substrate:
            self.cost_parameters = replace(
                self.cost_parameters, parallel_efficiency=efficiency
            )
            self.parallel.cost_discount = (
                self.cost_parameters.parallel_speedup()
            )
            # Plans cache their cost annotations; force re-planning.
            self._plan_cache.clear()
            self._plan_cache_version = -1
        return efficiency

    def close(self) -> None:
        """Release the worker pool (idempotent; the data stays usable)."""
        self.parallel.close()
