"""Tables and hash indexes for the MiniRDBMS storage layer."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.engine.errors import UnknownColumnError

Row = Tuple
Value = object


class Index:
    """A hash index over one or more columns of a table."""

    def __init__(self, table: "Table", columns: Sequence[str]) -> None:
        for column in columns:
            if column not in table.columns:
                raise UnknownColumnError(
                    f"no column {column!r} in table {table.name!r}"
                )
        self.table = table
        self.columns = tuple(columns)
        self._positions = tuple(table.columns.index(c) for c in columns)
        self._buckets: Dict[Tuple, List[Row]] = {}
        for row in table.rows:
            self._insert(row)

    def _key(self, row: Row) -> Tuple:
        return tuple(row[p] for p in self._positions)

    def _insert(self, row: Row) -> None:
        self._buckets.setdefault(self._key(row), []).append(row)

    def _remove(self, row: Row) -> None:
        bucket = self._buckets.get(self._key(row))
        if bucket is None:
            return
        try:
            bucket.remove(row)
        except ValueError:
            return
        if not bucket:
            del self._buckets[self._key(row)]

    def lookup(self, key: Tuple) -> List[Row]:
        """Rows whose indexed columns equal *key*."""
        return self._buckets.get(tuple(key), [])

    def __len__(self) -> int:
        return len(self._buckets)


class Table:
    """An in-memory relation: named columns and a list of rows."""

    def __init__(self, name: str, columns: Sequence[str]) -> None:
        if not columns:
            raise ValueError(f"table {name!r} needs at least one column")
        if len(set(columns)) != len(columns):
            raise ValueError(f"duplicate column names in table {name!r}")
        self.name = name
        self.columns: Tuple[str, ...] = tuple(columns)
        self.rows: List[Row] = []
        self.indexes: Dict[Tuple[str, ...], Index] = {}
        self._row_set: Set[Row] = set()

    def insert(self, row: Sequence[Value]) -> None:
        """Insert one row (set semantics: duplicates are ignored)."""
        row = tuple(row)
        if len(row) != len(self.columns):
            raise ValueError(
                f"row arity {len(row)} does not match table {self.name!r} "
                f"({len(self.columns)} columns)"
            )
        if row in self._row_set:
            return
        self._row_set.add(row)
        self.rows.append(row)
        for index in self.indexes.values():
            index._insert(row)

    def insert_many(self, rows: Iterable[Sequence[Value]]) -> None:
        """Bulk insert."""
        for row in rows:
            self.insert(row)

    def delete(self, row: Sequence[Value]) -> bool:
        """Remove one row; True when it was present."""
        row = tuple(row)
        if row not in self._row_set:
            return False
        self._row_set.discard(row)
        self.rows.remove(row)
        for index in self.indexes.values():
            index._remove(row)
        return True

    def delete_many(self, rows: Iterable[Sequence[Value]]) -> int:
        """Bulk delete; returns how many rows were actually removed.

        One pass over the stored rows for the whole batch (``delete`` in
        a loop would rescan the row list per deleted row).
        """
        doomed = {tuple(row) for row in rows} & self._row_set
        if not doomed:
            return 0
        self._row_set -= doomed
        self.rows = [row for row in self.rows if row not in doomed]
        for row in doomed:
            for index in self.indexes.values():
                index._remove(row)
        return len(doomed)

    def create_index(self, columns: Sequence[str]) -> Index:
        """Create (or return the existing) hash index on *columns*."""
        key = tuple(columns)
        if key not in self.indexes:
            self.indexes[key] = Index(self, columns)
        return self.indexes[key]

    def index_on(self, columns: Sequence[str]) -> Optional[Index]:
        """The index exactly matching *columns*, if any."""
        return self.indexes.get(tuple(columns))

    def column_position(self, column: str) -> int:
        try:
            return self.columns.index(column)
        except ValueError as missing:
            raise UnknownColumnError(
                f"no column {column!r} in table {self.name!r}"
            ) from missing

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return f"Table({self.name!r}, {len(self.rows)} rows)"
