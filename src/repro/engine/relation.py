"""Tables and hash indexes for the MiniRDBMS storage layer.

Tables are row stores (lists of tuples) but serve the vectorized
executor through :meth:`Table.column_batches`: the rows transposed into
columnar batches of ``batch_size`` rows, cached until the next write.
A full-table scan therefore costs one cached transpose per table, not
one generator frame per row per query.
"""

from __future__ import annotations

from itertools import groupby
from operator import itemgetter
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.engine.errors import UnknownColumnError

Row = Tuple
Value = object
#: A columnar batch: one sequence per column, all of equal length.
Batch = Sequence[Sequence]


class Index:
    """A hash index over one or more columns of a table.

    Single-column indexes bucket by the bare value (no per-row key tuple),
    so join probes are plain dict lookups; ``single`` tells callers which
    key shape :attr:`buckets` uses.
    """

    def __init__(self, table: "Table", columns: Sequence[str]) -> None:
        for column in columns:
            if column not in table.columns:
                raise UnknownColumnError(
                    f"no column {column!r} in table {table.name!r}"
                )
        self.table = table
        self.columns = tuple(columns)
        self._positions = tuple(table.columns.index(c) for c in columns)
        self.single = len(self._positions) == 1
        self._buckets: Dict[object, List[Row]] = {}
        rows = table.rows
        if self._positions == tuple(range(len(table.columns))):
            # Full-row index (e.g. the (s, o) index on binary role
            # tables): rows are unique (set semantics), so every bucket
            # is a singleton keyed by the row itself — one dict-comp.
            if self.single:
                self._buckets = {row[0]: [row] for row in rows}
            else:
                self._buckets = {row: [row] for row in rows}
        elif rows:
            # Group by a stable sort + C-level groupby instead of one
            # dict probe per row. Stability keeps each bucket in row
            # insertion order — identical to incremental maintenance.
            key = itemgetter(*self._positions)
            try:
                ordered = sorted(rows, key=key)
            except TypeError:  # mixed-type column values don't sort
                for row in rows:
                    self._insert(row)
            else:
                self._buckets = {
                    value: list(group)
                    for value, group in groupby(ordered, key=key)
                }

    def _key(self, row: Row) -> object:
        if self.single:
            return row[self._positions[0]]
        return tuple(row[p] for p in self._positions)

    def _insert(self, row: Row) -> None:
        self._buckets.setdefault(self._key(row), []).append(row)

    def _remove(self, row: Row) -> None:
        key = self._key(row)
        bucket = self._buckets.get(key)
        if bucket is None:
            return
        try:
            bucket.remove(row)
        except ValueError:
            return
        if not bucket:
            del self._buckets[key]

    def lookup(self, key: Tuple) -> List[Row]:
        """Rows whose indexed columns equal *key* (a tuple, one value per
        indexed column)."""
        if self.single:
            return self._buckets.get(key[0], [])
        return self._buckets.get(tuple(key), [])

    @property
    def buckets(self) -> Dict[object, List[Row]]:
        """The key -> rows mapping (read-only use: join probes).

        Keys are bare values for single-column indexes, tuples in
        ``self.columns`` order otherwise.
        """
        return self._buckets

    def __len__(self) -> int:
        return len(self._buckets)


class Table:
    """An in-memory relation: named columns and a list of rows."""

    def __init__(self, name: str, columns: Sequence[str]) -> None:
        if not columns:
            raise ValueError(f"table {name!r} needs at least one column")
        if len(set(columns)) != len(columns):
            raise ValueError(f"duplicate column names in table {name!r}")
        self.name = name
        self.columns: Tuple[str, ...] = tuple(columns)
        self.rows: List[Row] = []
        self.indexes: Dict[Tuple[str, ...], Index] = {}
        self._row_set: Set[Row] = set()
        # batch_size -> list of columnar batches; dropped on any write.
        self._batch_cache: Dict[int, List[Batch]] = {}

    def insert(self, row: Sequence[Value]) -> bool:
        """Insert one row (set semantics); True when actually added."""
        row = tuple(row)
        if len(row) != len(self.columns):
            raise ValueError(
                f"row arity {len(row)} does not match table {self.name!r} "
                f"({len(self.columns)} columns)"
            )
        if row in self._row_set:
            return False
        self._row_set.add(row)
        self.rows.append(row)
        for index in self.indexes.values():
            index._insert(row)
        if self._batch_cache:
            self._batch_cache.clear()
        return True

    def insert_many(self, rows: Iterable[Sequence[Value]]) -> int:
        """Bulk insert; returns how many rows were actually added."""
        added = 0
        for row in rows:
            if self.insert(row):
                added += 1
        return added

    def delete(self, row: Sequence[Value]) -> bool:
        """Remove one row; True when it was present.

        Delegates to the batched :meth:`delete_many` path (a direct
        ``self.rows.remove(row)`` would rescan the row list per call).
        """
        return self.delete_many((row,)) == 1

    def delete_many(self, rows: Iterable[Sequence[Value]]) -> int:
        """Bulk delete; returns how many rows were actually removed.

        One pass over the stored rows for the whole batch (``delete`` in
        a loop would rescan the row list per deleted row).
        """
        doomed = {tuple(row) for row in rows} & self._row_set
        if not doomed:
            return 0
        self._row_set -= doomed
        self.rows = [row for row in self.rows if row not in doomed]
        for row in doomed:
            for index in self.indexes.values():
                index._remove(row)
        if self._batch_cache:
            self._batch_cache.clear()
        return len(doomed)

    def bulk_append(self, rows: Iterable[Sequence[Value]]) -> None:
        """Append rows **without** dedup or index maintenance.

        The bulk-load fast path: rows land on the raw list and nothing
        else is touched. The table is not query-consistent (duplicates
        possible, indexes stale) until :meth:`bulk_finish` runs — only
        :meth:`~repro.storage.base.BulkLoader` sessions, which hold the
        backend exclusively, may use it.
        """
        append = self.rows.append
        width = len(self.columns)
        for row in rows:
            if type(row) is not tuple:
                row = tuple(row)
            if len(row) != width:
                raise ValueError(
                    f"row arity {len(row)} does not match table "
                    f"{self.name!r} ({width} columns)"
                )
            append(row)

    def bulk_finish(self) -> int:
        """Restore set semantics and indexes after :meth:`bulk_append`.

        One dedup pass (``dict.fromkeys`` keeps first-seen order, the
        same order incremental inserts would have produced), one row-set
        rebuild, and one rebuild per existing index — instead of
        per-row work on every append. Returns the final row count.
        """
        deduped = dict.fromkeys(self.rows)
        if len(deduped) != len(self.rows):
            self.rows = list(deduped)
        self._row_set = set(deduped)
        for columns in list(self.indexes):
            self.indexes[columns] = Index(self, columns)
        if self._batch_cache:
            self._batch_cache.clear()
        return len(self.rows)

    def column_batches(self, batch_size: int) -> List[Batch]:
        """The table's rows as columnar batches (cached until a write).

        Each batch is a tuple of per-column value tuples, at most
        ``batch_size`` rows wide. Callers must not mutate the result.
        """
        cached = self._batch_cache.get(batch_size)
        if cached is None:
            rows = self.rows
            cached = [
                tuple(zip(*rows[start : start + batch_size]))
                for start in range(0, len(rows), batch_size)
            ]
            self._batch_cache[batch_size] = cached
        return cached

    def create_index(self, columns: Sequence[str]) -> Index:
        """Create (or return the existing) hash index on *columns*."""
        key = tuple(columns)
        if key not in self.indexes:
            self.indexes[key] = Index(self, columns)
        return self.indexes[key]

    def index_on(self, columns: Sequence[str]) -> Optional[Index]:
        """The index exactly matching *columns*, if any."""
        return self.indexes.get(tuple(columns))

    def column_position(self, column: str) -> int:
        try:
            return self.columns.index(column)
        except ValueError as missing:
            raise UnknownColumnError(
                f"no column {column!r} in table {self.name!r}"
            ) from missing

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return f"Table({self.name!r}, {len(self.rows)} rows)"
