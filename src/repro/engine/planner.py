"""The cost-based planner: AST to physical operator trees.

Planning one SELECT block proceeds as in a textbook System-R-lite:

1. resolve FROM sources (base tables, CTEs, derived subqueries) and push
   column-to-constant predicates down to scans — equality predicates are
   routed through a matching hash index (:class:`IndexScan`) when the
   table has one;
2. classify remaining predicates into join edges (columns from two
   different sources) and residual filters;
3. order joins greedily: start from the source with the smallest estimated
   cardinality, repeatedly join the source whose hash join yields the
   smallest estimated cost (cartesian products are a last resort) —
   candidate costs are computed arithmetically, without constructing
   throwaway operators;
4. apply residual filters as soon as both sides are available, then
   project, then deduplicate for SELECT DISTINCT.

UNION plans detect **shared scans** first: identical base-table
scan+filter subtrees (and identical derived subqueries) appearing in two
or more arms are planned once, materialized behind a planner-generated
CTE (``_shared_N``), and every arm reads the materialized batches
through a :class:`CTEScan` — exactly the shape PerfectRef reformulations
produce, where the same atom tables recur across dozens of UCQ arms.
WITH plans and registers CTEs in order so later CTEs and the body can
scan them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.engine.catalog import Catalog
from repro.engine.errors import PlanningError, UnknownColumnError
from repro.engine.operators import (
    ConstFilter,
    CostParameters,
    CrossJoin,
    CTEScan,
    DEFAULT_COSTS,
    Distinct,
    Filter,
    HashJoin,
    IndexScan,
    Materialize,
    Operator,
    Project,
    SeqScan,
    Union,
    _index_join_side,
)
from repro.engine.relation import Table
from repro.engine.sqlparser import (
    ColumnRef,
    Literal,
    SelectCore,
    SelectUnion,
    Statement,
    SubquerySource,
    TableSource,
)


@dataclass
class Plan:
    """A fully planned statement.

    ``cte_plans`` holds the user's CTEs *and* planner-generated shared
    scans, in materialization (dependency) order.
    """

    cte_plans: List[Tuple[str, Materialize]] = field(default_factory=list)
    body: Operator = None  # type: ignore[assignment]

    @property
    def total_cost(self) -> float:
        """Planner's cost estimate: CTE materializations plus the body."""
        return sum(m.cost for _, m in self.cte_plans) + self.body.cost

    @property
    def est_rows(self) -> float:
        return self.body.est_rows

    @property
    def columns(self) -> List[str]:
        return list(self.body.columns)


@dataclass
class _CTEInfo:
    materialize: Materialize
    out_columns: List[str]


@dataclass
class _SharedScan:
    """A planner-generated shared scan usable by several UNION arms."""

    name: str
    materialize: Materialize
    out_columns: List[str]


class _PlanState:
    """Per-``plan()`` mutable state: the plan under construction and the
    namespace for generated shared-scan CTEs."""

    def __init__(self, plan: Plan, reserved: Set[str]) -> None:
        self.plan = plan
        self.reserved = reserved
        self.counter = 0

    def next_shared_name(self) -> str:
        while True:
            name = f"_shared_{self.counter}"
            self.counter += 1
            if name not in self.reserved:
                self.reserved.add(name)
                return name


class Planner:
    """Plans parsed statements against a catalog."""

    def __init__(
        self, catalog: Catalog, params: CostParameters = DEFAULT_COSTS
    ) -> None:
        self.catalog = catalog
        self.params = params

    # ------------------------------------------------------------------
    def plan(self, statement: Statement) -> Plan:
        """Plan a full statement (CTEs in declaration order, then body)."""
        ctes: Dict[str, _CTEInfo] = {}
        plan = Plan()
        state = _PlanState(
            plan, {name.lower() for name, _ in statement.ctes}
        )
        for name, union in statement.ctes:
            root = self._plan_union(union, ctes, state)
            materialized = Materialize(name, root, self.params)
            out_columns = [label.split(".")[-1] for label in root.columns]
            ctes[name.lower()] = _CTEInfo(materialized, out_columns)
            plan.cte_plans.append((name, materialized))
        plan.body = self._plan_union(statement.body, ctes, state)
        return plan

    # ------------------------------------------------------------------
    def _plan_union(
        self,
        union: SelectUnion,
        ctes: Dict[str, _CTEInfo],
        state: _PlanState,
    ) -> Operator:
        if len(union.selects) > 1:
            shared_by_core = self._detect_shared_scans(union, ctes, state)
        else:
            shared_by_core = [{}]
        # A deduplicating UNION makes every arm set-semantic: the planner
        # may insert early duplicate elimination anywhere below it.
        union_dedups = len(union.selects) > 1 and not union.all
        branches = [
            self._plan_select(
                core, ctes, state, shared_by_core[i], union_dedups
            )
            for i, core in enumerate(union.selects)
        ]
        arities = {len(b.columns) for b in branches}
        if len(arities) != 1:
            raise PlanningError(f"UNION branches disagree on arity: {arities}")
        if len(branches) == 1:
            return branches[0]
        return Union(branches, union.all, self.params)

    # ------------------------------------------------------------------
    # Shared-scan detection
    # ------------------------------------------------------------------
    def _detect_shared_scans(
        self,
        union: SelectUnion,
        ctes: Dict[str, _CTEInfo],
        state: _PlanState,
    ) -> List[Dict[str, _SharedScan]]:
        """Fingerprint every arm's FROM sources; materialize repeats once.

        Returns one ``alias -> shared scan`` mapping per UNION arm. A
        source's fingerprint is its base (table name, or the derived
        subquery's AST) plus every constant filter and same-source
        column equality attributed to it — i.e. exactly the leaf subtree
        ``_plan_select`` would build. Arms whose conditions cannot be
        attributed statically (unqualified column references) opt out.
        """
        per_core = [
            self._fingerprint_core(core, ctes) for core in union.selects
        ]
        counts: Dict[Tuple, int] = {}
        for entry in per_core:
            if entry:
                for _alias, key in entry:
                    counts[key] = counts.get(key, 0) + 1
        shared: Dict[Tuple, _SharedScan] = {}
        for key, count in counts.items():
            if count < 2:
                continue
            is_table = key[0] == "t"
            has_filters = bool(key[2] or key[3] or key[4])
            # Sharing an unfiltered base scan saves nothing (the table's
            # columnar batches are already cached) and would hide the
            # scan's hash indexes from the join planner.
            if is_table and not has_filters:
                continue
            shared[key] = self._build_shared_scan(key, ctes, state)
        result: List[Dict[str, _SharedScan]] = []
        for entry in per_core:
            if not entry:
                result.append({})
                continue
            result.append(
                {alias: shared[key] for alias, key in entry if key in shared}
            )
        return result

    def _fingerprint_core(
        self, core: SelectCore, ctes: Dict[str, _CTEInfo]
    ) -> Optional[List[Tuple[str, Tuple]]]:
        """(alias, fingerprint) pairs for one arm; None when ineligible."""
        bases: Dict[str, Optional[Tuple]] = {}
        order: List[str] = []
        for source in core.sources:
            alias = source.alias
            if alias in bases:
                return None  # duplicate alias: the planner will raise
            if isinstance(source, TableSource):
                if source.name.lower() in ctes:
                    base = None  # CTE reference: materialized already
                else:
                    base = ("t", source.name.lower())
            else:
                base = ("q", source.statement)
            bases[alias] = base
            order.append(alias)
        eq: Dict[str, List[Tuple]] = {a: [] for a in order}
        neq: Dict[str, List[Tuple]] = {a: [] for a in order}
        pairs: Dict[str, List[Tuple]] = {a: [] for a in order}
        for condition in core.conditions:
            left, right, op = condition.left, condition.right, condition.op
            left_is_col = isinstance(left, ColumnRef)
            right_is_col = isinstance(right, ColumnRef)
            if (left_is_col and left.table is None) or (
                right_is_col and right.table is None
            ):
                return None  # bare column: attribution needs resolution
            if left_is_col and right_is_col:
                if left.table not in bases or right.table not in bases:
                    return None
                if left.table == right.table:
                    pairs[left.table].append(
                        (op,) + tuple(sorted((left.column, right.column)))
                    )
                # else: a join edge, applied above the leaves
            elif left_is_col or right_is_col:
                ref = left if left_is_col else right
                literal = right if left_is_col else left
                if ref.table not in bases:
                    return None
                bucket = eq if op == "=" else neq
                bucket[ref.table].append((ref.column, literal.value))
            # constant-constant conditions are validated by _plan_select
        result = []
        for alias in order:
            base = bases[alias]
            if base is None:
                continue
            result.append(
                (
                    alias,
                    (
                        base[0],
                        base[1],
                        frozenset(eq[alias]),
                        frozenset(neq[alias]),
                        frozenset(pairs[alias]),
                    ),
                )
            )
        return result

    #: Deterministic order for (column, literal) filter sets; literals
    #: may mix types (ints and strings), so sort on their repr.
    @staticmethod
    def _filter_order(item: Tuple) -> Tuple[str, str]:
        return (item[0], repr(item[1]))

    def _build_shared_scan(
        self, key: Tuple, ctes: Dict[str, _CTEInfo], state: _PlanState
    ) -> _SharedScan:
        """Plan one shared subtree and register its materialization."""
        kind, base, eq, neq, pair_set = key
        if kind == "t":
            table = self.catalog.table(base)
            stats = self.catalog.statistics(base)
            positions = [
                (table.column_position(c), v)
                for c, v in sorted(eq, key=self._filter_order)
            ]
            leaf: Operator = self._table_leaf(table, base, positions, stats)
            local: Sequence[str] = table.columns
        else:
            leaf = self._plan_union(base, ctes, state)
            local = [label.split(".")[-1] for label in leaf.columns]
            if eq:
                tests = [
                    (local.index(c), v, "=")
                    for c, v in sorted(eq, key=self._filter_order)
                ]
                leaf = ConstFilter(leaf, tests)
        if neq:
            tests = [
                (local.index(c), v, "<>")
                for c, v in sorted(neq, key=self._filter_order)
            ]
            leaf = ConstFilter(leaf, tests)
        if pair_set:
            pair_list = [
                (local.index(a), local.index(b), op)
                for op, a, b in sorted(pair_set)
            ]
            leaf = Filter(leaf, pair_list)
        name = state.next_shared_name()
        materialize = Materialize(name, leaf, self.params, shared=True)
        state.plan.cte_plans.append((name, materialize))
        return _SharedScan(name, materialize, list(local))

    # ------------------------------------------------------------------
    # Access-path selection
    # ------------------------------------------------------------------
    def _table_leaf(
        self,
        table: Table,
        alias: str,
        equality: List[Tuple[int, object]],
        stats,
    ) -> Operator:
        """Scan *table*, routing equality filters through a hash index.

        Preference order: an index exactly covering all equality columns;
        else a single-column index on the most selective filtered column
        (remaining filters become residuals); else a filtered SeqScan.
        """
        if not equality:
            return SeqScan(table, alias, [], stats, self.params)
        names = tuple(table.columns[p] for p, _ in equality)
        if len(names) > 1:
            index = table.index_on(names)
            ordered = equality
            if index is None:
                order = sorted(range(len(names)), key=lambda i: names[i])
                index = table.index_on(tuple(names[i] for i in order))
                ordered = [equality[i] for i in order]
            if index is not None:
                return IndexScan(
                    table, alias, index, ordered, [], stats, self.params
                )
        best: Optional[Tuple[float, int]] = None
        for i, (position, _value) in enumerate(equality):
            if table.index_on((table.columns[position],)) is not None:
                ndv = float(stats.distinct(table.columns[position]))
                if best is None or ndv > best[0]:
                    best = (ndv, i)
        if best is not None:
            i = best[1]
            index = table.index_on((table.columns[equality[i][0]],))
            residual = equality[:i] + equality[i + 1 :]
            return IndexScan(
                table, alias, index, [equality[i]], residual, stats, self.params
            )
        return SeqScan(table, alias, equality, stats, self.params)

    # ------------------------------------------------------------------
    def _plan_select(
        self,
        core: SelectCore,
        ctes: Dict[str, _CTEInfo],
        state: _PlanState,
        shared_scans: Dict[str, _SharedScan],
        union_dedups: bool = False,
    ) -> Operator:
        # ---- classify conditions by source -------------------------------
        alias_order: List[str] = []
        source_specs: Dict[str, Tuple[str, object]] = {}
        for source in core.sources:
            if isinstance(source, TableSource):
                alias = source.alias
                spec = ("table", source)
            else:
                alias = source.alias
                spec = ("subquery", source)
            if alias in source_specs:
                raise PlanningError(f"duplicate alias {alias!r} in FROM")
            source_specs[alias] = spec
            alias_order.append(alias)

        # Pre-plan subqueries so their output columns are known. This must
        # be a local mapping: planning a subquery recurses into this method.
        # Shared subqueries were already planned once by the union.
        subquery_ops: Dict[str, Operator] = {}
        for alias, (kind, source) in source_specs.items():
            if kind == "subquery" and alias not in shared_scans:
                subquery_ops[alias] = self._plan_union(
                    source.statement, ctes, state  # type: ignore[union-attr]
                )

        def columns_of(alias: str) -> List[str]:
            shared = shared_scans.get(alias)
            if shared is not None:
                return list(shared.out_columns)
            kind, source = source_specs[alias]
            if kind == "table":
                name = source.name  # type: ignore[union-attr]
                if name.lower() in ctes:
                    return list(ctes[name.lower()].out_columns)
                return list(self.catalog.table(name).columns)
            planned = subquery_ops[alias]
            return [label.split(".")[-1] for label in planned.columns]

        def resolve(ref: ColumnRef) -> Tuple[str, str]:
            """Resolve a column reference to (alias, column)."""
            if ref.table is not None:
                if ref.table not in source_specs:
                    raise UnknownColumnError(
                        f"unknown table alias {ref.table!r} for column {ref.column!r}"
                    )
                if ref.column not in columns_of(ref.table):
                    raise UnknownColumnError(
                        f"no column {ref.column!r} under alias {ref.table!r}"
                    )
                return (ref.table, ref.column)
            owners = [
                alias for alias in alias_order if ref.column in columns_of(alias)
            ]
            if not owners:
                raise UnknownColumnError(f"unknown column {ref.column!r}")
            if len(owners) > 1:
                raise UnknownColumnError(
                    f"ambiguous column {ref.column!r} (in {owners})"
                )
            return (owners[0], ref.column)

        const_filters: Dict[str, List[Tuple[str, object, str]]] = {
            alias: [] for alias in alias_order
        }
        join_edges: List[Tuple[Tuple[str, str], Tuple[str, str], str]] = []
        same_source: List[Tuple[Tuple[str, str], Tuple[str, str], str]] = []

        for condition in core.conditions:
            left, right, op = condition.left, condition.right, condition.op
            left_is_col = isinstance(left, ColumnRef)
            right_is_col = isinstance(right, ColumnRef)
            if left_is_col and right_is_col:
                left_loc, right_loc = resolve(left), resolve(right)
                if left_loc[0] == right_loc[0]:
                    same_source.append((left_loc, right_loc, op))
                else:
                    join_edges.append((left_loc, right_loc, op))
            elif left_is_col or right_is_col:
                column = left if left_is_col else right
                literal = right if left_is_col else left
                alias, name = resolve(column)  # type: ignore[arg-type]
                const_filters[alias].append((name, literal.value, op))  # type: ignore[union-attr]
            else:
                if (op == "=" and left.value != right.value) or (  # type: ignore[union-attr]
                    op == "<>" and left.value == right.value  # type: ignore[union-attr]
                ):
                    raise PlanningError(
                        "statement contains a constant-false predicate"
                    )

        # ---- build leaf operators with pushed-down filters ----------------
        leaves: Dict[str, Operator] = {}
        for alias in alias_order:
            shared = shared_scans.get(alias)
            if shared is not None:
                # All of this alias's filters are baked into the shared
                # subtree (they are part of its fingerprint).
                leaves[alias] = CTEScan(
                    shared.name,
                    alias,
                    shared.out_columns,
                    shared.materialize,
                    [],
                    self.params,
                )
                continue
            kind, source = source_specs[alias]
            filters = const_filters[alias]
            equality = [(n, v) for n, v, op in filters if op == "="]
            other = [(n, v, op) for n, v, op in filters if op != "="]
            if kind == "table":
                name = source.name  # type: ignore[union-attr]
                if name.lower() in ctes:
                    info = ctes[name.lower()]
                    positions = [
                        (info.out_columns.index(n), v) for n, v in equality
                    ]
                    op_leaf: Operator = CTEScan(
                        name,
                        alias,
                        info.out_columns,
                        info.materialize,
                        positions,
                        self.params,
                    )
                else:
                    table = self.catalog.table(name)
                    stats = self.catalog.statistics(name)
                    positions = [
                        (table.column_position(n), v) for n, v in equality
                    ]
                    op_leaf = self._table_leaf(table, alias, positions, stats)
            else:
                inner = subquery_ops[alias]
                local = [label.split(".")[-1] for label in inner.columns]
                relabeled = Project(
                    inner,
                    [
                        (position, None, f"{alias}.{name}")
                        for position, name in enumerate(local)
                    ],
                    self.params,
                )
                op_leaf = relabeled
                if equality:
                    tests = [(local.index(n), v, "=") for n, v in equality]
                    op_leaf = ConstFilter(op_leaf, tests)
            if other:
                local = columns_of(alias)
                tests = [(local.index(n), v, op) for n, v, op in other]
                op_leaf = ConstFilter(op_leaf, tests)
            # Same-source column equalities apply immediately on the leaf.
            pairs = []
            for left_loc, right_loc, op in same_source:
                if left_loc[0] == alias:
                    local = columns_of(alias)
                    pairs.append(
                        (local.index(left_loc[1]), local.index(right_loc[1]), op)
                    )
            if pairs:
                op_leaf = Filter(op_leaf, pairs)
            leaves[alias] = op_leaf

        # ---- projection resolution (needed for join-time pruning) ---------
        projection_locs: List[Tuple[Optional[Tuple[str, str]], object, Optional[str]]] = []
        needed_labels: Set[str] = set()
        for expr, out_alias in core.projections:
            if isinstance(expr, Literal):
                projection_locs.append((None, expr.value, out_alias))
            else:
                alias, name = resolve(expr)
                projection_locs.append(((alias, name), None, out_alias))
                needed_labels.add(f"{alias}.{name}")

        # ---- greedy join ordering ----------------------------------------
        # Under set semantics (SELECT DISTINCT, or an arm of a
        # deduplicating UNION) intermediate results may be deduplicated
        # as soon as columns are pruned away — base relations are sets,
        # so only column dropping can introduce duplicates, and early
        # dedup keeps skew-driven join blowups from cascading.
        set_semantics = core.distinct or union_dedups
        composite = self._order_joins(
            leaves, alias_order, join_edges, needed_labels, set_semantics
        )

        # ---- projection + distinct ----------------------------------------
        items: List[Tuple[Optional[int], object, str]] = []
        for loc, value, out_alias in projection_locs:
            if loc is None:
                items.append((None, value, out_alias or "literal"))
            else:
                alias, name = loc
                position = composite.columns.index(f"{alias}.{name}")
                items.append((position, None, out_alias or name))
        projected = Project(composite, items, self.params)
        if core.distinct:
            return Distinct(projected, self.params)
        return projected

    # ------------------------------------------------------------------
    def _hash_join_estimate(
        self,
        left: Operator,
        right: Operator,
        keys: List[Tuple[Tuple[str, str], Tuple[str, str]]],
    ) -> float:
        """Cost of ``HashJoin(left, right)`` without constructing it.

        Mirrors :class:`HashJoin`'s own estimate (including the index
        nested-loop discount) so the greedy join ordering can compare
        candidates arithmetically.
        """
        selectivity = 1.0
        for outer_loc, inner_loc in keys:
            left_ndv = left.est_ndv.get(
                f"{outer_loc[0]}.{outer_loc[1]}", left.est_rows or 1.0
            )
            right_ndv = right.est_ndv.get(
                f"{inner_loc[0]}.{inner_loc[1]}", right.est_rows or 1.0
            )
            selectivity /= max(1.0, max(left_ndv, right_ndv))
        est_rows = left.est_rows * right.est_rows * selectivity
        left_index = self._label_index_side(left, [o for o, _ in keys])
        right_index = self._label_index_side(right, [i for _, i in keys])
        if left_index is not None and right_index is not None:
            if left.est_rows >= right.est_rows:
                index_side: Optional[str] = "left"
            else:
                index_side = "right"
        elif left_index is not None:
            index_side = "left"
        elif right_index is not None:
            index_side = "right"
        else:
            index_side = None
        return HashJoin.estimate_cost(
            left, right, est_rows, index_side, self.params
        )

    @staticmethod
    def _label_index_side(operator: Operator, locs) -> Optional[object]:
        """Map (alias, column) locs to positions and ask the executor's
        own eligibility rule, so the join-order estimate can never drift
        from what :class:`HashJoin` actually does."""
        if not isinstance(operator, SeqScan) or operator.filters:
            return None
        columns = operator.table.columns
        try:
            positions = [columns.index(column) for _alias, column in locs]
        except ValueError:
            return None
        return _index_join_side(operator, positions)

    # ------------------------------------------------------------------
    def _order_joins(
        self,
        leaves: Dict[str, Operator],
        alias_order: List[str],
        join_edges: List[Tuple[Tuple[str, str], Tuple[str, str], str]],
        needed_labels: Set[str],
        set_semantics: bool = False,
    ) -> Operator:
        remaining: Set[str] = set(alias_order)
        if len(remaining) == 1:
            return leaves[alias_order[0]]

        pending = list(join_edges)
        params = self.params

        def join_keys(in_composite: Set[str], alias: str):
            """Equality edges connecting *alias* to the current composite."""
            keys = []
            for left_loc, right_loc, op in pending:
                if op != "=":
                    continue
                first, second = left_loc[0], right_loc[0]
                if first == alias and second in in_composite:
                    keys.append((right_loc, left_loc))
                elif second == alias and first in in_composite:
                    keys.append((left_loc, right_loc))
            return keys

        # Start with the smallest leaf.
        start = min(remaining, key=lambda a: leaves[a].est_rows)
        composite = leaves[start]
        in_composite = {start}
        remaining.discard(start)
        positions = {label: i for i, label in enumerate(composite.columns)}

        while remaining:
            best_alias = None
            best_keys = None
            best_cost = None
            for alias in sorted(remaining):
                keys = join_keys(in_composite, alias)
                leaf = leaves[alias]
                if keys:
                    cost = self._hash_join_estimate(composite, leaf, keys)
                else:
                    cost = (
                        composite.cost
                        + leaf.cost
                        + params.cross_join_penalty
                        * (composite.est_rows * leaf.est_rows)
                    )
                if best_cost is None or cost < best_cost:
                    best_cost = cost
                    best_keys = keys
                    best_alias = alias
            assert best_alias is not None
            leaf = leaves[best_alias]
            if best_keys:
                key_pairs = [
                    (
                        positions[f"{o[0]}.{o[1]}"],
                        leaf.columns.index(f"{i[0]}.{i[1]}"),
                    )
                    for o, i in best_keys
                ]
                composite = HashJoin(composite, leaf, key_pairs, params)
            else:
                composite = CrossJoin(composite, leaf, params)
            positions = {label: i for i, label in enumerate(composite.columns)}
            in_composite.add(best_alias)
            remaining.discard(best_alias)
            # Apply residual (non-key) predicates that just became closed.
            closed = []
            open_edges = []
            for left_loc, right_loc, op in pending:
                if left_loc[0] in in_composite and right_loc[0] in in_composite:
                    closed.append((left_loc, right_loc, op))
                else:
                    open_edges.append((left_loc, right_loc, op))
            pending = open_edges
            residual_pairs = []
            used_as_keys = set()
            if isinstance(composite, HashJoin):
                for l, r in composite.key_pairs:
                    used_as_keys.add(
                        (composite.left.columns[l], composite.right.columns[r])
                    )
            for left_loc, right_loc, op in closed:
                left_label = f"{left_loc[0]}.{left_loc[1]}"
                right_label = f"{right_loc[0]}.{right_loc[1]}"
                # Only an equality edge is satisfied by serving as the
                # hash-join key; a <> on the same column pair must still
                # be applied as a residual filter.
                if op == "=" and (
                    (left_label, right_label) in used_as_keys
                    or (right_label, left_label) in used_as_keys
                ):
                    continue
                residual_pairs.append(
                    (positions[left_label], positions[right_label], op)
                )
            if residual_pairs:
                composite = Filter(composite, residual_pairs)
            # Prune columns no later operator needs: narrower batches mean
            # narrower gathers in every join above this one. (A Project
            # only re-references columns, so pruning costs nothing at
            # execution.)
            if remaining:
                keep = set(needed_labels)
                for left_loc, right_loc, _op in pending:
                    keep.add(f"{left_loc[0]}.{left_loc[1]}")
                    keep.add(f"{right_loc[0]}.{right_loc[1]}")
                kept = [label for label in composite.columns if label in keep]
                if kept and len(kept) < len(composite.columns):
                    composite = Project(
                        composite,
                        [(positions[label], None, label) for label in kept],
                        params,
                    )
                    if set_semantics:
                        composite = Distinct(composite, params)
                    positions = {
                        label: i for i, label in enumerate(composite.columns)
                    }
        return composite


# ---------------------------------------------------------------------------
# Shard-route analysis (partition pruning for hash-sharded storage)
# ---------------------------------------------------------------------------
#
# :class:`repro.storage.sharded_backend.ShardedBackend` hash-partitions
# every table by its *shard key* (the home-key column, the first column
# of the predicate layouts). Before executing a statement it asks this
# analysis where the statement's answers can possibly live:
#
# * **pruned** — every arm's sources are joined on their shard keys and
#   that equivalence class is bound to a constant, so only the shards of
#   those constants can contribute;
# * **scatter** — arms are shard-key co-partitioned but unbound: every
#   shard evaluates the whole statement locally and the results merge
#   (set-union at deduplicating roots, concatenation otherwise);
# * **gather** — some join is *not* on the shard key (matching rows may
#   live on different shards), so shard-local evaluation would miss
#   answers: the referenced tables are gathered to a coordinator first.
#
# The soundness argument for scatter: when every source of an arm is
# anchored in one equality class together with its shard key, all rows
# contributing to one answer carry the same shard-key value and hence
# live on the same shard, so the per-shard evaluations partition the
# global answer. A CTE or subquery source counts as anchored only via an
# *aligned* output column — one equal to its own arms' shard keys — so a
# derived row's column value pins the unique shard that can produce it.


@dataclass(frozen=True)
class ShardRoute:
    """Where a statement must run on hash-sharded storage."""

    #: ``"pruned"`` | ``"scatter"`` | ``"gather"``.
    kind: str
    #: Target shard ids (sorted). Empty means "all shards" for gather.
    shards: Tuple[int, ...]
    #: Base tables the statement references (sorted lowercase names).
    tables: Tuple[str, ...]
    #: Whether the statement's root deduplicates (DISTINCT / UNION), and
    #: therefore whether a multi-shard merge needs a global dedup.
    dedup_root: bool


@dataclass(frozen=True)
class _ShardUnionInfo:
    """What a SELECT-union exposes to an enclosing shard analysis."""

    safe: bool
    out_columns: Tuple[Optional[str], ...]
    #: Output positions whose value equals the arms' shard keys.
    aligned: Tuple[int, ...]
    #: One shard-key-binding literal per arm, or ``None`` when some arm
    #: is unbound (the union needs every shard).
    constants: Optional[Tuple[object, ...]]


_UNSAFE = _ShardUnionInfo(False, (), (), None)


class _UnionFind:
    """A tiny union-find over hashable nodes."""

    def __init__(self) -> None:
        self.parent: Dict[object, object] = {}

    def find(self, node: object) -> object:
        parents = self.parent
        parents.setdefault(node, node)
        while parents[node] != node:
            # Path halving: point at the grandparent, then step there.
            grandparent = parents.setdefault(parents[node], parents[node])
            parents[node] = grandparent
            node = grandparent
        return node

    def union(self, a: object, b: object) -> None:
        self.parent[self.find(a)] = self.find(b)


def _shard_resolve(expr, alias_columns, aliases):
    """Map an expression to a union-find node, or ``None`` if ambiguous.

    Unqualified columns resolve against the single source, or the single
    source whose output columns contain the name.
    """
    if isinstance(expr, Literal):
        return ("const", expr.value)
    if not isinstance(expr, ColumnRef):  # pragma: no cover - grammar-total
        return None
    if expr.table is not None:
        if expr.table not in alias_columns:
            return None
        return ("col", expr.table, expr.column)
    candidates = [
        alias
        for alias in aliases
        if alias_columns[alias] is not None and expr.column in alias_columns[alias]
    ]
    if len(candidates) == 1:
        return ("col", candidates[0], expr.column)
    if not candidates and len(aliases) == 1:
        return ("col", aliases[0], expr.column)
    return None


def _collect_shard_tables(
    union: SelectUnion, cte_names, tables_seen
) -> None:
    """Collect every base table a SELECT-union references, recursing into
    derived subqueries. Runs unconditionally *before* the safety
    analysis: the gather route materializes exactly these tables on the
    coordinator, so the list must be complete even when the analysis
    bails out early on an unsafe source."""
    for core in union.selects:
        for source in core.sources:
            if isinstance(source, TableSource):
                if source.name not in cte_names:
                    tables_seen.add(source.name.lower())
            else:
                _collect_shard_tables(source.statement, cte_names, tables_seen)


def _analyze_shard_core(core: SelectCore, env, table_keys) -> _ShardUnionInfo:
    """Analyze one SELECT block; see :func:`analyze_shard_route`."""
    aliases: List[str] = []
    alias_columns: Dict[str, Optional[Tuple[str, ...]]] = {}
    key_nodes: Dict[str, Tuple] = {}
    for source in core.sources:
        if isinstance(source, TableSource):
            info = env.get(source.name)
            if info is None:
                entry = table_keys.get(source.name.lower())
                if entry is None:
                    return _UNSAFE
                columns, key_column = entry
                keys = (("col", source.alias, key_column),)
            else:
                if not info.safe:
                    return _UNSAFE
                columns = info.out_columns
                keys = tuple(
                    ("col", source.alias, columns[p])
                    for p in info.aligned
                    if columns[p] is not None
                )
        else:
            assert isinstance(source, SubquerySource)
            info = _analyze_shard_union(source.statement, env, table_keys)
            if not info.safe:
                return _UNSAFE
            columns = info.out_columns
            keys = tuple(
                ("col", source.alias, columns[p])
                for p in info.aligned
                if columns[p] is not None
            )
        if source.alias in alias_columns:
            return _UNSAFE  # duplicate alias: resolution would be ambiguous
        aliases.append(source.alias)
        alias_columns[source.alias] = tuple(c for c in columns) if columns else ()
        key_nodes[source.alias] = keys

    uf = _UnionFind()
    nodes: List[object] = []
    for alias, keys in key_nodes.items():
        for node in keys:
            uf.find(node)
            nodes.append(node)
    for condition in core.conditions:
        if condition.op != "=":
            continue
        left = _shard_resolve(condition.left, alias_columns, aliases)
        right = _shard_resolve(condition.right, alias_columns, aliases)
        if left is None or right is None:
            return _UNSAFE
        uf.union(left, right)
        nodes.extend((left, right))

    # Classes in which *every* source is anchored through a key node.
    candidates: Optional[Set[object]] = None
    for alias in aliases:
        keys = key_nodes[alias]
        if not keys:
            return _UNSAFE
        roots = {uf.find(node) for node in keys}
        candidates = roots if candidates is None else candidates & roots
        if not candidates:
            return _UNSAFE

    constant: Optional[Tuple[object, ...]] = None
    for node in nodes:
        if node[0] == "const" and uf.find(node) in candidates:
            constant = (node[1],)
            break

    aligned: List[int] = []
    out_columns: List[Optional[str]] = []
    for position, (expr, alias) in enumerate(core.projections):
        if alias is not None:
            out_columns.append(alias)
        elif isinstance(expr, ColumnRef):
            out_columns.append(expr.column)
        else:
            out_columns.append(None)
        node = _shard_resolve(expr, alias_columns, aliases)
        if node is not None and uf.find(node) in candidates:
            aligned.append(position)
    return _ShardUnionInfo(
        True, tuple(out_columns), tuple(aligned), constant
    )


def _analyze_shard_union(
    union: SelectUnion, env, table_keys
) -> _ShardUnionInfo:
    """Combine the arms of one SELECT-union; see :func:`analyze_shard_route`."""
    infos = [
        _analyze_shard_core(core, env, table_keys) for core in union.selects
    ]
    if not all(info.safe for info in infos):
        return _UNSAFE
    if len(infos) > 1 and union.all:
        # UNION ALL keeps duplicates, but an arm's own DISTINCT dedups
        # only within a shard: the arm must expose a shard-aligned
        # column, or the same row could surface from several shards.
        for core, info in zip(union.selects, infos):
            if core.distinct and not info.aligned:
                return _UNSAFE
    aligned = set(infos[0].aligned)
    for info in infos[1:]:
        aligned &= set(info.aligned)
    constants: Optional[Tuple[object, ...]] = ()
    for info in infos:
        if info.constants is None:
            constants = None
            break
        constants = constants + info.constants
    return _ShardUnionInfo(
        True, infos[0].out_columns, tuple(sorted(aligned)), constants
    )


def analyze_shard_route(
    statement: Statement,
    table_keys: Dict[str, Tuple[Tuple[str, ...], str]],
    shard_count: int,
    shard_of,
) -> ShardRoute:
    """Decide how *statement* must execute over hash-sharded tables.

    ``table_keys`` maps lowercase table names to ``(columns, shard key
    column)``; ``shard_of(value)`` maps a shard-key value to its shard
    id. Statements referencing unknown tables, or whose joins cannot be
    proven shard-key co-partitioned, fall back to ``"gather"`` — the
    analysis is conservative: it may gather more than strictly needed
    but never scatters a statement whose answers span shards.
    """
    env: Dict[str, _ShardUnionInfo] = {}
    tables_seen: Set[str] = set()
    cte_names = {name for name, _ in statement.ctes}
    for _name, cte_union in statement.ctes:
        _collect_shard_tables(cte_union, cte_names, tables_seen)
    _collect_shard_tables(statement.body, cte_names, tables_seen)
    safe = True
    for name, cte_union in statement.ctes:
        info = _analyze_shard_union(cte_union, env, table_keys)
        env[name] = info
        safe = safe and info.safe
    body = _analyze_shard_union(statement.body, env, table_keys)
    safe = safe and body.safe

    if len(statement.body.selects) > 1:
        dedup_root = not statement.body.all
    else:
        dedup_root = statement.body.selects[0].distinct
    tables = tuple(sorted(tables_seen))
    if not safe:
        return ShardRoute("gather", (), tables, dedup_root)
    if body.constants is not None:
        shards = tuple(sorted({shard_of(value) for value in body.constants}))
        return ShardRoute("pruned", shards, tables, dedup_root)
    return ShardRoute("scatter", tuple(range(shard_count)), tables, dedup_root)
