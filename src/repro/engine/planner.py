"""The cost-based planner: AST to physical operator trees.

Planning one SELECT block proceeds as in a textbook System-R-lite:

1. resolve FROM sources (base tables, CTEs, derived subqueries) and push
   column-to-constant predicates down to scans;
2. classify remaining predicates into join edges (columns from two
   different sources) and residual filters;
3. order joins greedily: start from the source with the smallest estimated
   cardinality, repeatedly join the source whose hash join yields the
   smallest estimated result (cartesian products are a last resort);
4. apply residual filters as soon as both sides are available, then
   project, then deduplicate for SELECT DISTINCT.

UNION plans each branch independently; WITH plans and registers CTEs in
order so later CTEs and the body can scan them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.engine.catalog import Catalog, TableStats
from repro.engine.errors import PlanningError, UnknownColumnError, UnknownTableError
from repro.engine.operators import (
    ConstFilter,
    CostParameters,
    CrossJoin,
    CTEScan,
    DEFAULT_COSTS,
    Distinct,
    Filter,
    HashJoin,
    Materialize,
    Operator,
    Project,
    SeqScan,
    Union,
)
from repro.engine.sqlparser import (
    ColumnRef,
    Condition,
    Literal,
    SelectCore,
    SelectUnion,
    Statement,
    SubquerySource,
    TableSource,
)


@dataclass
class Plan:
    """A fully planned statement."""

    cte_plans: List[Tuple[str, Materialize]] = field(default_factory=list)
    body: Operator = None  # type: ignore[assignment]

    @property
    def total_cost(self) -> float:
        """Planner's cost estimate: CTE materializations plus the body."""
        return sum(m.cost for _, m in self.cte_plans) + self.body.cost

    @property
    def est_rows(self) -> float:
        return self.body.est_rows

    @property
    def columns(self) -> List[str]:
        return list(self.body.columns)


@dataclass
class _CTEInfo:
    materialize: Materialize
    out_columns: List[str]


class Planner:
    """Plans parsed statements against a catalog."""

    def __init__(
        self, catalog: Catalog, params: CostParameters = DEFAULT_COSTS
    ) -> None:
        self.catalog = catalog
        self.params = params

    # ------------------------------------------------------------------
    def plan(self, statement: Statement) -> Plan:
        """Plan a full statement (CTEs in declaration order, then body)."""
        ctes: Dict[str, _CTEInfo] = {}
        plan = Plan()
        for name, union in statement.ctes:
            root = self._plan_union(union, ctes)
            materialized = Materialize(name, root, self.params)
            out_columns = [label.split(".")[-1] for label in root.columns]
            ctes[name.lower()] = _CTEInfo(materialized, out_columns)
            plan.cte_plans.append((name, materialized))
        plan.body = self._plan_union(statement.body, ctes)
        return plan

    # ------------------------------------------------------------------
    def _plan_union(
        self, union: SelectUnion, ctes: Dict[str, _CTEInfo]
    ) -> Operator:
        branches = [self._plan_select(core, ctes) for core in union.selects]
        arities = {len(b.columns) for b in branches}
        if len(arities) != 1:
            raise PlanningError(f"UNION branches disagree on arity: {arities}")
        if len(branches) == 1:
            return branches[0]
        return Union(branches, union.all, self.params)

    # ------------------------------------------------------------------
    def _plan_select(
        self, core: SelectCore, ctes: Dict[str, _CTEInfo]
    ) -> Operator:
        # ---- classify conditions by source -------------------------------
        alias_order: List[str] = []
        source_specs: Dict[str, Tuple[str, object]] = {}
        for source in core.sources:
            if isinstance(source, TableSource):
                alias = source.alias
                spec = ("table", source)
            else:
                alias = source.alias
                spec = ("subquery", source)
            if alias in source_specs:
                raise PlanningError(f"duplicate alias {alias!r} in FROM")
            source_specs[alias] = spec
            alias_order.append(alias)

        # Pre-plan subqueries so their output columns are known. This must
        # be a local mapping: planning a subquery recurses into this method.
        subquery_ops: Dict[str, Operator] = {}
        for alias, (kind, source) in source_specs.items():
            if kind == "subquery":
                subquery_ops[alias] = self._plan_union(
                    source.statement, ctes  # type: ignore[union-attr]
                )

        def columns_of(alias: str) -> List[str]:
            kind, source = source_specs[alias]
            if kind == "table":
                name = source.name  # type: ignore[union-attr]
                if name.lower() in ctes:
                    return list(ctes[name.lower()].out_columns)
                return list(self.catalog.table(name).columns)
            planned = subquery_ops[alias]
            return [label.split(".")[-1] for label in planned.columns]

        def resolve(ref: ColumnRef) -> Tuple[str, str]:
            """Resolve a column reference to (alias, column)."""
            if ref.table is not None:
                if ref.table not in source_specs:
                    raise UnknownColumnError(
                        f"unknown table alias {ref.table!r} for column {ref.column!r}"
                    )
                if ref.column not in columns_of(ref.table):
                    raise UnknownColumnError(
                        f"no column {ref.column!r} under alias {ref.table!r}"
                    )
                return (ref.table, ref.column)
            owners = [
                alias for alias in alias_order if ref.column in columns_of(alias)
            ]
            if not owners:
                raise UnknownColumnError(f"unknown column {ref.column!r}")
            if len(owners) > 1:
                raise UnknownColumnError(
                    f"ambiguous column {ref.column!r} (in {owners})"
                )
            return (owners[0], ref.column)

        const_filters: Dict[str, List[Tuple[str, object, str]]] = {
            alias: [] for alias in alias_order
        }
        join_edges: List[Tuple[Tuple[str, str], Tuple[str, str], str]] = []
        same_source: List[Tuple[Tuple[str, str], Tuple[str, str], str]] = []

        for condition in core.conditions:
            left, right, op = condition.left, condition.right, condition.op
            left_is_col = isinstance(left, ColumnRef)
            right_is_col = isinstance(right, ColumnRef)
            if left_is_col and right_is_col:
                left_loc, right_loc = resolve(left), resolve(right)
                if left_loc[0] == right_loc[0]:
                    same_source.append((left_loc, right_loc, op))
                else:
                    join_edges.append((left_loc, right_loc, op))
            elif left_is_col or right_is_col:
                column = left if left_is_col else right
                literal = right if left_is_col else left
                alias, name = resolve(column)  # type: ignore[arg-type]
                const_filters[alias].append((name, literal.value, op))  # type: ignore[union-attr]
            else:
                if (op == "=" and left.value != right.value) or (  # type: ignore[union-attr]
                    op == "<>" and left.value == right.value  # type: ignore[union-attr]
                ):
                    raise PlanningError(
                        "statement contains a constant-false predicate"
                    )

        # ---- build leaf operators with pushed-down filters ----------------
        leaves: Dict[str, Operator] = {}
        for alias in alias_order:
            kind, source = source_specs[alias]
            filters = const_filters[alias]
            equality = [(n, v) for n, v, op in filters if op == "="]
            other = [(n, v, op) for n, v, op in filters if op != "="]
            if kind == "table":
                name = source.name  # type: ignore[union-attr]
                if name.lower() in ctes:
                    info = ctes[name.lower()]
                    positions = [
                        (info.out_columns.index(n), v) for n, v in equality
                    ]
                    op_leaf: Operator = CTEScan(
                        name,
                        alias,
                        info.out_columns,
                        info.materialize,
                        positions,
                        self.params,
                    )
                else:
                    table = self.catalog.table(name)
                    stats = self.catalog.statistics(name)
                    positions = [
                        (table.column_position(n), v) for n, v in equality
                    ]
                    op_leaf = SeqScan(table, alias, positions, stats, self.params)
            else:
                inner = subquery_ops[alias]
                local = [label.split(".")[-1] for label in inner.columns]
                relabeled = Project(
                    inner,
                    [
                        (position, None, f"{alias}.{name}")
                        for position, name in enumerate(local)
                    ],
                    self.params,
                )
                op_leaf = relabeled
                if equality:
                    tests = [(local.index(n), v, "=") for n, v in equality]
                    op_leaf = ConstFilter(op_leaf, tests)
            if other:
                local = columns_of(alias)
                tests = [(local.index(n), v, op) for n, v, op in other]
                op_leaf = ConstFilter(op_leaf, tests)
            # Same-source column equalities apply immediately on the leaf.
            pairs = []
            for left_loc, right_loc, op in same_source:
                if left_loc[0] == alias:
                    local = columns_of(alias)
                    pairs.append(
                        (local.index(left_loc[1]), local.index(right_loc[1]), op)
                    )
            if pairs:
                op_leaf = Filter(op_leaf, pairs)
            leaves[alias] = op_leaf

        # ---- greedy join ordering ----------------------------------------
        composite = self._order_joins(leaves, alias_order, join_edges)

        # ---- projection + distinct ----------------------------------------
        items: List[Tuple[Optional[int], object, str]] = []
        for expr, out_alias in core.projections:
            if isinstance(expr, Literal):
                label = out_alias or "literal"
                items.append((None, expr.value, label))
            else:
                alias, name = resolve(expr)
                qualified = f"{alias}.{name}"
                position = composite.columns.index(qualified)
                items.append((position, None, out_alias or name))
        projected = Project(composite, items, self.params)
        if core.distinct:
            return Distinct(projected, self.params)
        return projected

    # ------------------------------------------------------------------
    def _order_joins(
        self,
        leaves: Dict[str, Operator],
        alias_order: List[str],
        join_edges: List[Tuple[Tuple[str, str], Tuple[str, str], str]],
    ) -> Operator:
        remaining: Set[str] = set(alias_order)
        if len(remaining) == 1:
            return leaves[alias_order[0]]

        pending = list(join_edges)

        def join_keys(in_composite: Set[str], alias: str):
            """Equality edges connecting *alias* to the current composite."""
            keys = []
            for left_loc, right_loc, op in pending:
                if op != "=":
                    continue
                first, second = left_loc[0], right_loc[0]
                if first == alias and second in in_composite:
                    keys.append((right_loc, left_loc))
                elif second == alias and first in in_composite:
                    keys.append((left_loc, right_loc))
            return keys

        # Start with the smallest leaf.
        start = min(remaining, key=lambda a: leaves[a].est_rows)
        composite = leaves[start]
        in_composite = {start}
        remaining.discard(start)

        while remaining:
            best_alias = None
            best_plan = None
            best_cost = None
            for alias in sorted(remaining):
                keys = join_keys(in_composite, alias)
                if keys:
                    key_pairs = [
                        (
                            composite.columns.index(f"{o[0]}.{o[1]}"),
                            leaves[alias].columns.index(f"{i[0]}.{i[1]}"),
                        )
                        for o, i in keys
                    ]
                    candidate: Operator = HashJoin(
                        composite, leaves[alias], key_pairs, self.params
                    )
                else:
                    candidate = CrossJoin(composite, leaves[alias], self.params)
                if best_cost is None or candidate.cost < best_cost:
                    best_cost = candidate.cost
                    best_plan = candidate
                    best_alias = alias
            assert best_alias is not None and best_plan is not None
            composite = best_plan
            in_composite.add(best_alias)
            remaining.discard(best_alias)
            # Apply residual (non-key) predicates that just became closed.
            closed = []
            open_edges = []
            for left_loc, right_loc, op in pending:
                if left_loc[0] in in_composite and right_loc[0] in in_composite:
                    closed.append((left_loc, right_loc, op))
                else:
                    open_edges.append((left_loc, right_loc, op))
            pending = open_edges
            residual_pairs = []
            used_as_keys = set()
            if isinstance(composite, HashJoin):
                for l, r in composite.key_pairs:
                    used_as_keys.add(
                        (composite.left.columns[l], composite.right.columns[r])
                    )
            for left_loc, right_loc, op in closed:
                left_label = f"{left_loc[0]}.{left_loc[1]}"
                right_label = f"{right_loc[0]}.{right_loc[1]}"
                if (
                    (left_label, right_label) in used_as_keys
                    or (right_label, left_label) in used_as_keys
                ):
                    continue
                residual_pairs.append(
                    (
                        composite.columns.index(left_label),
                        composite.columns.index(right_label),
                        op,
                    )
                )
            if residual_pairs:
                composite = Filter(composite, residual_pairs)
        return composite
