"""EXPLAIN: render a plan tree with the planner's cost estimates.

This is MiniRDBMS's analogue of Postgres ``EXPLAIN`` / DB2 ``db2expln`` —
the facility the paper's GDL algorithm consumes in its "RDBMS cost
estimation" mode. :func:`explain_text` is for humans;
:class:`ExplainResult` carries the numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.engine.operators import Operator
from repro.engine.planner import Plan


@dataclass
class ExplainResult:
    """Cost summary of a planned statement.

    ``nodes`` counts the physical operators in the plan (CTE sections —
    including planner-generated shared scans — plus the body); with
    shared-scan unions this is often far below one-pipeline-per-arm.
    ``workers`` is the degree of parallelism the statement executes at
    (and that its costs were discounted for).
    """

    total_cost: float
    est_rows: float
    text: str
    nodes: int = 0
    workers: int = 1


def _render(op: Operator, depth: int, lines: List[str]) -> int:
    indent = "  " * depth
    lines.append(
        f"{indent}{op.label()}  (rows={op.est_rows:.1f}, cost={op.cost:.1f})"
    )
    count = 1
    for child in op.children():
        count += _render(child, depth + 1, lines)
    return count


def explain_plan(plan: Plan, workers: int = 1) -> ExplainResult:
    """Render *plan* and collect its planner estimates."""
    lines: List[str] = []
    nodes = 0
    for name, materialize in plan.cte_plans:
        nodes += _render(materialize, 0, lines)
    nodes += _render(plan.body, 0, lines)
    lines.append(f"Total estimated cost: {plan.total_cost:.1f}")
    if workers > 1:
        lines.append(f"Degree of parallelism: {workers}")
    return ExplainResult(
        total_cost=plan.total_cost,
        est_rows=plan.est_rows,
        text="\n".join(lines),
        nodes=nodes,
        workers=workers,
    )
