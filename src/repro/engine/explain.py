"""EXPLAIN: render a plan tree with the planner's cost estimates.

This is MiniRDBMS's analogue of Postgres ``EXPLAIN`` / DB2 ``db2expln`` —
the facility the paper's GDL algorithm consumes in its "RDBMS cost
estimation" mode. :func:`explain_text` is for humans;
:class:`ExplainResult` carries the numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.engine.operators import Operator
from repro.engine.planner import Plan


@dataclass
class ExplainResult:
    """Cost summary of a planned statement.

    ``nodes`` counts the physical operators in the plan (CTE sections —
    including planner-generated shared scans — plus the body); with
    shared-scan unions this is often far below one-pipeline-per-arm.
    ``workers`` is the degree of parallelism the statement executes at
    (and that its costs were discounted for).

    For ``EXPLAIN ANALYZE`` (see :func:`explain_plan_analyzed`),
    ``actual_rows`` / ``actual_seconds`` carry the measured result size
    and wall time, and the text shows measured numbers per node next to
    the planner's estimates.
    """

    total_cost: float
    est_rows: float
    text: str
    nodes: int = 0
    workers: int = 1
    actual_rows: Optional[int] = None
    actual_seconds: Optional[float] = None


def _render(
    op: Operator,
    depth: int,
    lines: List[str],
    measurements: Optional[Dict[int, Dict]] = None,
) -> int:
    indent = "  " * depth
    line = f"{indent}{op.label()}  (rows={op.est_rows:.1f}, cost={op.cost:.1f})"
    if measurements is not None:
        measured = measurements.get(id(op))
        if measured is not None and measured["batches"]:
            line += (
                f"  [actual rows={measured['rows']}"
                f", batches={measured['batches']}"
                f", time={measured['seconds'] * 1000:.3f} ms]"
            )
        else:
            line += "  [actual rows=0 (never pulled)]"
    lines.append(line)
    count = 1
    for child in op.children():
        count += _render(child, depth + 1, lines, measurements)
    return count


def explain_plan(plan: Plan, workers: int = 1) -> ExplainResult:
    """Render *plan* and collect its planner estimates."""
    lines: List[str] = []
    nodes = 0
    for name, materialize in plan.cte_plans:
        nodes += _render(materialize, 0, lines)
    nodes += _render(plan.body, 0, lines)
    lines.append(f"Total estimated cost: {plan.total_cost:.1f}")
    if workers > 1:
        lines.append(f"Degree of parallelism: {workers}")
    return ExplainResult(
        total_cost=plan.total_cost,
        est_rows=plan.est_rows,
        text="\n".join(lines),
        nodes=nodes,
        workers=workers,
    )


def explain_plan_analyzed(
    plan: Plan,
    measurements: Dict[int, Dict],
    actual_rows: int,
    actual_seconds: float,
) -> ExplainResult:
    """Render *plan* with measured numbers next to the estimates.

    *measurements* maps ``id(operator)`` to the per-node counters
    collected by :func:`repro.engine.executor.execute_plan_analyzed`
    (``rows`` / ``batches`` / ``seconds``). Per-node time is *inclusive*
    production time — the wall time spent pulling that operator's
    batches, children included — matching the convention of Postgres
    ``EXPLAIN ANALYZE`` actual times. Nodes the execution never pulled
    (e.g. the pruned side of an empty join build) are marked instead of
    showing zeros that look like measurements.
    """
    lines: List[str] = []
    nodes = 0
    for name, materialize in plan.cte_plans:
        nodes += _render(materialize, 0, lines, measurements)
    nodes += _render(plan.body, 0, lines, measurements)
    lines.append(f"Total estimated cost: {plan.total_cost:.1f}")
    lines.append(
        f"Execution: {actual_rows} rows in {actual_seconds * 1000:.3f} ms"
        f" (estimated rows: {plan.est_rows:.1f})"
    )
    return ExplainResult(
        total_cost=plan.total_cost,
        est_rows=plan.est_rows,
        text="\n".join(lines),
        nodes=nodes,
        workers=1,
        actual_rows=actual_rows,
        actual_seconds=actual_seconds,
    )
