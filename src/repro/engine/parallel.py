"""Morsel-driven parallelism: the engine's worker pool and morsel math.

The vectorized engine's unit of data is the columnar batch; the unit of
*scheduling* is the **morsel** — a contiguous range of a pipeline
source's batches, small enough that the pool load-balances (a worker
that drew a cheap morsel pulls the next one) but large enough that
per-morsel bookkeeping stays negligible. One :class:`ParallelContext`
owns the engine's thread pool and decides how many morsels a pipeline is
split into; operators never talk to threads themselves — they only know
how to serve *partition ``i`` of ``n``* of their output (see
``batches_partitioned`` in :mod:`repro.engine.operators`).

**Determinism.** Partitions are contiguous slices merged back in
partition order, so a parallel execution yields exactly the serial
multiset for duplicate-preserving plans and exactly the serial set for
deduplicating plans, at any worker count. Tests pin this at workers
1/2/8.

**Honesty about CPython.** Workers are threads; under the GIL,
pure-Python pipeline work does not speed up wall-clock on any core
count (the structure exists, and pays off, for GIL-releasing storage
like SQLite and for free-threaded builds). :meth:`ParallelContext.learn`
back-solves the *observed* per-worker efficiency from a measured
speedup so the cost model's parallelism discount stays truthful instead
of assuming linear scaling.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, Tuple

#: Environment knob: default worker count for every engine instance that
#: is not given an explicit ``workers`` argument. ``1`` means serial.
WORKERS_ENV = "REPRO_WORKERS"

#: Environment knob: morsels handed to *each* worker per pipeline.
#: More morsels per worker = finer load balancing, more per-morsel
#: overhead.
MORSELS_ENV = "REPRO_MORSELS_PER_WORKER"

#: Default morsels per worker (4 keeps the pool busy when morsel costs
#: are skewed, e.g. a filter that matches only in one table region).
DEFAULT_MORSELS_PER_WORKER = 4

#: Environment knob: the minimum estimated work (planner cost units,
#: roughly rows touched) one morsel must carry.
MORSEL_SIZE_ENV = "REPRO_MORSEL_SIZE"

#: Default morsel size. Pipelines estimated below this run serially —
#: scheduling a pool task costs more than evaluating a tiny pipeline,
#: so parallelism is reserved for work that can amortize it.
DEFAULT_MORSEL_SIZE = 4096


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        return max(1, int(raw))
    except ValueError:
        return default


def slice_bounds(count: int, part: int, parts: int) -> Tuple[int, int]:
    """The contiguous ``[lo, hi)`` range partition *part* of *parts* owns.

    Distributes *count* items as evenly as possible (the first
    ``count % parts`` partitions get one extra item), preserving order:
    concatenating all partitions in index order reproduces ``range
    (count)`` exactly.
    """
    if parts <= 1:
        return (0, count) if part == 0 else (count, count)
    base, extra = divmod(count, parts)
    lo = part * base + min(part, extra)
    hi = lo + base + (1 if part < extra else 0)
    return lo, hi


class ParallelContext:
    """The engine's degree of parallelism plus its (lazy) thread pool.

    ``workers=1`` (the default, or ``REPRO_WORKERS`` unset) keeps every
    execution on the untouched serial path — no pool is ever created, no
    locks taken, no overhead paid. With ``workers>1`` pipelines are split
    into ``workers * morsels_per_worker`` morsels executed on a shared
    pool of ``workers`` threads.

    One context is meant to be shared by everything inside one
    :class:`~repro.engine.database.MiniRDBMS`: concurrent queries submit
    morsels to the same pool, so the machine-wide thread count stays
    bounded by ``workers`` regardless of serving concurrency.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        morsels_per_worker: Optional[int] = None,
        morsel_size: Optional[int] = None,
    ) -> None:
        if workers is None:
            workers = _env_int(WORKERS_ENV, 1)
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if morsels_per_worker is None:
            morsels_per_worker = _env_int(
                MORSELS_ENV, DEFAULT_MORSELS_PER_WORKER
            )
        if morsel_size is None:
            morsel_size = _env_int(MORSEL_SIZE_ENV, DEFAULT_MORSEL_SIZE)
        self.workers = workers
        self.morsels_per_worker = max(1, morsels_per_worker)
        self.morsel_size = max(1, morsel_size)
        #: The factor the cost model divided per-row costs by
        #: (``CostParameters.parallel_speedup()``). The owning engine
        #: keeps it in sync; ``partitions_for`` multiplies it back so
        #: morsel counts reflect actual work, not discounted cost —
        #: otherwise raising the worker count would shrink estimates
        #: and self-defeat the parallelism gate.
        self.cost_discount = 1.0
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_guard = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def parallel(self) -> bool:
        """Whether executions through this context are partitioned."""
        return self.workers > 1

    def partitions(self) -> int:
        """The maximum morsels one pipeline is split into."""
        if self.workers <= 1:
            return 1
        return self.workers * self.morsels_per_worker

    def partitions_for(self, estimated_work: float) -> int:
        """How many morsels a pipeline of *estimated_work* gets.

        *estimated_work* is the pipeline root's cumulative planner cost
        (cost units are roughly rows touched), which the cost model has
        already discounted by :attr:`cost_discount` — undone here, so
        the gate sees actual work. Each morsel must carry at least
        :attr:`morsel_size` units — a pipeline estimated below one
        morsel runs serially, because scheduling pool tasks would cost
        more than the pipeline itself; larger pipelines are capped at
        :meth:`partitions` morsels.
        """
        if self.workers <= 1:
            return 1
        work = estimated_work * self.cost_discount
        by_work = int(work // self.morsel_size) + 1
        return max(1, min(self.partitions(), by_work))

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_guard:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="repro-engine",
                )
            return self._pool

    def map_partitions(
        self, task: Callable[[int], object], parts: int
    ) -> List[object]:
        """Run ``task(0) .. task(parts-1)`` on the pool, results in order.

        The pool has ``workers`` threads, so with ``parts > workers`` the
        excess morsels queue — which is exactly the morsel-driven load
        balancing: a worker finishing a cheap morsel immediately draws
        the next. Exceptions propagate to the caller.
        """
        if parts <= 1 or self.workers <= 1:
            return [task(part) for part in range(parts)]
        pool = self._ensure_pool()
        return list(pool.map(task, range(parts)))

    # ------------------------------------------------------------------
    def learn(self, observed_speedup: float) -> float:
        """Back-solve per-worker efficiency from a measured speedup.

        ``observed_speedup`` is wall-clock serial time divided by
        parallel time at this context's worker count. Returns the
        efficiency in ``[0, 1]`` such that ``1 + eff * (workers - 1)``
        reproduces the observation — the value the cost model's
        parallelism discount should use (see
        :meth:`repro.engine.operators.CostParameters.parallel_speedup`).
        """
        if self.workers <= 1:
            return 0.0
        efficiency = (observed_speedup - 1.0) / (self.workers - 1)
        return max(0.0, min(1.0, efficiency))

    def close(self) -> None:
        """Shut the pool down (idempotent; safe with work in flight)."""
        with self._pool_guard:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)


def aggregate_worker_counters(
    per_partition: Sequence[Tuple[str, int, int]],
) -> List[dict]:
    """Fold per-morsel ``(worker name, batches, rows)`` triples into the
    per-worker counter dicts :class:`~repro.engine.executor.
    ExecutionStats` reports."""
    by_worker: dict = {}
    for worker, batches, rows in per_partition:
        entry = by_worker.setdefault(
            worker, {"worker": worker, "morsels": 0, "batches": 0, "rows": 0}
        )
        entry["morsels"] += 1
        entry["batches"] += batches
        entry["rows"] += rows
    return [by_worker[name] for name in sorted(by_worker)]
