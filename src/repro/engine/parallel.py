"""Execution substrates and morsel-driven parallelism.

Two orthogonal ideas live here:

* The **substrate** — *what* carries concurrent work: an
  :class:`ExecutorBackend` with three interchangeable implementations:
  ``serial`` (inline, no pool), ``thread`` (a shared
  :class:`~concurrent.futures.ThreadPoolExecutor`) and ``process``
  (long-lived per-shard engine worker processes — hosted by
  :mod:`repro.storage.process_workers`, selected here). The substrate is
  chosen per component via the ``REPRO_EXECUTOR`` environment knob or a
  constructor argument; ``auto`` prefers threads only on a free-threaded
  CPython (``sys._is_gil_enabled()`` false) — on a stock-GIL build,
  threads cannot run pure-Python pipelines in parallel, so components
  that *can* cross a process boundary (sharded scatter) prefer the
  process substrate instead.
* The **morsel** — *how* one pipeline is split: a contiguous range of a
  pipeline source's batches, small enough that the pool load-balances
  (a worker that drew a cheap morsel pulls the next one) but large
  enough that per-morsel bookkeeping stays negligible. One
  :class:`ParallelContext` owns the engine's executor and decides how
  many morsels a pipeline is split into; operators never talk to the
  substrate themselves — they only know how to serve *partition ``i``
  of ``n``* of their output (see ``batches_partitioned`` in
  :mod:`repro.engine.operators`).

**Determinism.** Partitions are contiguous slices merged back in
partition order, so a parallel execution yields exactly the serial
multiset for duplicate-preserving plans and exactly the serial set for
deduplicating plans, at any worker count and on any substrate. Tests
pin this at workers 1/2/8 and across substrates.

**Honesty about CPython.** Engine morsels share one address space, so
their substrate is a thread pool (or inline serial execution); under
the GIL, pure-Python pipeline work does not speed up wall-clock on any
core count. The structure exists, and pays off, for GIL-releasing
storage, for free-threaded builds — and for the *process* substrate,
where each shard's engine runs in its own interpreter and scatter work
truly parallelizes. :meth:`ParallelContext.learn` back-solves the
*observed* per-worker efficiency from a measured speedup — recorded
**per substrate**, so a GIL-bound thread measurement can never poison
the process substrate's cost estimates (or vice versa).
"""

from __future__ import annotations

import os
import sys
import threading
import time
from abc import ABC, abstractmethod
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import get_registry

#: Environment knob: default worker count for every engine instance that
#: is not given an explicit ``workers`` argument. ``1`` means serial.
WORKERS_ENV = "REPRO_WORKERS"

#: Environment knob: the execution substrate (``auto`` / ``serial`` /
#: ``thread`` / ``process``) for every component not given an explicit
#: ``substrate`` argument. ``auto`` (the default) prefers threads only
#: on free-threaded CPython; components that can cross a process
#: boundary prefer ``process`` on stock-GIL builds with more than one
#: CPU.
EXECUTOR_ENV = "REPRO_EXECUTOR"

#: The recognised substrate names (``auto`` resolves to one of the
#: other three per component).
SUBSTRATES = ("auto", "serial", "thread", "process")

#: Environment knob: morsels handed to *each* worker per pipeline.
#: More morsels per worker = finer load balancing, more per-morsel
#: overhead.
MORSELS_ENV = "REPRO_MORSELS_PER_WORKER"

#: Default morsels per worker (4 keeps the pool busy when morsel costs
#: are skewed, e.g. a filter that matches only in one table region).
DEFAULT_MORSELS_PER_WORKER = 4

#: Environment knob: the minimum estimated work (planner cost units,
#: roughly rows touched) one morsel must carry.
MORSEL_SIZE_ENV = "REPRO_MORSEL_SIZE"

#: Default morsel size. Pipelines estimated below this run serially —
#: scheduling a pool task costs more than evaluating a tiny pipeline,
#: so parallelism is reserved for work that can amortize it.
DEFAULT_MORSEL_SIZE = 4096


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        return max(1, int(raw))
    except ValueError:
        return default


def env_float(name: str, default: float) -> float:
    """A non-negative float environment knob (malformed values fall back
    to *default* — a typo'd knob must never take the system down)."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        return max(0.0, float(raw))
    except ValueError:
        return default


class Backoff:
    """A deterministic exponential backoff schedule.

    ``delay(attempt)`` is ``initial * factor**attempt`` capped at *cap*
    — deliberately jitter-free: retry timing feeds the fault-injection
    harness (:mod:`repro.faults`), where a failing chaos run must replay
    identically. The shard workers backing off are per-shard singletons,
    not a thundering herd, so jitter buys nothing here.
    """

    def __init__(
        self, initial: float = 0.05, factor: float = 2.0, cap: float = 1.0
    ) -> None:
        if initial < 0 or factor < 1 or cap < 0:
            raise ValueError("backoff wants initial >= 0, factor >= 1, cap >= 0")
        self.initial = initial
        self.factor = factor
        self.cap = cap

    def delay(self, attempt: int) -> float:
        """The sleep before retry *attempt* (0-based), in seconds."""
        return min(self.cap, self.initial * self.factor ** max(0, attempt))

    def sleep(self, attempt: int, sleeper: Callable[[float], None] = None) -> None:
        """Sleep out retry *attempt*'s delay (injectable for tests)."""
        seconds = self.delay(attempt)
        if seconds > 0:
            (sleeper or time.sleep)(seconds)


def gil_enabled() -> bool:
    """Whether this interpreter serializes Python bytecode on a GIL.

    ``True`` on every stock CPython; ``False`` only on a free-threaded
    build actually running with the GIL disabled (``sys.
    _is_gil_enabled()`` exists from 3.13 and reports the runtime state).
    """
    probe = getattr(sys, "_is_gil_enabled", None)
    return True if probe is None else bool(probe())


def process_substrate_available() -> bool:
    """Whether per-shard worker processes can be hosted here.

    The process substrate forks long-lived workers (the ``fork`` start
    method keeps worker startup at milliseconds and lets arbitrary
    child factories cross the boundary without pickling); platforms
    without it fall back to the thread substrate.
    """
    try:
        import multiprocessing

        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - exotic platforms
        return False


def substrate_from_env() -> str:
    """The ``REPRO_EXECUTOR`` value (validated; unset/garbage = auto)."""
    raw = os.environ.get(EXECUTOR_ENV, "auto").strip().lower()
    return raw if raw in SUBSTRATES else "auto"


def resolve_substrate(
    substrate: Optional[str] = None, prefer_processes: bool = False
) -> str:
    """Resolve a requested substrate to a concrete one.

    *substrate* ``None`` reads ``REPRO_EXECUTOR``; ``auto`` detects:
    threads on free-threaded CPython (they genuinely parallelize
    there), otherwise — for components that set *prefer_processes*,
    i.e. can cross a process boundary — the process substrate when the
    platform supports it and more than one CPU exists. Everything else
    resolves to ``thread``. An explicit ``process`` request degrades to
    ``thread`` where worker processes cannot be hosted.
    """
    requested = substrate if substrate is not None else substrate_from_env()
    if requested not in SUBSTRATES:
        raise ValueError(
            f"unknown execution substrate {requested!r}; "
            f"expected one of {SUBSTRATES}"
        )
    if requested == "auto":
        if not gil_enabled():
            return "thread"
        if (
            prefer_processes
            and process_substrate_available()
            and (os.cpu_count() or 1) > 1
        ):
            return "process"
        return "thread"
    if requested == "process" and not process_substrate_available():
        return "thread"
    return requested


def slice_bounds(count: int, part: int, parts: int) -> Tuple[int, int]:
    """The contiguous ``[lo, hi)`` range partition *part* of *parts* owns.

    Distributes *count* items as evenly as possible (the first
    ``count % parts`` partitions get one extra item), preserving order:
    concatenating all partitions in index order reproduces ``range
    (count)`` exactly.
    """
    if parts <= 1:
        return (0, count) if part == 0 else (count, count)
    base, extra = divmod(count, parts)
    lo = part * base + min(part, extra)
    hi = lo + base + (1 if part < extra else 0)
    return lo, hi


class ExecutorBackend(ABC):
    """The pluggable fan-out substrate: run ``task(0..parts-1)``.

    Implementations differ in *where* the tasks run — inline
    (:class:`SerialExecutor`), on a shared thread pool
    (:class:`ThreadExecutor`), or as dispatch legs to long-lived worker
    processes (the process substrate's coordinator side, which wraps a
    thread pool whose tasks block on worker IPC with the GIL released).
    """

    #: The substrate name this backend implements.
    kind: str = "serial"

    @property
    @abstractmethod
    def parallel(self) -> bool:
        """Whether tasks handed to this backend can overlap in time."""

    @abstractmethod
    def map_partitions(
        self, task: Callable[[int], object], parts: int
    ) -> List[object]:
        """Run ``task(0) .. task(parts-1)``, results in partition order."""

    def close(self) -> None:
        """Release pools/processes (idempotent; default no-op)."""


class SerialExecutor(ExecutorBackend):
    """The inline substrate: tasks run one after another, no pool.

    Structurally identical to pre-parallelism execution — no locks, no
    scheduling, no merge overhead — and therefore the reference any
    other substrate's answers are pinned against.
    """

    kind = "serial"

    @property
    def parallel(self) -> bool:
        """Always ``False`` — tasks never overlap."""
        return False

    def map_partitions(
        self, task: Callable[[int], object], parts: int
    ) -> List[object]:
        """Run every partition inline, in order."""
        return [task(part) for part in range(parts)]


class ThreadExecutor(ExecutorBackend):
    """The thread substrate: a lazily created, shared pool.

    ``workers`` bounds the pool; excess partitions queue — which is
    exactly the morsel-driven load balancing: a worker finishing a
    cheap task immediately draws the next.
    """

    kind = "thread"

    def __init__(self, workers: int, name_prefix: str = "repro-engine") -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = workers
        self._name_prefix = name_prefix
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_guard = threading.Lock()

    @property
    def parallel(self) -> bool:
        """True above one worker (one worker degenerates to serial)."""
        return self.workers > 1

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_guard:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix=self._name_prefix,
                )
            return self._pool

    def map_partitions(
        self, task: Callable[[int], object], parts: int
    ) -> List[object]:
        """Run the partitions on the pool, results in partition order."""
        if parts <= 1 or self.workers <= 1:
            return [task(part) for part in range(parts)]
        return list(self._ensure_pool().map(task, range(parts)))

    def close(self) -> None:
        """Shut the pool down (idempotent; safe with work in flight)."""
        with self._pool_guard:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)


class ParallelContext:
    """The engine's degree of parallelism plus its execution substrate.

    ``workers=1`` (the default, or ``REPRO_WORKERS`` unset) keeps every
    execution on the untouched serial path — no pool is ever created, no
    locks taken, no overhead paid. With ``workers>1`` pipelines are split
    into ``workers * morsels_per_worker`` morsels executed on the
    context's :class:`ExecutorBackend`.

    ``substrate`` picks that backend (default: ``REPRO_EXECUTOR``, else
    auto-detection). Engine morsels exchange in-memory columnar batches
    and therefore run on the ``serial`` or ``thread`` substrate; a
    ``process`` request here resolves to ``thread`` — the process
    substrate applies at the shard boundary, where
    :class:`~repro.storage.sharded_backend.ShardedBackend` hosts one
    engine worker per shard (this context then carries the *dispatch*
    legs, whose threads block on worker IPC with the GIL released).

    One context is meant to be shared by everything inside one
    :class:`~repro.engine.database.MiniRDBMS`: concurrent queries submit
    morsels to the same substrate, so the machine-wide thread count
    stays bounded by ``workers`` regardless of serving concurrency.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        morsels_per_worker: Optional[int] = None,
        morsel_size: Optional[int] = None,
        substrate: Optional[str] = None,
    ) -> None:
        if workers is None:
            workers = _env_int(WORKERS_ENV, 1)
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if morsels_per_worker is None:
            morsels_per_worker = _env_int(
                MORSELS_ENV, DEFAULT_MORSELS_PER_WORKER
            )
        if morsel_size is None:
            morsel_size = _env_int(MORSEL_SIZE_ENV, DEFAULT_MORSEL_SIZE)
        self.workers = workers
        self.morsels_per_worker = max(1, morsels_per_worker)
        self.morsel_size = max(1, morsel_size)
        resolved = resolve_substrate(substrate, prefer_processes=False)
        if resolved == "process":
            # Morsels share one address space; the process substrate
            # lives at the shard boundary. Dispatch legs are threads.
            resolved = "thread"
        if workers <= 1:
            resolved = "serial"
        #: The resolved substrate this context schedules on
        #: (``"serial"`` or ``"thread"``).
        self.substrate = resolved
        get_registry().inc(f"repro.executor.substrate.{resolved}")
        self._executor: ExecutorBackend = (
            ThreadExecutor(workers) if resolved == "thread" else SerialExecutor()
        )
        #: Learned per-worker efficiencies, keyed by substrate name —
        #: a thread-mode (GIL-bound) measurement never overwrites a
        #: process-mode one. See :meth:`learn`.
        self.efficiency_by_substrate: Dict[str, float] = {}
        #: The factor the cost model divided per-row costs by
        #: (``CostParameters.parallel_speedup()``). The owning engine
        #: keeps it in sync; ``partitions_for`` multiplies it back so
        #: morsel counts reflect actual work, not discounted cost —
        #: otherwise raising the worker count would shrink estimates
        #: and self-defeat the parallelism gate.
        self.cost_discount = 1.0

    # ------------------------------------------------------------------
    @property
    def parallel(self) -> bool:
        """Whether executions through this context are partitioned."""
        return self.workers > 1 and self._executor.parallel

    @property
    def executor(self) -> ExecutorBackend:
        """The substrate tasks are scheduled on."""
        return self._executor

    def partitions(self) -> int:
        """The maximum morsels one pipeline is split into."""
        if not self.parallel:
            return 1
        return self.workers * self.morsels_per_worker

    def partitions_for(self, estimated_work: float) -> int:
        """How many morsels a pipeline of *estimated_work* gets.

        *estimated_work* is the pipeline root's cumulative planner cost
        (cost units are roughly rows touched), which the cost model has
        already discounted by :attr:`cost_discount` — undone here, so
        the gate sees actual work. Each morsel must carry at least
        :attr:`morsel_size` units — a pipeline estimated below one
        morsel runs serially, because scheduling pool tasks would cost
        more than the pipeline itself; larger pipelines are capped at
        :meth:`partitions` morsels.
        """
        if not self.parallel:
            return 1
        work = estimated_work * self.cost_discount
        by_work = int(work // self.morsel_size) + 1
        return max(1, min(self.partitions(), by_work))

    def map_partitions(
        self, task: Callable[[int], object], parts: int
    ) -> List[object]:
        """Run ``task(0) .. task(parts-1)`` on the substrate, in order.

        Exceptions propagate to the caller. With one partition (or a
        serial substrate and excess partitions queueing pointless) the
        tasks run inline.
        """
        if parts <= 1 or not self.parallel:
            return [task(part) for part in range(parts)]
        return self._executor.map_partitions(task, parts)

    # ------------------------------------------------------------------
    def learn(
        self, observed_speedup: float, substrate: Optional[str] = None
    ) -> float:
        """Back-solve per-worker efficiency from a measured speedup.

        ``observed_speedup`` is wall-clock serial time divided by
        parallel time at this context's worker count. Returns the
        efficiency in ``[0, 1]`` such that ``1 + eff * (workers - 1)``
        reproduces the observation — the value the cost model's
        parallelism discount should use (see
        :meth:`repro.engine.operators.CostParameters.parallel_speedup`).

        The efficiency is recorded in :attr:`efficiency_by_substrate`
        under *substrate* (default: this context's own substrate), so
        measurements taken on different substrates never overwrite each
        other — a GIL-bound thread run learning ~0 must not zero the
        process substrate's near-linear estimate.
        """
        if self.workers <= 1:
            return 0.0
        efficiency = (observed_speedup - 1.0) / (self.workers - 1)
        efficiency = max(0.0, min(1.0, efficiency))
        self.efficiency_by_substrate[substrate or self.substrate] = efficiency
        return efficiency

    def close(self) -> None:
        """Shut the substrate down (idempotent; safe with work in flight)."""
        self._executor.close()


def aggregate_worker_counters(
    per_partition: Sequence[Tuple[str, int, int]],
) -> List[dict]:
    """Fold per-morsel ``(worker name, batches, rows)`` triples into the
    per-worker counter dicts :class:`~repro.engine.executor.
    ExecutionStats` reports."""
    by_worker: dict = {}
    for worker, batches, rows in per_partition:
        entry = by_worker.setdefault(
            worker, {"worker": worker, "morsels": 0, "batches": 0, "rows": 0}
        )
        entry["morsels"] += 1
        entry["batches"] += batches
        entry["rows"] += rows
    return [by_worker[name] for name in sorted(by_worker)]
