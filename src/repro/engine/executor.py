"""Plan execution: materialize CTEs in order, then pull the body.

The context maps each materialized CTE (user CTEs and planner-generated
shared scans alike) to its list of **columnar batches**; the body's
batches are flattened to row tuples only at the very end.

With a :class:`~repro.engine.parallel.ParallelContext` of more than one
worker, each root pipeline (every CTE materialization, then the body)
runs **morsel-driven**: the root's ``prepare`` barrier builds shared
hash tables and interior dedup results, the pipeline is split into
contiguous morsels executed on the worker pool, and the morsel outputs
are merged back in partition order — through a global seen-set when the
pipeline's root deduplicates (per-worker dedup partials merged at the
breaker), by plain concatenation otherwise. Answers are therefore
identical to serial execution at any worker count: the same multiset
for duplicate-preserving plans, the same set for deduplicating ones.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.engine.operators import (
    Batch,
    Distinct,
    Materialize,
    Operator,
    Union,
    _dedup_batches,
)
from repro.engine.parallel import ParallelContext, aggregate_worker_counters
from repro.engine.planner import Plan

Row = Tuple


@dataclass
class ExecutionStats:
    """Counters from one plan execution (benchmark telemetry).

    ``workers`` / ``morsels`` / ``per_worker`` are filled only by
    parallel executions: ``per_worker`` holds one dict per pool thread
    that actually ran a morsel (``worker``, ``morsels``, ``batches``,
    ``rows`` — counted before the final merge).
    """

    batches: int = 0
    rows: int = 0
    materialized_ctes: int = 0
    workers: int = 1
    morsels: int = 0
    per_worker: List[Dict] = field(default_factory=list)


def _root_dedups(root: Operator) -> bool:
    """Whether *root*'s partition streams need a cross-partition dedup.

    True when the pipeline root (unwrapping transparent Materialize
    nodes) is a deduplicating operator: its partitions are per-worker
    locally-deduped partials, and rows surviving in two partitions must
    be merged through one global seen-set.
    """
    while isinstance(root, Materialize):
        root = root.child
    if isinstance(root, Distinct):
        return True
    return isinstance(root, Union) and not root.all_rows


def _run_root_parallel(
    root: Operator,
    context: Dict,
    parallel: ParallelContext,
    counters: List[Tuple[str, int, int]],
) -> List[Batch]:
    """Execute one root pipeline across the worker pool; merged batches.

    The morsel count is proportional to the root's estimated work
    (``partitions_for``): a pipeline smaller than one morsel runs
    serially — per-task scheduling would dwarf it — so cheap CTEs in a
    plan full of them cost nothing extra while heavy pipelines fan out.
    """
    parts = parallel.partitions_for(root.cost)
    if parts <= 1:
        return list(root.batches(context))
    root.prepare(context, parallel, parts, top=True)

    def morsel(part: int) -> Tuple[str, List[Batch], int]:
        out = list(root.batches_partitioned(context, part, parts))
        produced = sum(len(batch[0]) for batch in out)
        return (threading.current_thread().name, out, produced)

    results = parallel.map_partitions(morsel, parts)
    for worker, out, produced in results:
        counters.append((worker, len(out), produced))
    if _root_dedups(root):
        return list(
            _dedup_batches(
                (batch for _, out, _ in results for batch in out), set()
            )
        )
    return [batch for _, out, _ in results for batch in out]


def execute_plan(
    plan: Plan,
    stats: Optional[ExecutionStats] = None,
    parallel: Optional[ParallelContext] = None,
) -> List[Row]:
    """Run *plan*: CTEs are materialized once, the body streams over them.

    Pass a multi-worker *parallel* context for morsel-driven execution;
    with ``parallel=None`` (or one worker) this is the unchanged serial
    path — no pool, no partitioning, no merge overhead.
    """
    if parallel is not None and parallel.parallel:
        return _execute_plan_parallel(plan, stats, parallel)
    context: Dict[str, List[Batch]] = {}
    for name, materialize in plan.cte_plans:
        batches = list(materialize.batches(context))
        context[name] = batches
        if stats is not None:
            stats.batches += len(batches)
            stats.materialized_ctes += 1
    out: List[Row] = []
    if stats is not None:
        for batch in plan.body.batches(context):
            stats.batches += 1
            out.extend(zip(*batch))
        stats.rows = len(out)
    else:
        for batch in plan.body.batches(context):
            out.extend(zip(*batch))
    return out


def _execute_plan_parallel(
    plan: Plan,
    stats: Optional[ExecutionStats],
    parallel: ParallelContext,
) -> List[Row]:
    """The morsel-driven execution path (two or more workers)."""
    body_batches = _body_batches_parallel(plan, stats, parallel)
    out: List[Row] = []
    for batch in body_batches:
        out.extend(zip(*batch))
    if stats is not None:
        stats.rows = len(out)
    return out


def _body_batches_parallel(
    plan: Plan,
    stats: Optional[ExecutionStats],
    parallel: ParallelContext,
) -> List[Batch]:
    """Materialize CTEs and collect the body's merged batches (the
    shared core of the row-tuple and columnar parallel paths)."""
    context: Dict = {}
    counters: List[Tuple[str, int, int]] = []
    for name, materialize in plan.cte_plans:
        batches = _run_root_parallel(materialize, context, parallel, counters)
        context[name] = batches
        if stats is not None:
            stats.batches += len(batches)
            stats.materialized_ctes += 1
    body_batches = _run_root_parallel(plan.body, context, parallel, counters)
    if stats is not None:
        stats.batches += len(body_batches)
        stats.workers = parallel.workers
        stats.morsels = len(counters)
        stats.per_worker = aggregate_worker_counters(counters)
    return body_batches


def _instrument_operator(op: Operator, measurements: Dict[int, Dict]) -> None:
    """Shadow *op*'s ``batches`` with a timing wrapper (instance patch).

    The wrapper measures inclusive production time: the wall clock spent
    between asking this operator for a batch and receiving it, children
    included — summed over every pull. Counters accumulate in
    *measurements* under ``id(op)``. The patch is an instance attribute
    shadowing the class method, so it must only ever be applied to a
    **privately planned** tree (never one from the shared statement
    cache — see :meth:`repro.engine.database.MiniRDBMS.explain_analyze`).
    """
    record = measurements.setdefault(
        id(op), {"rows": 0, "batches": 0, "seconds": 0.0}
    )
    inner = op.batches  # the bound class method, captured pre-patch

    def timed(context):
        started = time.perf_counter()
        iterator = inner(context)
        while True:
            try:
                batch = next(iterator)
            except StopIteration:
                record["seconds"] += time.perf_counter() - started
                return
            record["seconds"] += time.perf_counter() - started
            record["batches"] += 1
            record["rows"] += len(batch[0]) if batch else 0
            yield batch
            started = time.perf_counter()

    op.batches = timed


def _walk_operators(op: Operator, seen: set) -> List[Operator]:
    """Every distinct operator reachable from *op* (shared nodes once)."""
    if id(op) in seen:
        return []
    seen.add(id(op))
    out = [op]
    for child in op.children():
        out.extend(_walk_operators(child, seen))
    return out


def execute_plan_analyzed(
    plan: Plan,
) -> Tuple[List[Row], Dict[int, Dict]]:
    """Run *plan* serially with per-operator instrumentation.

    Returns ``(rows, measurements)`` where *measurements* maps
    ``id(operator)`` to ``{"rows", "batches", "seconds"}`` — the inputs
    :func:`repro.engine.explain.explain_plan_analyzed` renders next to
    the planner's estimates. Always serial: per-morsel fan-out would
    interleave several workers' pulls through one shared wrapper and
    make per-node times meaningless. Answers are identical to
    :func:`execute_plan` (the wrapper re-yields batches untouched).
    """
    measurements: Dict[int, Dict] = {}
    seen: set = set()
    for _name, materialize in plan.cte_plans:
        for op in _walk_operators(materialize, seen):
            _instrument_operator(op, measurements)
    for op in _walk_operators(plan.body, seen):
        _instrument_operator(op, measurements)
    context: Dict[str, List[Batch]] = {}
    for name, materialize in plan.cte_plans:
        context[name] = list(materialize.batches(context))
    out: List[Row] = []
    for batch in plan.body.batches(context):
        out.extend(zip(*batch))
    return out, measurements


def execute_plan_columns(
    plan: Plan,
    stats: Optional[ExecutionStats] = None,
    parallel: Optional[ParallelContext] = None,
) -> Tuple[int, List[List]]:
    """Run *plan* and return ``(nrows, columns)`` — no row tuples built.

    The columnar twin of :func:`execute_plan` for callers that want the
    result in column vectors (the process substrate's shared-memory
    wire format is per-column, so a shard worker answering through this
    skips materializing ``nrows`` tuples only to transpose them again).
    Column order and intra-column order match :func:`execute_plan`
    exactly; an empty result is ``(0, [])``.
    """
    if parallel is not None and parallel.parallel:
        body_batches = _body_batches_parallel(plan, stats, parallel)
    else:
        context: Dict[str, List[Batch]] = {}
        for name, materialize in plan.cte_plans:
            batches = list(materialize.batches(context))
            context[name] = batches
            if stats is not None:
                stats.batches += len(batches)
                stats.materialized_ctes += 1
        body_batches = list(plan.body.batches(context))
        if stats is not None:
            stats.batches += len(body_batches)
    body_batches = [batch for batch in body_batches if len(batch[0])]
    if not body_batches:
        if stats is not None:
            stats.rows = 0
        return 0, []
    width = len(body_batches[0])
    columns: List[List] = []
    for position in range(width):
        column: List = []
        for batch in body_batches:
            column.extend(batch[position])
        columns.append(column)
    nrows = len(columns[0]) if columns else 0
    if stats is not None:
        stats.rows = nrows
    return nrows, columns
