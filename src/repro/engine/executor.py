"""Plan execution: materialize CTEs in order, then pull the body.

The context maps each materialized CTE (user CTEs and planner-generated
shared scans alike) to its list of **columnar batches**; the body's
batches are flattened to row tuples only at the very end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.engine.operators import Batch
from repro.engine.planner import Plan

Row = Tuple


@dataclass
class ExecutionStats:
    """Counters from one plan execution (benchmark telemetry)."""

    batches: int = 0
    rows: int = 0
    materialized_ctes: int = 0


def execute_plan(plan: Plan, stats: Optional[ExecutionStats] = None) -> List[Row]:
    """Run *plan*: CTEs are materialized once, the body streams over them."""
    context: Dict[str, List[Batch]] = {}
    for name, materialize in plan.cte_plans:
        batches = list(materialize.batches(context))
        context[name] = batches
        if stats is not None:
            stats.batches += len(batches)
            stats.materialized_ctes += 1
    out: List[Row] = []
    if stats is not None:
        for batch in plan.body.batches(context):
            stats.batches += 1
            out.extend(zip(*batch))
        stats.rows = len(out)
    else:
        for batch in plan.body.batches(context):
            out.extend(zip(*batch))
    return out
