"""Plan execution: materialize CTEs in order, then pull the body."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.engine.planner import Plan

Row = Tuple


def execute_plan(plan: Plan) -> List[Row]:
    """Run *plan*: CTEs are materialized once, the body streams over them."""
    context: Dict[str, List[Row]] = {}
    for name, materialize in plan.cte_plans:
        context[name] = list(materialize.rows(context))
    return list(plan.body.rows(context))
