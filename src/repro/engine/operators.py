"""Physical operators: vectorized (batch-at-a-time) with cost annotations.

Operators exchange **columnar batches** — sequences of per-column value
sequences, all of equal length (``batch_size`` rows from a scan; joins
and filters emit whatever survives) — instead of single rows. Filters
compute selection vectors with list comprehensions, hash joins
build/probe whole columns at a time, and dedup zips a batch back to row
tuples once instead of pulling rows through a generator chain. Empty
batches are never emitted.

Every operator exposes:

* ``columns`` — qualified output column labels (``alias.column``);
* ``est_rows`` / ``est_ndv`` / ``cost`` — the planner's estimates
  (cumulative cost includes the children);
* ``batches(context)`` — the executed batch iterator; ``context`` maps a
  materialized CTE name to its list of batches;
* ``rows(context)`` — compatibility wrapper flattening the batches.

**Morsel-driven parallel execution** adds two methods, driven by the
executor (see :mod:`repro.engine.parallel` for the worker pool):

* ``prepare(context, parallel, parts)`` — the pre-pipeline barrier:
  hash joins build their shared hash table once (from per-worker partial
  tables merged in partition order), cross joins materialize their inner
  side, and *interior* deduplicating operators (a DISTINCT feeding a
  duplicate-preserving parent) materialize their exact output. Shared
  state lives in the per-execution ``context`` under ``id``-based keys,
  never on the operator — plans are cached and executed concurrently.
* ``batches_partitioned(context, part, parts)`` — partition ``part`` of
  the operator's output. Sources slice contiguously; stateless operators
  delegate to their child's partition; hash joins stream their partition
  of the probe side through the shared build; dedup operators dedup
  locally per partition (the executor or an interior barrier merges the
  per-worker seen-sets). Concatenating all partitions in order equals
  the serial output exactly — as a multiset below any dedup, as a set at
  deduplicating roots.

Cost constants live in :class:`CostParameters` so backends can be
calibrated (Section 6.1 of the paper calibrates "a few constant
coefficients" per system); its parallelism fields discount per-row work
by the engine's *measured* (not assumed-linear) parallel speedup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.engine.parallel import ParallelContext, slice_bounds
from repro.engine.relation import Index, Table

Row = Tuple
#: A columnar batch: one sequence of values per column, equal lengths.
Batch = Sequence[Sequence]
#: Execution context: materialized CTE name -> list of batches, plus
#: ``("_build" | "_cross" | "_breaker", id(op))`` keys for the shared
#: state ``prepare`` sets up under parallel execution.
Context = Dict[object, object]


@dataclass
class CostParameters:
    """Calibration constants for the engine's cost model."""

    seq_scan_per_row: float = 1.0
    index_probe: float = 0.02
    #: Per-result-row cost of an index lookup (cheaper than scan output:
    #: matching rows come straight out of a hash bucket).
    index_probe_per_row: float = 0.05
    hash_build_per_row: float = 1.2
    hash_probe_per_row: float = 1.0
    output_per_row: float = 0.4
    dedup_per_row: float = 1.1
    materialize_per_row: float = 0.8
    cross_join_penalty: float = 8.0
    #: Rows per columnar batch (execution tuning, not a cost).
    batch_size: int = 1024
    #: Degree of parallelism the costed engine runs pipelines at.
    workers: int = 1
    #: Fraction of linear scaling one extra worker actually delivers
    #: (morsel scheduling, merge barriers and — on CPython — the GIL make
    #: this well below 1; calibrate with ``ParallelContext.learn``).
    parallel_efficiency: float = 0.7
    #: The execution substrate :attr:`parallel_efficiency` was measured
    #: on (``serial`` / ``thread`` / ``process``). Substrate-keyed
    #: calibration (``MiniRDBMS.learn_parallel_efficiency``) only
    #: applies measurements matching the engine's live substrate, so a
    #: GIL-bound thread figure never prices process-substrate scatter.
    substrate: str = "thread"

    def parallel_speedup(self) -> float:
        """The factor per-row pipeline work is discounted by.

        ``1 + efficiency * (workers - 1)`` — Amdahl-style with a learned
        per-worker efficiency; exactly 1.0 at one worker, so serial
        costing is untouched.
        """
        if self.workers <= 1:
            return 1.0
        return max(1.0, 1.0 + self.parallel_efficiency * (self.workers - 1))


DEFAULT_COSTS = CostParameters()


def _gather(batch: Batch, selection: List[int]) -> List[List]:
    """Select *selection* positions out of every column of *batch*."""
    return [[column[i] for i in selection] for column in batch]


def _chunked(rows: List[Row], batch_size: int) -> Iterator[Batch]:
    """Transpose a row list into columnar batches."""
    for start in range(0, len(rows), batch_size):
        chunk = rows[start : start + batch_size]
        if chunk:
            yield tuple(zip(*chunk))


class Operator:
    """Base class for physical operators."""

    columns: List[str]
    est_rows: float
    est_ndv: Dict[str, float]
    cost: float

    def batches(self, context: Context) -> Iterator[Batch]:
        raise NotImplementedError

    def rows(self, context: Context) -> Iterator[Row]:
        """Row-at-a-time view of :meth:`batches` (compatibility)."""
        for batch in self.batches(context):
            yield from zip(*batch)

    def children(self) -> Sequence["Operator"]:
        return ()

    def label(self) -> str:
        """One-line description for EXPLAIN output."""
        return type(self).__name__

    # -- morsel-driven execution ---------------------------------------
    def prepare(
        self,
        context: Context,
        parallel: ParallelContext,
        parts: int,
        top: bool = False,
    ) -> None:
        """Set up shared per-execution state before partitioned streaming.

        Runs in the coordinating thread, once per pipeline, *before* any
        ``batches_partitioned`` morsel is scheduled — the pipeline
        barrier. ``top`` marks the root of the parallel section: a
        deduplicating root streams per-worker partials for the executor
        to merge instead of materializing itself (see :class:`Distinct`
        / :class:`Union`). The default recurses into the children.
        """
        for child in self.children():
            child.prepare(context, parallel, parts)

    def batches_partitioned(
        self, context: Context, part: int, parts: int
    ) -> Iterator[Batch]:
        """Partition *part* (of *parts*) of this operator's output.

        The base fallback serves the entire serial output as partition 0
        — correct for any operator, parallel for none; every shipped
        operator overrides it.
        """
        if part == 0:
            yield from self.batches(context)


class SeqScan(Operator):
    """Full scan of a base table, with optional pushed-down equality filters.

    Unfiltered scans serve the table's cached columnar batches directly;
    filtered scans select matching rows in one pass. When an applicable
    hash index exists the planner emits :class:`IndexScan` instead.
    """

    def __init__(
        self,
        table: Table,
        alias: str,
        filters: Sequence[Tuple[int, object]],
        stats,
        params: CostParameters,
    ) -> None:
        self.table = table
        self.alias = alias
        self.filters = list(filters)
        self.columns = [f"{alias}.{c}" for c in table.columns]
        self._batch_size = params.batch_size
        cardinality = float(max(stats.cardinality, 0))
        selectivity = 1.0
        for position, _value in self.filters:
            column = table.columns[position]
            selectivity /= max(1.0, float(stats.distinct(column)))
        self.est_rows = max(cardinality * selectivity, 0.0)
        self.est_ndv = {}
        for column in table.columns:
            ndv = float(stats.distinct(column))
            self.est_ndv[f"{alias}.{column}"] = max(
                1.0, min(ndv, self.est_rows or 1.0)
            )
        self.cost = (
            params.seq_scan_per_row * cardinality / params.parallel_speedup()
        )

    def _filtered_rows(self, rows: Sequence[Row]) -> List[Row]:
        if len(self.filters) == 1:
            position, value = self.filters[0]
            return [r for r in rows if r[position] == value]
        filters = self.filters
        return [r for r in rows if all(r[p] == v for p, v in filters)]

    def batches(self, context: Context) -> Iterator[Batch]:
        if not self.filters:
            yield from self.table.column_batches(self._batch_size)
            return
        yield from _chunked(self._filtered_rows(self.table.rows), self._batch_size)

    def batches_partitioned(
        self, context: Context, part: int, parts: int
    ) -> Iterator[Batch]:
        if not self.filters:
            stored = self.table.column_batches(self._batch_size)
            lo, hi = slice_bounds(len(stored), part, parts)
            yield from stored[lo:hi]
            return
        rows = self.table.rows
        lo, hi = slice_bounds(len(rows), part, parts)
        yield from _chunked(self._filtered_rows(rows[lo:hi]), self._batch_size)

    def label(self) -> str:
        rendered = f"SeqScan {self.table.name} AS {self.alias}"
        if self.filters:
            conds = ", ".join(
                f"{self.table.columns[p]}={v!r}" for p, v in self.filters
            )
            rendered += f" [{conds}]"
        return rendered


class IndexScan(Operator):
    """Equality lookup through a table's hash index.

    ``key_filters`` (one per index column, in index order) are answered
    by the bucket probe; ``residual`` equality filters — pushed-down
    predicates on non-index columns — are applied to the bucket rows.
    """

    def __init__(
        self,
        table: Table,
        alias: str,
        index: Index,
        key_filters: Sequence[Tuple[int, object]],
        residual: Sequence[Tuple[int, object]],
        stats,
        params: CostParameters,
    ) -> None:
        self.table = table
        self.alias = alias
        self.index = index
        self.key_filters = list(key_filters)
        self.residual = list(residual)
        self.columns = [f"{alias}.{c}" for c in table.columns]
        self._batch_size = params.batch_size
        self._key = tuple(value for _position, value in self.key_filters)
        cardinality = float(max(stats.cardinality, 0))
        selectivity = 1.0
        for position, _value in self.key_filters + self.residual:
            column = table.columns[position]
            selectivity /= max(1.0, float(stats.distinct(column)))
        self.est_rows = max(cardinality * selectivity, 0.0)
        self.est_ndv = {}
        for column in table.columns:
            ndv = float(stats.distinct(column))
            self.est_ndv[f"{alias}.{column}"] = max(
                1.0, min(ndv, self.est_rows or 1.0)
            )
        self.cost = params.index_probe + (
            params.index_probe_per_row
            * self.est_rows
            / params.parallel_speedup()
        )

    def _matched_rows(self) -> List[Row]:
        matched = self.index.lookup(self._key)
        if self.residual:
            residual = self.residual
            matched = [
                r for r in matched if all(r[p] == v for p, v in residual)
            ]
        return matched

    def batches(self, context: Context) -> Iterator[Batch]:
        yield from _chunked(self._matched_rows(), self._batch_size)

    def batches_partitioned(
        self, context: Context, part: int, parts: int
    ) -> Iterator[Batch]:
        matched = self._matched_rows()
        lo, hi = slice_bounds(len(matched), part, parts)
        yield from _chunked(matched[lo:hi], self._batch_size)

    def label(self) -> str:
        conds = ", ".join(
            f"{self.table.columns[p]}={v!r}"
            for p, v in self.key_filters + self.residual
        )
        return f"IndexScan {self.table.name} AS {self.alias} [{conds}]"


class CTEScan(Operator):
    """Scan of a materialized WITH-subquery (or a planner-shared scan).

    An unfiltered CTEScan re-serves the materialized batches as-is, so
    every UNION arm behind a shared scan reads the same columnar data
    with zero per-arm transpose or copy work.
    """

    def __init__(
        self,
        name: str,
        alias: str,
        cte_columns: Sequence[str],
        cte_root: Operator,
        filters: Sequence[Tuple[int, object]],
        params: CostParameters,
    ) -> None:
        self.name = name
        self.alias = alias
        self.filters = list(filters)
        self.columns = [f"{alias}.{c}" for c in cte_columns]
        selectivity = 1.0
        for position, _value in self.filters:
            source_label = cte_root.columns[position]
            ndv = cte_root.est_ndv.get(source_label, cte_root.est_rows or 1.0)
            selectivity /= max(1.0, ndv)
        self.est_rows = max(cte_root.est_rows * selectivity, 0.0)
        self.est_ndv = {}
        for out_label, src_label in zip(self.columns, cte_root.columns):
            ndv = cte_root.est_ndv.get(src_label, self.est_rows or 1.0)
            self.est_ndv[out_label] = max(1.0, min(ndv, self.est_rows or 1.0))
        self.cost = (
            params.seq_scan_per_row
            * max(cte_root.est_rows, 0.0)
            / params.parallel_speedup()
        )

    def _filtered(self, stored: Iterable[Batch]) -> Iterator[Batch]:
        filters = self.filters
        for batch in stored:
            position, value = filters[0]
            column = batch[position]
            selection = [i for i, v in enumerate(column) if v == value]
            for position, value in filters[1:]:
                column = batch[position]
                selection = [i for i in selection if column[i] == value]
            if not selection:
                continue
            if len(selection) == len(batch[0]):
                yield batch
            else:
                yield _gather(batch, selection)

    def batches(self, context: Context) -> Iterator[Batch]:
        stored = context[self.name]
        if not self.filters:
            yield from stored
            return
        yield from self._filtered(stored)

    def batches_partitioned(
        self, context: Context, part: int, parts: int
    ) -> Iterator[Batch]:
        stored = context[self.name]
        lo, hi = slice_bounds(len(stored), part, parts)
        if not self.filters:
            yield from stored[lo:hi]
            return
        yield from self._filtered(stored[lo:hi])

    def label(self) -> str:
        return f"CTEScan {self.name} AS {self.alias}"


class Filter(Operator):
    """Row-level filter: column-to-column equality within a single row."""

    def __init__(
        self, child: Operator, pairs: Sequence[Tuple[int, int, str]]
    ) -> None:
        self.child = child
        self.pairs = list(pairs)  # (left position, right position, op)
        self.columns = list(child.columns)
        selectivity = 1.0
        for left, right, op in self.pairs:
            if op == "=":
                ndv = max(
                    child.est_ndv.get(child.columns[left], 1.0),
                    child.est_ndv.get(child.columns[right], 1.0),
                )
                selectivity /= max(1.0, ndv)
        self.est_rows = child.est_rows * selectivity
        self.est_ndv = {
            label: min(ndv, self.est_rows or 1.0)
            for label, ndv in child.est_ndv.items()
        }
        self.cost = child.cost

    def _select(self, batch: Batch) -> Optional[Batch]:
        pairs = self.pairs
        left, right, op = pairs[0]
        left_col, right_col = batch[left], batch[right]
        if op == "=":
            selection = [
                i
                for i, (a, b) in enumerate(zip(left_col, right_col))
                if a == b
            ]
        else:
            selection = [
                i
                for i, (a, b) in enumerate(zip(left_col, right_col))
                if a != b
            ]
        for left, right, op in pairs[1:]:
            left_col, right_col = batch[left], batch[right]
            if op == "=":
                selection = [
                    i for i in selection if left_col[i] == right_col[i]
                ]
            else:
                selection = [
                    i for i in selection if left_col[i] != right_col[i]
                ]
        if not selection:
            return None
        if len(selection) == len(batch[0]):
            return batch
        return _gather(batch, selection)

    def _selected(self, source: Iterable[Batch]) -> Iterator[Batch]:
        select = self._select
        for batch in source:
            selected = select(batch)
            if selected is not None:
                yield selected

    def batches(self, context: Context) -> Iterator[Batch]:
        return self._selected(self.child.batches(context))

    def batches_partitioned(
        self, context: Context, part: int, parts: int
    ) -> Iterator[Batch]:
        return self._selected(
            self.child.batches_partitioned(context, part, parts)
        )

    def children(self) -> Sequence[Operator]:
        return (self.child,)

    def label(self) -> str:
        conds = ", ".join(
            f"{self.columns[l]} {op} {self.columns[r]}" for l, r, op in self.pairs
        )
        return f"Filter [{conds}]"


class ConstFilter(Operator):
    """Filter rows by comparing a column against a constant.

    Used when a constant predicate cannot be pushed into a scan (e.g. on a
    derived subquery input).
    """

    def __init__(
        self, child: Operator, tests: Sequence[Tuple[int, object, str]]
    ) -> None:
        self.child = child
        self.tests = list(tests)  # (position, value, op)
        self.columns = list(child.columns)
        selectivity = 1.0
        for position, _value, op in self.tests:
            if op == "=":
                ndv = child.est_ndv.get(child.columns[position], 1.0)
                selectivity /= max(1.0, ndv)
        self.est_rows = child.est_rows * selectivity
        self.est_ndv = {
            label: min(ndv, self.est_rows or 1.0)
            for label, ndv in child.est_ndv.items()
        }
        self.cost = child.cost

    def _select(self, batch: Batch) -> Optional[Batch]:
        tests = self.tests
        position, value, op = tests[0]
        column = batch[position]
        if op == "=":
            selection = [i for i, v in enumerate(column) if v == value]
        else:
            selection = [i for i, v in enumerate(column) if v != value]
        for position, value, op in tests[1:]:
            column = batch[position]
            if op == "=":
                selection = [i for i in selection if column[i] == value]
            else:
                selection = [i for i in selection if column[i] != value]
        if not selection:
            return None
        if len(selection) == len(batch[0]):
            return batch
        return _gather(batch, selection)

    def _selected(self, source: Iterable[Batch]) -> Iterator[Batch]:
        select = self._select
        for batch in source:
            selected = select(batch)
            if selected is not None:
                yield selected

    def batches(self, context: Context) -> Iterator[Batch]:
        return self._selected(self.child.batches(context))

    def batches_partitioned(
        self, context: Context, part: int, parts: int
    ) -> Iterator[Batch]:
        return self._selected(
            self.child.batches_partitioned(context, part, parts)
        )

    def children(self) -> Sequence[Operator]:
        return (self.child,)

    def label(self) -> str:
        conds = ", ".join(
            f"{self.columns[p]} {op} {v!r}" for p, v, op in self.tests
        )
        return f"ConstFilter [{conds}]"


def _index_join_side(
    operator: Operator, key_positions: Sequence[int]
) -> Optional[Index]:
    """An index answering a join against *operator*, if one applies.

    The side must be a bare full-table scan (no pushed filters — the
    index holds *all* the table's rows) with a hash index exactly
    matching the join key columns (single column, or either order for
    two-column keys).
    """
    if not isinstance(operator, SeqScan) or operator.filters:
        return None
    table = operator.table
    names = tuple(table.columns[p] for p in key_positions)
    index = table.index_on(names)
    if index is None and len(names) == 2:
        index = table.index_on((names[1], names[0]))
    return index


class HashJoin(Operator):
    """Equi-join, batch-at-a-time.

    Generic path: build a hash table from the (estimated) smaller input,
    stream the other side's batches through it. Index path: when one
    input is a bare table scan whose join key matches an existing hash
    index, the index *is* the build side — the table is never scanned
    and no per-query hash table is built (an index nested-loop join).
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        key_pairs: Sequence[Tuple[int, int]],
        params: CostParameters,
    ) -> None:
        self.left = left
        self.right = right
        self.key_pairs = list(key_pairs)  # positions: (left, right)
        self.columns = list(left.columns) + list(right.columns)
        selectivity = 1.0
        for left_pos, right_pos in self.key_pairs:
            left_ndv = left.est_ndv.get(left.columns[left_pos], left.est_rows or 1.0)
            right_ndv = right.est_ndv.get(
                right.columns[right_pos], right.est_rows or 1.0
            )
            selectivity /= max(1.0, max(left_ndv, right_ndv))
        self.est_rows = left.est_rows * right.est_rows * selectivity
        self.est_ndv = {}
        for label, ndv in list(left.est_ndv.items()) + list(right.est_ndv.items()):
            self.est_ndv[label] = max(1.0, min(ndv, self.est_rows or 1.0))
        self._index_side, self._index = self._pick_index_side(
            left, right, self.key_pairs
        )
        self.cost = self.estimate_cost(
            left, right, self.est_rows, self._index_side, params
        )

    @staticmethod
    def _pick_index_side(
        left: Operator, right: Operator, key_pairs: Sequence[Tuple[int, int]]
    ) -> Tuple[Optional[str], Optional[Index]]:
        """Which input (if any) can be replaced by an index probe.

        When both qualify, index the larger side: the smaller side
        streams as the probe and the big table is never materialized.
        """
        left_index = _index_join_side(left, [l for l, _ in key_pairs])
        right_index = _index_join_side(right, [r for _, r in key_pairs])
        if left_index is not None and right_index is not None:
            if left.est_rows >= right.est_rows:
                right_index = None
            else:
                left_index = None
        if left_index is not None:
            return "left", left_index
        if right_index is not None:
            return "right", right_index
        return None, None

    @staticmethod
    def estimate_cost(
        left: Operator,
        right: Operator,
        est_rows: float,
        index_side: Optional[str],
        params: CostParameters,
    ) -> float:
        """Cumulative cost of joining *left* and *right*.

        With an index side ("left"/"right"), the indexed table is
        neither scanned nor hashed: pay only the probe side plus
        per-probe index lookups.
        """
        speedup = params.parallel_speedup()
        if index_side is not None:
            probe = right if index_side == "left" else left
            return (
                probe.cost
                + (
                    params.hash_probe_per_row * probe.est_rows
                    + params.output_per_row * est_rows
                )
                / speedup
            )
        build_rows = min(left.est_rows, right.est_rows)
        probe_rows = max(left.est_rows, right.est_rows)
        return (
            left.cost
            + right.cost
            + (
                params.hash_build_per_row * build_rows
                + params.hash_probe_per_row * probe_rows
                + params.output_per_row * est_rows
            )
            / speedup
        )

    def _build_spec(self) -> Tuple[bool, Operator, List[int], Operator, List[int]]:
        """Which side is built, which probes, and their key positions.

        Build on the side the planner estimates smaller; the other side
        streams batch-at-a-time through the hash table.
        """
        build_is_left = self.left.est_rows <= self.right.est_rows
        build_op = self.left if build_is_left else self.right
        probe_op = self.right if build_is_left else self.left
        if build_is_left:
            build_positions = [l for l, _ in self.key_pairs]
            probe_positions = [r for _, r in self.key_pairs]
        else:
            build_positions = [r for _, r in self.key_pairs]
            probe_positions = [l for l, _ in self.key_pairs]
        return build_is_left, build_op, build_positions, probe_op, probe_positions

    @staticmethod
    def _build_into(
        buckets: Dict[object, List[Row]],
        batches: Iterable[Batch],
        build_positions: List[int],
    ) -> None:
        """Fold *batches* into a hash table keyed on *build_positions*."""
        if len(build_positions) == 1:
            position = build_positions[0]
            for batch in batches:
                for row in zip(*batch):
                    buckets.setdefault(row[position], []).append(row)
        else:
            for batch in batches:
                for row in zip(*batch):
                    key = tuple(row[p] for p in build_positions)
                    buckets.setdefault(key, []).append(row)

    def prepare(
        self,
        context: Context,
        parallel: ParallelContext,
        parts: int,
        top: bool = False,
    ) -> None:
        """The shared-build barrier: one hash table per execution.

        Workers build per-partition *partial* hash tables from their
        morsels of the build side; the partials are merged in partition
        order (contiguous partitions, so every bucket's row order equals
        the serial build's) and published in the execution context for
        all probe morsels to share. Index joins have nothing to build —
        the table's index is the build side already.
        """
        self.left.prepare(context, parallel, parts)
        self.right.prepare(context, parallel, parts)
        if self._index is not None:
            return
        _is_left, build_op, build_positions, _probe, _positions = self._build_spec()

        def build_partial(part: int) -> Dict[object, List[Row]]:
            partial: Dict[object, List[Row]] = {}
            self._build_into(
                partial,
                build_op.batches_partitioned(context, part, parts),
                build_positions,
            )
            return partial

        partials = parallel.map_partitions(build_partial, parts)
        buckets = partials[0]
        for partial in partials[1:]:
            for key, rows in partial.items():
                existing = buckets.get(key)
                if existing is None:
                    buckets[key] = rows
                else:
                    existing.extend(rows)
        context[("_build", id(self))] = buckets

    def batches(self, context: Context) -> Iterator[Batch]:
        if self._index is not None:
            probe_op, probe_positions, lookup, probe_is_left = (
                self._index_probe_spec()
            )
            yield from self._probe(
                probe_op.batches(context), probe_positions, lookup, probe_is_left
            )
            return
        _is_left, build_op, build_positions, probe_op, probe_positions = (
            self._build_spec()
        )
        buckets: Dict[object, List[Row]] = {}
        self._build_into(buckets, build_op.batches(context), build_positions)
        if not buckets:
            return
        yield from self._probe(
            probe_op.batches(context),
            probe_positions,
            buckets.get,
            probe_op is self.left,
        )

    def batches_partitioned(
        self, context: Context, part: int, parts: int
    ) -> Iterator[Batch]:
        if self._index is not None:
            probe_op, probe_positions, lookup, probe_is_left = (
                self._index_probe_spec()
            )
            yield from self._probe(
                probe_op.batches_partitioned(context, part, parts),
                probe_positions,
                lookup,
                probe_is_left,
            )
            return
        buckets = context.get(("_build", id(self)))
        if buckets is None:
            # prepare() never ran (direct use outside the executor):
            # degrade to correct serial execution in partition 0.
            if part == 0:
                yield from self.batches(context)
            return
        if not buckets:
            return
        _is_left, _build, _positions, probe_op, probe_positions = (
            self._build_spec()
        )
        yield from self._probe(
            probe_op.batches_partitioned(context, part, parts),
            probe_positions,
            buckets.get,
            probe_op is self.left,
        )

    def _index_probe_spec(self) -> Tuple[Operator, List[int], object, bool]:
        """Probe side, key positions (in index order) and bucket lookup
        for the index-nested-loop path."""
        build_is_left = self._index_side == "left"
        probe_op = self.right if build_is_left else self.left
        if build_is_left:
            probe_positions = [r for _, r in self.key_pairs]
        else:
            probe_positions = [l for l, _ in self.key_pairs]
        index = self._index
        index_positions = (
            [l for l, _ in self.key_pairs]
            if build_is_left
            else [r for _, r in self.key_pairs]
        )
        build_op = self.left if build_is_left else self.right
        # Bucket keys follow the index's column order, which may be the
        # reverse of the join key order for two-column indexes.
        column_order = tuple(
            build_op.columns[p].split(".", 1)[1] for p in index_positions
        )
        if not index.single and column_order != index.columns:
            ordering = [column_order.index(c) for c in index.columns]
            probe_positions = [probe_positions[i] for i in ordering]
        # Single-column indexes bucket by bare value, so the probe is a
        # plain dict get either way.
        return probe_op, probe_positions, index.buckets.get, not build_is_left

    def _probe(
        self,
        probe_batches: Iterable[Batch],
        probe_positions: List[int],
        lookup,
        probe_is_left: bool,
    ) -> Iterator[Batch]:
        """Stream probe batches through *lookup*, emitting joined batches."""
        single = len(probe_positions) == 1
        for batch in probe_batches:
            matched_rows: List[Row] = []
            selection: List[int] = []
            if single:
                column = batch[probe_positions[0]]
                for i, value in enumerate(column):
                    bucket = lookup(value)
                    if bucket:
                        matched_rows.extend(bucket)
                        selection.extend([i] * len(bucket))
            else:
                key_columns = [batch[p] for p in probe_positions]
                for i, key in enumerate(zip(*key_columns)):
                    bucket = lookup(key)
                    if bucket:
                        matched_rows.extend(bucket)
                        selection.extend([i] * len(bucket))
            if not matched_rows:
                continue
            matched_cols = list(zip(*matched_rows))
            probe_cols = _gather(batch, selection)
            if probe_is_left:
                yield probe_cols + matched_cols
            else:
                yield matched_cols + probe_cols

    def children(self) -> Sequence[Operator]:
        return (self.left, self.right)

    def label(self) -> str:
        conds = ", ".join(
            f"{self.left.columns[l]} = {self.right.columns[r]}"
            for l, r in self.key_pairs
        )
        rendered = f"HashJoin [{conds}]"
        if self._index is not None:
            side = self.left if self._index_side == "left" else self.right
            rendered += f" (index probe into {side.table.name})"  # type: ignore[union-attr]
        return rendered


class CrossJoin(Operator):
    """Cartesian product (heavily penalized by the planner)."""

    def __init__(
        self, left: Operator, right: Operator, params: CostParameters
    ) -> None:
        self.left = left
        self.right = right
        self.columns = list(left.columns) + list(right.columns)
        self.est_rows = left.est_rows * right.est_rows
        self.est_ndv = {}
        for label, ndv in list(left.est_ndv.items()) + list(right.est_ndv.items()):
            self.est_ndv[label] = max(1.0, min(ndv, self.est_rows or 1.0))
        self.cost = (
            left.cost
            + right.cost
            + params.cross_join_penalty
            * self.est_rows
            / params.parallel_speedup()
        )

    def _collect_right(self, right_batches: Iterable[Batch]) -> List[List]:
        width = len(self.right.columns)
        right_cols: List[List] = [[] for _ in range(width)]
        for batch in right_batches:
            for position in range(width):
                right_cols[position].extend(batch[position])
        return right_cols

    def _emit(
        self, left_batches: Iterable[Batch], right_cols: List[List]
    ) -> Iterator[Batch]:
        if not right_cols or not right_cols[0]:
            return
        count = len(right_cols[0])
        for batch in left_batches:
            left_out = [
                [value for value in column for _ in range(count)]
                for column in batch
            ]
            size = len(batch[0])
            right_out = [column * size for column in right_cols]
            yield left_out + right_out

    def prepare(
        self,
        context: Context,
        parallel: ParallelContext,
        parts: int,
        top: bool = False,
    ) -> None:
        """Materialize the inner side once; morsels partition the outer."""
        self.left.prepare(context, parallel, parts)
        self.right.prepare(context, parallel, parts)

        def collect(part: int) -> List[Batch]:
            return list(self.right.batches_partitioned(context, part, parts))

        partition_lists = parallel.map_partitions(collect, parts)
        context[("_cross", id(self))] = self._collect_right(
            batch for partition in partition_lists for batch in partition
        )

    def batches(self, context: Context) -> Iterator[Batch]:
        right_cols = self._collect_right(self.right.batches(context))
        yield from self._emit(self.left.batches(context), right_cols)

    def batches_partitioned(
        self, context: Context, part: int, parts: int
    ) -> Iterator[Batch]:
        right_cols = context.get(("_cross", id(self)))
        if right_cols is None:
            if part == 0:
                yield from self.batches(context)
            return
        yield from self._emit(
            self.left.batches_partitioned(context, part, parts), right_cols
        )

    def children(self) -> Sequence[Operator]:
        return (self.left, self.right)


class Project(Operator):
    """Projection onto expressions (column positions or literal values).

    Vectorized projection is column bookkeeping: existing columns are
    re-referenced (no copy), literal columns are materialized once per
    batch.
    """

    def __init__(
        self,
        child: Operator,
        items: Sequence[Tuple[Optional[int], object, str]],
        params: CostParameters,
    ) -> None:
        # items: (source position | None, literal value, output label)
        self.child = child
        self.items = list(items)
        self.columns = [label for _, _, label in items]
        self.est_rows = child.est_rows
        self.est_ndv = {}
        for position, _value, label in items:
            if position is None:
                self.est_ndv[label] = 1.0
            else:
                self.est_ndv[label] = child.est_ndv.get(
                    child.columns[position], self.est_rows or 1.0
                )
        self.cost = child.cost + (
            params.output_per_row
            * child.est_rows
            / params.parallel_speedup()
        )

    def _projected(self, source: Iterable[Batch]) -> Iterator[Batch]:
        items = self.items
        for batch in source:
            size = len(batch[0])
            yield [
                batch[position] if position is not None else [value] * size
                for position, value, _label in items
            ]

    def batches(self, context: Context) -> Iterator[Batch]:
        return self._projected(self.child.batches(context))

    def batches_partitioned(
        self, context: Context, part: int, parts: int
    ) -> Iterator[Batch]:
        return self._projected(
            self.child.batches_partitioned(context, part, parts)
        )

    def children(self) -> Sequence[Operator]:
        return (self.child,)

    def label(self) -> str:
        return f"Project [{', '.join(self.columns)}]"


def _dedup_batches(
    source: Iterator[Batch], seen: set
) -> Iterator[Batch]:
    """Drop rows already in *seen* (mutated), batch-at-a-time."""
    for batch in source:
        fresh: List[Row] = []
        append = fresh.append
        add = seen.add
        for row in zip(*batch):
            if row not in seen:
                add(row)
                append(row)
        if not fresh:
            continue
        if len(fresh) == len(batch[0]):
            yield batch
        else:
            yield tuple(zip(*fresh))


def _materialize_breaker(
    op: "Operator", context: Context, parallel: ParallelContext, parts: int
) -> None:
    """Interior dedup barrier: compute *op*'s exact global output once.

    An interior deduplicating operator (one whose parent preserves
    duplicates — e.g. a DISTINCT subquery under a plain join) cannot
    stream per-partition partials: a row surviving local dedup in two
    partitions would reach the parent twice. So it is a hard pipeline
    breaker — workers produce locally-deduped partials of the child,
    the coordinator merges them through one global seen-set (first
    occurrence in partition order wins, reproducing the serial content
    exactly), and the materialized batches are re-partitioned for the
    pipeline above.
    """

    def local(part: int) -> List[Batch]:
        return list(op.batches_partitioned(context, part, parts))

    partition_lists = parallel.map_partitions(local, parts)
    merged = list(
        _dedup_batches(
            (b for partition in partition_lists for b in partition), set()
        )
    )
    context[("_breaker", id(op))] = merged


class Distinct(Operator):
    """Hash-based duplicate elimination.

    A pipeline breaker under parallel execution: partitions dedup
    against per-worker seen-sets, and the cross-partition merge happens
    either in the executor (when this operator is the pipeline's root)
    or in :func:`_materialize_breaker` (when it feeds a
    duplicate-preserving parent).
    """

    def __init__(self, child: Operator, params: CostParameters) -> None:
        self.child = child
        self.columns = list(child.columns)
        ndv_product = 1.0
        for label in child.columns:
            ndv_product *= child.est_ndv.get(label, child.est_rows or 1.0)
        self.est_rows = max(1.0, min(child.est_rows, ndv_product))
        self.est_ndv = dict(child.est_ndv)
        self.cost = child.cost + (
            params.dedup_per_row
            * child.est_rows
            / params.parallel_speedup()
        )

    def prepare(
        self,
        context: Context,
        parallel: ParallelContext,
        parts: int,
        top: bool = False,
    ) -> None:
        self.child.prepare(context, parallel, parts)
        if not top:
            _materialize_breaker(self, context, parallel, parts)

    def batches(self, context: Context) -> Iterator[Batch]:
        yield from _dedup_batches(self.child.batches(context), set())

    def batches_partitioned(
        self, context: Context, part: int, parts: int
    ) -> Iterator[Batch]:
        stored = context.get(("_breaker", id(self)))
        if stored is not None:
            lo, hi = slice_bounds(len(stored), part, parts)
            yield from stored[lo:hi]
            return
        # Root of the parallel section: locally-deduped partial stream;
        # the executor merges partials through a global seen-set.
        yield from _dedup_batches(
            self.child.batches_partitioned(context, part, parts), set()
        )

    def children(self) -> Sequence[Operator]:
        return (self.child,)


class Union(Operator):
    """UNION (deduplicating) or UNION ALL of equal-arity children.

    Deduplication shares one seen-set across all arms, so duplicate
    answers produced by overlapping UCQ disjuncts are dropped the first
    time a batch crosses the operator. Under parallel execution a
    deduplicating Union is a pipeline breaker exactly like
    :class:`Distinct` (per-partition seen-sets span the arms, merged at
    the root or at an interior barrier); UNION ALL partitions are each
    arm's partitions concatenated.
    """

    def __init__(
        self, inputs: Sequence[Operator], all_rows: bool, params: CostParameters
    ) -> None:
        self.inputs = list(inputs)
        self.all_rows = all_rows
        self.columns = list(inputs[0].columns)
        self.est_rows = sum(op.est_rows for op in inputs)
        self.est_ndv = {}
        for position, label in enumerate(self.columns):
            total = sum(
                op.est_ndv.get(op.columns[position], op.est_rows or 1.0)
                for op in inputs
            )
            self.est_ndv[label] = max(1.0, min(total, self.est_rows or 1.0))
        self.cost = sum(op.cost for op in inputs)
        if not all_rows:
            self.cost += (
                params.dedup_per_row
                * self.est_rows
                / params.parallel_speedup()
            )

    def prepare(
        self,
        context: Context,
        parallel: ParallelContext,
        parts: int,
        top: bool = False,
    ) -> None:
        for op in self.inputs:
            op.prepare(context, parallel, parts)
        if not self.all_rows and not top:
            _materialize_breaker(self, context, parallel, parts)

    def batches(self, context: Context) -> Iterator[Batch]:
        if self.all_rows:
            for op in self.inputs:
                yield from op.batches(context)
            return
        seen: set = set()
        for op in self.inputs:
            yield from _dedup_batches(op.batches(context), seen)

    def batches_partitioned(
        self, context: Context, part: int, parts: int
    ) -> Iterator[Batch]:
        if self.all_rows:
            for op in self.inputs:
                yield from op.batches_partitioned(context, part, parts)
            return
        stored = context.get(("_breaker", id(self)))
        if stored is not None:
            lo, hi = slice_bounds(len(stored), part, parts)
            yield from stored[lo:hi]
            return
        seen: set = set()
        for op in self.inputs:
            yield from _dedup_batches(
                op.batches_partitioned(context, part, parts), seen
            )

    def children(self) -> Sequence[Operator]:
        return tuple(self.inputs)

    def label(self) -> str:
        return "Union" if not self.all_rows else "UnionAll"


class Materialize(Operator):
    """Materialization of a CTE result (the WITH evaluation strategy).

    ``shared`` marks planner-introduced shared scans: identical
    scan+filter subtrees detected across UNION arms, evaluated once.
    Transparent to partitioning: the executor materializes the CTE by
    collecting this operator's partitions, so ``top`` passes through to
    the child.
    """

    def __init__(
        self,
        name: str,
        child: Operator,
        params: CostParameters,
        shared: bool = False,
    ) -> None:
        self.name = name
        self.child = child
        self.shared = shared
        self.columns = list(child.columns)
        self.est_rows = child.est_rows
        self.est_ndv = dict(child.est_ndv)
        self.cost = child.cost + (
            params.materialize_per_row
            * child.est_rows
            / params.parallel_speedup()
        )

    def prepare(
        self,
        context: Context,
        parallel: ParallelContext,
        parts: int,
        top: bool = False,
    ) -> None:
        self.child.prepare(context, parallel, parts, top=top)

    def batches(self, context: Context) -> Iterator[Batch]:
        return self.child.batches(context)

    def batches_partitioned(
        self, context: Context, part: int, parts: int
    ) -> Iterator[Batch]:
        return self.child.batches_partitioned(context, part, parts)

    def children(self) -> Sequence[Operator]:
        return (self.child,)

    def label(self) -> str:
        if self.shared:
            return f"Materialize {self.name} (shared scan)"
        return f"Materialize {self.name}"
