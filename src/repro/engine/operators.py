"""Physical operators: pull-based iterators with planner cost annotations.

Every operator exposes:

* ``columns`` — qualified output column labels (``alias.column``);
* ``est_rows`` / ``est_ndv`` / ``cost`` — the planner's estimates
  (cumulative cost includes the children);
* ``rows(context)`` — the executed row iterator; ``context`` carries the
  materialized CTE results.

Cost constants live in :class:`CostParameters` so backends can be
calibrated (Section 6.1 of the paper calibrates "a few constant
coefficients" per system).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.engine.relation import Table

Row = Tuple
Context = Dict[str, List[Row]]


@dataclass
class CostParameters:
    """Calibration constants for the engine's cost model."""

    seq_scan_per_row: float = 1.0
    index_probe: float = 0.02
    hash_build_per_row: float = 1.2
    hash_probe_per_row: float = 1.0
    output_per_row: float = 0.4
    dedup_per_row: float = 1.1
    materialize_per_row: float = 0.8
    cross_join_penalty: float = 8.0


DEFAULT_COSTS = CostParameters()


class Operator:
    """Base class for physical operators."""

    columns: List[str]
    est_rows: float
    est_ndv: Dict[str, float]
    cost: float

    def rows(self, context: Context) -> Iterator[Row]:
        raise NotImplementedError

    def children(self) -> Sequence["Operator"]:
        return ()

    def label(self) -> str:
        """One-line description for EXPLAIN output."""
        return type(self).__name__


class SeqScan(Operator):
    """Full scan of a base table, with optional pushed-down equality filters.

    When a single-column filter matches a hash index, execution probes the
    index instead of scanning (the planner discounts the cost accordingly).
    """

    def __init__(
        self,
        table: Table,
        alias: str,
        filters: Sequence[Tuple[int, object]],
        stats,
        params: CostParameters,
    ) -> None:
        self.table = table
        self.alias = alias
        self.filters = list(filters)
        self.columns = [f"{alias}.{c}" for c in table.columns]
        cardinality = float(max(stats.cardinality, 0))
        selectivity = 1.0
        for position, _value in self.filters:
            column = table.columns[position]
            selectivity /= max(1.0, float(stats.distinct(column)))
        self.est_rows = max(cardinality * selectivity, 0.0)
        self.est_ndv = {}
        for column in table.columns:
            ndv = float(stats.distinct(column))
            self.est_ndv[f"{alias}.{column}"] = max(
                1.0, min(ndv, self.est_rows or 1.0)
            )
        self._index = None
        if len(self.filters) == 1:
            position, value = self.filters[0]
            index = table.index_on((table.columns[position],))
            if index is not None:
                self._index = (index, value)
        if self._index is not None:
            self.cost = params.index_probe + params.output_per_row * self.est_rows
        else:
            self.cost = params.seq_scan_per_row * cardinality

    def rows(self, context: Context) -> Iterator[Row]:
        if self._index is not None:
            index, value = self._index
            yield from index.lookup((value,))
            return
        for row in self.table.rows:
            ok = True
            for position, value in self.filters:
                if row[position] != value:
                    ok = False
                    break
            if ok:
                yield row

    def label(self) -> str:
        access = "IndexProbe" if self._index is not None else "SeqScan"
        rendered = f"{access} {self.table.name} AS {self.alias}"
        if self.filters:
            conds = ", ".join(
                f"{self.table.columns[p]}={v!r}" for p, v in self.filters
            )
            rendered += f" [{conds}]"
        return rendered


class CTEScan(Operator):
    """Scan of a materialized WITH-subquery."""

    def __init__(
        self,
        name: str,
        alias: str,
        cte_columns: Sequence[str],
        cte_root: Operator,
        filters: Sequence[Tuple[int, object]],
        params: CostParameters,
    ) -> None:
        self.name = name
        self.alias = alias
        self.filters = list(filters)
        self.columns = [f"{alias}.{c}" for c in cte_columns]
        selectivity = 1.0
        for position, _value in self.filters:
            source_label = cte_root.columns[position]
            ndv = cte_root.est_ndv.get(source_label, cte_root.est_rows or 1.0)
            selectivity /= max(1.0, ndv)
        self.est_rows = max(cte_root.est_rows * selectivity, 0.0)
        self.est_ndv = {}
        for out_label, src_label in zip(self.columns, cte_root.columns):
            ndv = cte_root.est_ndv.get(src_label, self.est_rows or 1.0)
            self.est_ndv[out_label] = max(1.0, min(ndv, self.est_rows or 1.0))
        self.cost = params.seq_scan_per_row * max(cte_root.est_rows, 0.0)

    def rows(self, context: Context) -> Iterator[Row]:
        for row in context[self.name]:
            ok = True
            for position, value in self.filters:
                if row[position] != value:
                    ok = False
                    break
            if ok:
                yield row

    def label(self) -> str:
        return f"CTEScan {self.name} AS {self.alias}"


class Filter(Operator):
    """Row-level filter: column-to-column equality within a single row."""

    def __init__(
        self, child: Operator, pairs: Sequence[Tuple[int, int, str]]
    ) -> None:
        self.child = child
        self.pairs = list(pairs)  # (left position, right position, op)
        self.columns = list(child.columns)
        selectivity = 1.0
        for left, right, op in self.pairs:
            if op == "=":
                ndv = max(
                    child.est_ndv.get(child.columns[left], 1.0),
                    child.est_ndv.get(child.columns[right], 1.0),
                )
                selectivity /= max(1.0, ndv)
        self.est_rows = child.est_rows * selectivity
        self.est_ndv = {
            label: min(ndv, self.est_rows or 1.0)
            for label, ndv in child.est_ndv.items()
        }
        self.cost = child.cost

    def rows(self, context: Context) -> Iterator[Row]:
        for row in self.child.rows(context):
            ok = True
            for left, right, op in self.pairs:
                if op == "=" and row[left] != row[right]:
                    ok = False
                    break
                if op == "<>" and row[left] == row[right]:
                    ok = False
                    break
            if ok:
                yield row

    def children(self) -> Sequence[Operator]:
        return (self.child,)

    def label(self) -> str:
        conds = ", ".join(
            f"{self.columns[l]} {op} {self.columns[r]}" for l, r, op in self.pairs
        )
        return f"Filter [{conds}]"


class ConstFilter(Operator):
    """Filter rows by comparing a column against a constant.

    Used when a constant predicate cannot be pushed into a scan (e.g. on a
    derived subquery input).
    """

    def __init__(
        self, child: Operator, tests: Sequence[Tuple[int, object, str]]
    ) -> None:
        self.child = child
        self.tests = list(tests)  # (position, value, op)
        self.columns = list(child.columns)
        selectivity = 1.0
        for position, _value, op in self.tests:
            if op == "=":
                ndv = child.est_ndv.get(child.columns[position], 1.0)
                selectivity /= max(1.0, ndv)
        self.est_rows = child.est_rows * selectivity
        self.est_ndv = {
            label: min(ndv, self.est_rows or 1.0)
            for label, ndv in child.est_ndv.items()
        }
        self.cost = child.cost

    def rows(self, context: Context) -> Iterator[Row]:
        for row in self.child.rows(context):
            ok = True
            for position, value, op in self.tests:
                matches = row[position] == value
                if (op == "=" and not matches) or (op == "<>" and matches):
                    ok = False
                    break
            if ok:
                yield row

    def children(self) -> Sequence[Operator]:
        return (self.child,)

    def label(self) -> str:
        conds = ", ".join(
            f"{self.columns[p]} {op} {v!r}" for p, v, op in self.tests
        )
        return f"ConstFilter [{conds}]"


class HashJoin(Operator):
    """Equi-join; builds a hash table on the (estimated) smaller input."""

    def __init__(
        self,
        left: Operator,
        right: Operator,
        key_pairs: Sequence[Tuple[int, int]],
        params: CostParameters,
    ) -> None:
        self.left = left
        self.right = right
        self.key_pairs = list(key_pairs)  # positions: (left, right)
        self.columns = list(left.columns) + list(right.columns)
        selectivity = 1.0
        for left_pos, right_pos in self.key_pairs:
            left_ndv = left.est_ndv.get(left.columns[left_pos], left.est_rows or 1.0)
            right_ndv = right.est_ndv.get(
                right.columns[right_pos], right.est_rows or 1.0
            )
            selectivity /= max(1.0, max(left_ndv, right_ndv))
        self.est_rows = left.est_rows * right.est_rows * selectivity
        self.est_ndv = {}
        for label, ndv in list(left.est_ndv.items()) + list(right.est_ndv.items()):
            self.est_ndv[label] = max(1.0, min(ndv, self.est_rows or 1.0))
        build_rows = min(left.est_rows, right.est_rows)
        probe_rows = max(left.est_rows, right.est_rows)
        self.cost = (
            left.cost
            + right.cost
            + params.hash_build_per_row * build_rows
            + params.hash_probe_per_row * probe_rows
            + params.output_per_row * self.est_rows
        )

    def rows(self, context: Context) -> Iterator[Row]:
        left_rows = list(self.left.rows(context))
        right_rows = list(self.right.rows(context))
        left_width = len(self.left.columns)
        # Build on the smaller actual side.
        if len(left_rows) <= len(right_rows):
            build_rows, probe_rows, build_is_left = left_rows, right_rows, True
        else:
            build_rows, probe_rows, build_is_left = right_rows, left_rows, False
        buckets: Dict[Tuple, List[Row]] = {}
        for row in build_rows:
            if build_is_left:
                key = tuple(row[l] for l, _ in self.key_pairs)
            else:
                key = tuple(row[r] for _, r in self.key_pairs)
            buckets.setdefault(key, []).append(row)
        for row in probe_rows:
            if build_is_left:
                key = tuple(row[r] for _, r in self.key_pairs)
            else:
                key = tuple(row[l] for l, _ in self.key_pairs)
            for match in buckets.get(key, ()):  # type: ignore[arg-type]
                if build_is_left:
                    yield match + row
                else:
                    yield row + match

    def children(self) -> Sequence[Operator]:
        return (self.left, self.right)

    def label(self) -> str:
        conds = ", ".join(
            f"{self.left.columns[l]} = {self.right.columns[r]}"
            for l, r in self.key_pairs
        )
        return f"HashJoin [{conds}]"


class CrossJoin(Operator):
    """Cartesian product (heavily penalized by the planner)."""

    def __init__(
        self, left: Operator, right: Operator, params: CostParameters
    ) -> None:
        self.left = left
        self.right = right
        self.columns = list(left.columns) + list(right.columns)
        self.est_rows = left.est_rows * right.est_rows
        self.est_ndv = {}
        for label, ndv in list(left.est_ndv.items()) + list(right.est_ndv.items()):
            self.est_ndv[label] = max(1.0, min(ndv, self.est_rows or 1.0))
        self.cost = (
            left.cost
            + right.cost
            + params.cross_join_penalty * self.est_rows
        )

    def rows(self, context: Context) -> Iterator[Row]:
        right_rows = list(self.right.rows(context))
        for left_row in self.left.rows(context):
            for right_row in right_rows:
                yield left_row + right_row

    def children(self) -> Sequence[Operator]:
        return (self.left, self.right)


class Project(Operator):
    """Projection onto expressions (column positions or literal values)."""

    def __init__(
        self,
        child: Operator,
        items: Sequence[Tuple[Optional[int], object, str]],
        params: CostParameters,
    ) -> None:
        # items: (source position | None, literal value, output label)
        self.child = child
        self.items = list(items)
        self.columns = [label for _, _, label in items]
        self.est_rows = child.est_rows
        self.est_ndv = {}
        for position, _value, label in items:
            if position is None:
                self.est_ndv[label] = 1.0
            else:
                self.est_ndv[label] = child.est_ndv.get(
                    child.columns[position], self.est_rows or 1.0
                )
        self.cost = child.cost + params.output_per_row * child.est_rows

    def rows(self, context: Context) -> Iterator[Row]:
        for row in self.child.rows(context):
            yield tuple(
                row[position] if position is not None else value
                for position, value, _label in self.items
            )

    def children(self) -> Sequence[Operator]:
        return (self.child,)

    def label(self) -> str:
        return f"Project [{', '.join(self.columns)}]"


class Distinct(Operator):
    """Hash-based duplicate elimination."""

    def __init__(self, child: Operator, params: CostParameters) -> None:
        self.child = child
        self.columns = list(child.columns)
        ndv_product = 1.0
        for label in child.columns:
            ndv_product *= child.est_ndv.get(label, child.est_rows or 1.0)
        self.est_rows = max(1.0, min(child.est_rows, ndv_product))
        self.est_ndv = dict(child.est_ndv)
        self.cost = child.cost + params.dedup_per_row * child.est_rows

    def rows(self, context: Context) -> Iterator[Row]:
        seen = set()
        for row in self.child.rows(context):
            if row not in seen:
                seen.add(row)
                yield row

    def children(self) -> Sequence[Operator]:
        return (self.child,)


class Union(Operator):
    """UNION (deduplicating) or UNION ALL of equal-arity children."""

    def __init__(
        self, inputs: Sequence[Operator], all_rows: bool, params: CostParameters
    ) -> None:
        self.inputs = list(inputs)
        self.all_rows = all_rows
        self.columns = list(inputs[0].columns)
        self.est_rows = sum(op.est_rows for op in inputs)
        self.est_ndv = {}
        for position, label in enumerate(self.columns):
            total = sum(
                op.est_ndv.get(op.columns[position], op.est_rows or 1.0)
                for op in inputs
            )
            self.est_ndv[label] = max(1.0, min(total, self.est_rows or 1.0))
        self.cost = sum(op.cost for op in inputs)
        if not all_rows:
            self.cost += params.dedup_per_row * self.est_rows

    def rows(self, context: Context) -> Iterator[Row]:
        if self.all_rows:
            for op in self.inputs:
                yield from op.rows(context)
            return
        seen = set()
        for op in self.inputs:
            for row in op.rows(context):
                if row not in seen:
                    seen.add(row)
                    yield row

    def children(self) -> Sequence[Operator]:
        return tuple(self.inputs)

    def label(self) -> str:
        return "Union" if not self.all_rows else "UnionAll"


class Materialize(Operator):
    """Materialization of a CTE result (the WITH evaluation strategy)."""

    def __init__(self, name: str, child: Operator, params: CostParameters) -> None:
        self.name = name
        self.child = child
        self.columns = list(child.columns)
        self.est_rows = child.est_rows
        self.est_ndv = dict(child.est_ndv)
        self.cost = child.cost + params.materialize_per_row * child.est_rows

    def rows(self, context: Context) -> Iterator[Row]:
        return self.child.rows(context)

    def children(self) -> Sequence[Operator]:
        return (self.child,)

    def label(self) -> str:
        return f"Materialize {self.name}"
