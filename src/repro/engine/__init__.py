"""MiniRDBMS — a from-scratch, in-memory relational engine.

This is the reproduction's stand-in for IBM DB2 (the paper's second
evaluation system): a complete, self-contained RDBMS with

* a SQL-subset parser (``WITH``, ``SELECT [DISTINCT]``, comma joins,
  ``JOIN ... ON``, ``WHERE`` equality conjunctions, ``UNION [ALL]``,
  ``FROM``-subqueries) — exactly the SQL dialect the paper's reformulation
  translator emits (:mod:`sqlparser`);
* hash indexes and per-column statistics (:mod:`relation`,
  :mod:`catalog`);
* a cost-based planner with greedy join ordering over hash joins
  (:mod:`planner`), exposing its estimates through ``EXPLAIN``
  (the "RDBMS cost estimation" the paper's GDL consumes);
* a vectorized, **morsel-driven parallel** executor: columnar batches,
  contiguous morsel partitioning over a shared worker pool, shared
  hash-build barriers and per-worker dedup partials merged at pipeline
  breakers (:mod:`operators`, :mod:`executor`, :mod:`parallel`);
* DB2's documented *statement length limit* (2,000,000 characters),
  reproducing the "statement is too long or too complex" failures the
  paper observed on RDF-layout reformulations of Q9/Q10 (:mod:`errors`).
"""

from repro.engine.database import MiniRDBMS
from repro.engine.errors import (
    EngineError,
    PlanningError,
    SQLSyntaxError,
    StatementTooLongError,
    UnknownTableError,
)
from repro.engine.executor import ExecutionStats
from repro.engine.parallel import ParallelContext

__all__ = [
    "EngineError",
    "ExecutionStats",
    "MiniRDBMS",
    "ParallelContext",
    "PlanningError",
    "SQLSyntaxError",
    "StatementTooLongError",
    "UnknownTableError",
]
