"""A bounded restricted chase: the ground-truth oracle for query answering.

The chase materializes the facts entailed by a KB's positive constraints,
inventing *labeled nulls* to witness existential axioms (``A <= exists R``).
For TBoxes whose existential dependencies are acyclic the chase terminates
and its (null-free) query answers are exactly the certain answers; for
cyclic TBoxes a generation bound cuts the construction, which is still a
sound under-approximation used to cross-check reformulation on tests whose
queries never reach the bound.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Set, Tuple

from repro.dllite.abox import ABox
from repro.dllite.axioms import ConceptInclusion, RoleInclusion
from repro.dllite.kb import KnowledgeBase
from repro.dllite.tbox import TBox
from repro.dllite.vocabulary import AtomicConcept, BasicConcept, Exists, Role
from repro.queries.cq import CQ
from repro.queries.evaluate import evaluate_cq

NULL_PREFIX = "_:null"

FactStore = Dict[str, Set[Tuple]]


class ChaseTruncatedError(RuntimeError):
    """The chase hit its generation bound, so answers may be incomplete."""

    def __init__(self, max_generations: int) -> None:
        super().__init__(
            f"chase truncated at max_generations={max_generations}: the TBox's "
            "existential dependencies are cyclic at this bound, so certain "
            "answers computed from this chase may be incomplete; raise "
            "max_generations or pass on_truncation='ignore' to accept the "
            "under-approximation"
        )
        self.max_generations = max_generations


class ChaseResult(dict):
    """A chased fact store that remembers whether the bound cut it short.

    A plain ``dict`` subclass so every existing ``FactStore`` consumer
    works unchanged; ``truncated`` is True when at least one existential
    rule was suppressed by ``max_generations``.
    """

    truncated: bool = False


def is_null(value: object) -> bool:
    """True for labeled nulls invented by the chase."""
    return isinstance(value, str) and value.startswith(NULL_PREFIX)


def _extension(store: FactStore, basic: BasicConcept) -> Set[str]:
    """Current extension of a basic concept in the store."""
    if isinstance(basic, AtomicConcept):
        return {row[0] for row in store.get(basic.name, ())}
    assert isinstance(basic, Exists)
    position = 1 if basic.role.inverse else 0
    return {row[position] for row in store.get(basic.role.name, ())}


def _signed_pairs(store: FactStore, signed: Role) -> Set[Tuple[str, str]]:
    rows = store.get(signed.name, set())
    if signed.inverse:
        return {(obj, subj) for subj, obj in rows}
    return set(rows)


def chase(kb: KnowledgeBase, max_generations: int = 4) -> ChaseResult:
    """Materialize entailed facts, bounding existential generations.

    ``max_generations`` limits how many times existential rules may fire on
    individuals that are themselves nulls (generation 0 = ABox constants).
    The returned :class:`ChaseResult` sets ``truncated`` when the bound
    actually suppressed a rule, so oracles can refuse to trust the result.
    """
    store: ChaseResult = ChaseResult(
        {k: set(v) for k, v in kb.abox.fact_store().items()}
    )
    generation: Dict[str, int] = {}
    null_counter = itertools.count()

    def gen_of(value: str) -> int:
        return generation.get(value, 0)

    def add_fact(predicate: str, row: Tuple) -> bool:
        rows = store.setdefault(predicate, set())
        if row in rows:
            return False
        rows.add(row)
        return True

    positive = [a for a in kb.tbox.axioms if not a.negative]
    changed = True
    while changed:
        changed = False
        for axiom in positive:
            if isinstance(axiom, RoleInclusion):
                for subject, obj in _signed_pairs(store, axiom.lhs):
                    if axiom.rhs.inverse:
                        row = (obj, subject)
                    else:
                        row = (subject, obj)
                    if add_fact(axiom.rhs.name, row):
                        changed = True
                continue

            assert isinstance(axiom, ConceptInclusion)
            members = _extension(store, axiom.lhs)
            if isinstance(axiom.rhs, AtomicConcept):
                for member in members:
                    if add_fact(axiom.rhs.name, (member,)):
                        changed = True
                continue

            assert isinstance(axiom.rhs, Exists)
            role_name = axiom.rhs.role.name
            witness_position = 0 if axiom.rhs.role.inverse else 1
            member_position = 1 - witness_position
            already_witnessed = {
                row[member_position] for row in store.get(role_name, ())
            }
            for member in members:
                if member in already_witnessed:
                    continue
                if gen_of(member) >= max_generations:
                    store.truncated = True
                    continue
                null = f"{NULL_PREFIX}{next(null_counter)}"
                generation[null] = gen_of(member) + 1
                row = [None, None]
                row[member_position] = member
                row[witness_position] = null
                if add_fact(role_name, tuple(row)):
                    changed = True
    return store


def certain_answers(
    query: CQ,
    kb: KnowledgeBase,
    max_generations: int = 4,
    on_truncation: str = "raise",
) -> Set[Tuple]:
    """Certain answers of *query* over *kb* via the bounded chase.

    Rows containing labeled nulls are filtered out: nulls witness existence
    but are not named individuals, hence cannot appear in certain answers.

    When the chase hits its generation bound the result is only an
    under-approximation; the default ``on_truncation="raise"`` turns that
    into a :class:`ChaseTruncatedError` so oracle comparisons can never be
    quietly wrong. Pass ``on_truncation="ignore"`` to accept the
    approximation deliberately.
    """
    if on_truncation not in ("raise", "ignore"):
        raise ValueError(
            f"on_truncation must be 'raise' or 'ignore', got {on_truncation!r}"
        )
    store = chase(kb, max_generations=max_generations)
    if store.truncated and on_truncation == "raise":
        raise ChaseTruncatedError(max_generations)
    answers = evaluate_cq(query, store)
    return {row for row in answers if not any(is_null(value) for value in row)}
